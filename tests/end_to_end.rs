//! Workspace end-to-end test: the full paper programming model in one
//! scenario — register, build a virtual architecture with constraints,
//! load a codebase selectively, create and use objects with all three
//! invocation modes, migrate, persist, unregister.

use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};
use jsym_core::{JsObj, MigrateTarget, Placement, Value};
use jsym_sysmon::{JsConstraints, SysParam};

#[test]
fn full_programming_model_walkthrough() {
    // JS-Shell configures six idle machines (paper §5).
    let deployment = shell_with_idle_machines(6).boot();
    register_test_classes(&deployment);

    // §4.1: register the application.
    let reg = deployment.register_app().unwrap();

    // §4.2: request a virtual architecture under constraints.
    let mut constr = JsConstraints::new();
    constr.set(SysParam::IdlePct, ">=", 50);
    constr.set(SysParam::AvailMem, ">=", 50);
    let site = deployment
        .vda()
        .request_site(&[2, 2], Some(&constr))
        .unwrap();
    assert_eq!(site.nr_nodes(), 4);
    let cluster0 = site.get_cluster(0).unwrap();
    let cluster1 = site.get_cluster(1).unwrap();

    // §4.3: ship the codebase only to the first cluster.
    let cb = reg.codebase();
    cb.add("blob.jar", 64_000);
    cb.load_cluster(&cluster0).unwrap();

    // §4.4: create objects — one placed by the runtime inside cluster0,
    // one co-located with it.
    let a = JsObj::create(
        &reg,
        "Blob",
        &[Value::I64(1024)],
        Placement::InCluster(&cluster0),
        None,
    )
    .unwrap();
    let b = JsObj::create(&reg, "Counter", &[], Placement::WithObject(&a), None).unwrap();
    assert_eq!(a.get_location().unwrap(), b.get_location().unwrap());
    // Cluster1 lacks the Blob code: creation there must fail.
    assert!(JsObj::create(
        &reg,
        "Blob",
        &[Value::I64(8)],
        Placement::InCluster(&cluster1),
        None
    )
    .is_err());

    // §4.5: the three invocation modes.
    assert_eq!(a.sinvoke("size", &[]).unwrap(), Value::I64(1024));
    let h = b.ainvoke("add", &[Value::I64(5)]).unwrap();
    assert_eq!(h.get_result().unwrap(), Value::I64(5));
    b.oinvoke("add", &[Value::I64(5)]).unwrap();

    // §4.6: explicit migration within the cluster.
    let other = cluster0
        .machines()
        .into_iter()
        .find(|&m| m != a.get_location().unwrap())
        .unwrap();
    a.migrate(MigrateTarget::ToPhys(other), None).unwrap();
    assert_eq!(a.get_location().unwrap(), other);
    assert_eq!(a.sinvoke("size", &[]).unwrap(), Value::I64(1024));

    // §4.6: the object's node supports the system-parameter API.
    let idle = deployment
        .vda()
        .pool()
        .snapshot_of(other)
        .unwrap()
        .num(SysParam::IdlePct)
        .unwrap();
    assert!(idle > 50.0);

    // §4.7: persist and reload.
    let key = b.store(Some("walkthrough-counter")).unwrap();
    let b2 = reg.load_stored(&key, Placement::Local, None).unwrap();
    assert_eq!(b2.sinvoke("get", &[]).unwrap(), Value::I64(10));

    // §4.2: dynamic architecture changes.
    site.free_cluster(&cluster1).unwrap();
    assert_eq!(site.nr_clusters(), 1);

    // §4.1: unregister.
    reg.unregister().unwrap();
    deployment.shutdown();
}

#[test]
fn multiple_architectures_share_machines_via_names() {
    let deployment = shell_with_idle_machines(3).boot();
    register_test_classes(&deployment);
    let vda = deployment.vda();
    let c1 = vda.request_cluster(3, None).unwrap();
    // A second architecture over the same machines, by name.
    let c2 = vda.empty_cluster();
    for m in c1.machines() {
        let name = vda.pool().machine(m).unwrap().spec().name.clone();
        let n = vda.request_node_named(&name).unwrap();
        c2.add_node(&n).unwrap();
    }
    assert_eq!(c1.machines(), c2.machines());
    deployment.shutdown();
}

#[test]
fn deployment_survives_heavy_concurrent_use() {
    let deployment = shell_with_idle_machines(4).boot();
    register_test_classes(&deployment);
    let reg = std::sync::Arc::new(deployment.register_app().unwrap());
    let objs: Vec<JsObj> = (0..4)
        .map(|i| {
            JsObj::create(
                &reg,
                "Counter",
                &[],
                Placement::OnPhys(jsym_net::NodeId(i)),
                None,
            )
            .unwrap()
        })
        .collect();
    let mut threads = Vec::new();
    for obj in objs.clone() {
        threads.push(std::thread::spawn(move || {
            for _ in 0..50 {
                obj.sinvoke("add", &[Value::I64(1)]).unwrap();
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    for obj in &objs {
        assert_eq!(obj.sinvoke("get", &[]).unwrap(), Value::I64(50));
    }
    deployment.shutdown();
}
