//! Workspace test guarding the Figure 5 reproduction's *shape* (the
//! acceptance criteria in DESIGN.md §4). Uses a reduced sweep so the test
//! stays in CI budget; the full sweep lives in `jsym-bench --bin fig5`.

use jsym_cluster::catalog::LoadKind;
use jsym_cluster::fig5::run_cell;

const SCALE: f64 = 2e-2;
const SEED: u64 = 11;
const N: usize = 600;

#[test]
fn night_parallel_beats_sequential_and_thirteen_nodes_regress() {
    // One representative N; nodes 1, 2, 6 and 13.
    let t1 = run_cell(N, 1, LoadKind::Night, SCALE, SEED, false);
    let t2 = run_cell(N, 2, LoadKind::Night, SCALE, SEED, false);
    let t6 = run_cell(N, 6, LoadKind::Night, SCALE, SEED, false);
    let t13 = run_cell(N, 13, LoadKind::Night, SCALE, SEED, false);

    // Scaling improves through 6 nodes...
    assert!(t2 < t1, "2 nodes ({t2:.1}s) should beat 1 ({t1:.1}s)");
    assert!(t6 < t2, "6 nodes ({t6:.1}s) should beat 2 ({t2:.1}s)");
    // ...with meaningful speed-up at 6 (the paper: "almost linear"),
    let speedup6 = t1 / t6;
    assert!(
        speedup6 > 2.5,
        "6-node night speed-up only {speedup6:.2} (t1 {t1:.1}s, t6 {t6:.1}s)"
    );
    // ...and using all 13 machines is *worse* than 6 (paper: "using more
    // than 10 nodes increases the execution time").
    assert!(
        t13 > t6,
        "13 nodes ({t13:.1}s) should be slower than 6 ({t6:.1}s)"
    );
}

#[test]
fn day_is_slower_than_night() {
    let night = run_cell(N, 4, LoadKind::Night, SCALE, SEED, false);
    let day = run_cell(N, 4, LoadKind::Day, SCALE, SEED, false);
    assert!(
        day > night * 1.1,
        "day ({day:.1}s) should be clearly slower than night ({night:.1}s)"
    );
}

#[test]
fn sequential_baseline_tracks_problem_size_cubically() {
    let t400 = run_cell(400, 1, LoadKind::Dedicated, SCALE, SEED, false);
    let t800 = run_cell(800, 1, LoadKind::Dedicated, SCALE, SEED, false);
    let ratio = t800 / t400;
    assert!(
        (6.0..10.5).contains(&ratio),
        "2x problem size should be ~8x the work, got {ratio:.1}x"
    );
}
