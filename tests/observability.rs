//! Workspace tests of the observability subsystem end to end: RMI and
//! migration instrumentation through a live deployment, span-tree
//! well-formedness, JSON export parseability (via serde_json), no-op mode,
//! and drop/rejection accounting in the per-endpoint network stats.

use jsym_core::obs::{validate_spans, MetricKey};
use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};
use jsym_core::{JsObj, MigrateTarget, Placement, Value};
use jsym_net::NodeId;

#[test]
fn rmi_and_migration_produce_metrics_and_nested_spans() {
    let d = shell_with_idle_machines(3).boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap();
    obj.sinvoke("add", &[Value::I64(5)]).unwrap();
    let h = obj.ainvoke("add", &[Value::I64(2)]).unwrap();
    h.get_result().unwrap();
    obj.oinvoke("add", &[Value::I64(1)]).unwrap();
    assert_eq!(obj.sinvoke("get", &[]).unwrap(), Value::I64(8));
    obj.migrate(MigrateTarget::ToPhys(NodeId(2)), None).unwrap();

    let snap = d.obs().snapshot();

    // Counters: per-mode RMI calls keyed to the application's home node.
    let counter = |mode: &str| {
        snap.metrics
            .counters
            .get(&MetricKey::new("rmi.calls", Some(0), mode))
            .copied()
            .unwrap_or(0)
    };
    assert_eq!(counter("sinvoke"), 2);
    assert_eq!(counter("ainvoke"), 1);
    assert_eq!(counter("oinvoke"), 1);
    assert!(snap.metrics.counter_total("msg.sent") > 0);

    // Histograms: caller-side latency recorded per completed round trip,
    // and per-link traffic recorded by the network.
    let caller = snap
        .metrics
        .histograms
        .get(&MetricKey::new("rmi.caller_seconds", Some(0), "sinvoke"))
        .expect("sinvoke caller histogram");
    assert_eq!(caller.count, 2);
    assert!(snap.metrics.histogram_sum("net.bytes") > 0.0);

    // The span forest is well-formed (ids unique, children within parents).
    validate_spans(&snap.spans).unwrap();

    // The migration appears as one root with the protocol steps nested
    // under it, carrying virtual timestamps.
    let find = |name: &str| {
        snap.spans
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no {name} span"))
    };
    let root = find("migrate");
    let request = find("migrate.request");
    let quiesce = find("migrate.quiesce");
    let transfer = find("migrate.transfer");
    let install = find("migrate.install");
    let confirm = find("migrate.confirm");
    assert_eq!(request.parent, Some(root.id));
    assert_eq!(quiesce.parent, Some(request.id));
    assert_eq!(transfer.parent, Some(request.id));
    assert_eq!(install.parent, Some(transfer.id));
    assert_eq!(confirm.parent, Some(root.id));
    assert!(root.start <= request.start && request.end <= root.end);
    assert!(root.end > root.start, "migration took virtual time");

    // Structural runtime events are mirrored as instant spans.
    assert!(snap.spans.iter().any(|s| s.name == "event.object_created"));
    assert!(snap.spans.iter().any(|s| s.name == "event.migrated"));

    // The rendered tree shows the whole protocol, indented.
    let tree = jsym_core::obs::render_tree(&snap.spans);
    for step in [
        "migrate.request",
        "migrate.quiesce",
        "migrate.transfer",
        "migrate.install",
        "migrate.confirm",
    ] {
        assert!(tree.contains(step), "missing {step} in:\n{tree}");
    }

    d.shutdown();
}

#[test]
fn json_export_parses_and_matches_recorded_state() {
    let d = shell_with_idle_machines(2).boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap();
    obj.sinvoke("add", &[Value::I64(1)]).unwrap();
    obj.migrate(MigrateTarget::ToPhys(NodeId(0)), None).unwrap();

    let json = d.obs().to_json();
    let v: serde_json::Value = serde_json::from_str(&json).expect("export must be valid JSON");
    assert_eq!(v["schema"], "jsym-obs/v1");
    let counters = v["counters"].as_array().unwrap();
    assert!(counters
        .iter()
        .any(|c| c["name"] == "rmi.calls" && c["component"] == "sinvoke" && c["value"] == 1));
    let spans = v["spans"].as_array().unwrap();
    assert!(spans.iter().any(|s| s["name"] == "migrate.transfer"));
    // Parent links survive serialization: every non-null parent id exists.
    let ids: std::collections::HashSet<i64> =
        spans.iter().map(|s| s["id"].as_i64().unwrap()).collect();
    for s in spans {
        if let Some(p) = s["parent"].as_i64() {
            assert!(ids.contains(&p), "orphan parent {p} in export");
        }
    }
    let histograms = v["histograms"].as_array().unwrap();
    assert!(histograms.iter().any(|h| h["name"] == "net.latency"));

    d.shutdown();
}

#[test]
fn disabled_observability_still_runs_and_records_nothing() {
    let d = shell_with_idle_machines(2).observability(false).boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap();
    obj.sinvoke("add", &[Value::I64(3)]).unwrap();
    obj.migrate(MigrateTarget::ToPhys(NodeId(0)), None).unwrap();
    assert_eq!(obj.sinvoke("get", &[]).unwrap(), Value::I64(3));

    assert!(!d.obs().is_enabled());
    let snap = d.obs().snapshot();
    assert!(snap.metrics.counters.is_empty());
    assert!(snap.metrics.histograms.is_empty());
    assert!(snap.spans.is_empty());
    // Per-endpoint traffic accounting is independent of the obs registry.
    assert!(d.net_stats().msgs_delivered > 0);

    d.shutdown();
}

#[test]
fn partition_rejections_show_in_endpoint_stats_and_counters() {
    let d = shell_with_idle_machines(2).boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap();
    obj.sinvoke("add", &[Value::I64(1)]).unwrap();

    d.network().partition(NodeId(0), NodeId(1));
    assert!(
        obj.sinvoke("get", &[]).is_err(),
        "partitioned call must fail"
    );

    let endpoints = d.endpoint_stats();
    let n0 = endpoints.iter().find(|e| e.node == NodeId(0)).unwrap();
    assert!(n0.rejected_msgs >= 1, "{n0:?}");
    assert!(n0.rejected_bytes > 0, "{n0:?}");
    assert!(d.net_stats().msgs_rejected >= 1);
    let snap = d.obs().snapshot();
    assert!(snap.metrics.counter_total("net.rejected") >= 1);

    // Healing restores service; the failed call never mutated the object.
    d.network().heal(NodeId(0), NodeId(1));
    assert_eq!(obj.sinvoke("get", &[]).unwrap(), Value::I64(1));
    d.shutdown();
}
