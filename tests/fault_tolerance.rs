//! Workspace fault-tolerance tests (paper §5.1): failure detection through
//! the NAS, backup-manager promotion across hierarchy levels, and the
//! behaviour of applications whose objects lived on the dead node.

use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};
use jsym_core::{Deployment, JsError, JsObj, Placement, Value};
use jsym_vda::{ManagerScope, VdaEvent};
use std::time::Duration;

fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    for _ in 0..1000 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for: {what}");
}

fn detecting_deployment(n: usize) -> Deployment {
    let d = shell_with_idle_machines(n)
        .time_scale(1e-4)
        .monitor_period(2.0)
        .failure_timeout(50.0)
        .boot();
    register_test_classes(&d);
    d
}

#[test]
fn site_manager_failure_cascades_to_all_levels() {
    let d = detecting_deployment(6);
    let domain = d.vda().request_domain(&[&[2, 2], &[2]], None).unwrap();
    let site0 = domain.get_site(0).unwrap();
    let victim = site0.manager().unwrap();
    // The victim is a cluster manager, the site-0 manager, and (being the
    // first site's manager) likely the domain manager too.
    let was_domain_manager = domain.manager() == Some(victim.clone());

    wait_until(
        || {
            domain.machines().iter().all(|&m| {
                d.node_stats(m)
                    .map(|s| s.monitor_rounds >= 2)
                    .unwrap_or(false)
            })
        },
        "monitoring to start everywhere",
    );
    let events = d.vda().subscribe();
    d.kill_node(victim.phys());
    wait_until(|| d.vda().is_failed(victim.phys()), "failure detection");
    wait_until(|| site0.nr_nodes() == 3, "victim release");

    // Every level has a live, consistent manager again.
    let new_site_mgr = site0.manager().expect("site has a manager");
    assert_ne!(new_site_mgr, victim);
    let dm = domain.manager().expect("domain has a manager");
    let site_mgrs: Vec<_> = (0..domain.nr_sites())
        .filter_map(|i| domain.get_site(i).unwrap().manager())
        .collect();
    assert!(
        site_mgrs.contains(&dm),
        "domain manager must be a site manager"
    );

    let changes: Vec<_> = events
        .try_iter()
        .filter(|e| matches!(e, VdaEvent::ManagerChanged { .. }))
        .collect();
    assert!(!changes.is_empty(), "no ManagerChanged events");
    if was_domain_manager {
        assert!(changes.iter().any(|e| matches!(
            e,
            VdaEvent::ManagerChanged {
                scope: ManagerScope::Domain(_),
                ..
            }
        )));
    }
    d.shutdown();
}

#[test]
fn objects_on_dead_node_fail_cleanly_and_app_continues() {
    let d = detecting_deployment(3);
    let reg = d.register_app().unwrap();
    let doomed = JsObj::create(
        &reg,
        "Counter",
        &[Value::I64(9)],
        Placement::OnPhys(d.machines()[2]),
        None,
    )
    .unwrap();
    let survivor = JsObj::create(
        &reg,
        "Counter",
        &[Value::I64(1)],
        Placement::OnPhys(d.machines()[1]),
        None,
    )
    .unwrap();
    d.kill_node(d.machines()[2]);
    // Paper §5.1: "currently the object agent system does not exploit
    // information about system failures provided by the NAS" — invocations
    // on lost objects fail; they are not resurrected.
    assert!(matches!(
        doomed.sinvoke("get", &[]),
        Err(JsError::NodeUnreachable(_) | JsError::Timeout | JsError::ShuttingDown)
    ));
    // The application itself keeps working.
    assert_eq!(survivor.sinvoke("get", &[]).unwrap(), Value::I64(1));
    reg.unregister().unwrap();
    d.shutdown();
}

#[test]
fn failed_machine_excluded_from_future_allocation_and_placement() {
    let d = detecting_deployment(3);
    let reg = d.register_app().unwrap();
    let dead = d.machines()[1];
    let cluster = d.vda().request_cluster(3, None).unwrap();
    wait_until(
        || {
            cluster.machines().iter().all(|&m| {
                d.node_stats(m)
                    .map(|s| s.monitor_rounds >= 2)
                    .unwrap_or(false)
            })
        },
        "monitoring to start",
    );
    d.kill_node(dead);
    wait_until(|| d.vda().is_failed(dead), "failure detection");

    // Placement avoids the dead machine.
    for _ in 0..4 {
        let obj = JsObj::create(&reg, "Counter", &[], Placement::Auto, None).unwrap();
        assert_ne!(obj.get_location().unwrap(), dead);
    }
    // Release the original cluster (its dead member is already gone) and
    // reallocate: only the two survivors may be used.
    cluster.free().unwrap();
    let c2 = d.vda().request_cluster(2, None);
    match c2 {
        Ok(c) => assert!(!c.machines().contains(&dead)),
        Err(e) => panic!("two machines remain, allocation should work: {e}"),
    }
    // A third machine does not exist any more.
    assert!(d.vda().request_node().is_err());
    d.shutdown();
}

#[test]
fn double_failure_leaves_last_node_standing() {
    let d = detecting_deployment(3);
    let cluster = d.vda().request_cluster(3, None).unwrap();
    wait_until(
        || {
            cluster.machines().iter().all(|&m| {
                d.node_stats(m)
                    .map(|s| s.monitor_rounds >= 2)
                    .unwrap_or(false)
            })
        },
        "monitoring to start",
    );
    let m0 = cluster.manager().unwrap();
    d.kill_node(m0.phys());
    wait_until(|| cluster.nr_nodes() == 2, "first failover");
    let m1 = cluster.manager().unwrap();
    assert_ne!(m0, m1);
    d.kill_node(m1.phys());
    wait_until(|| cluster.nr_nodes() == 1, "second failover");
    let m2 = cluster.manager().unwrap();
    assert_ne!(m1, m2);
    assert!(
        cluster.backup_manager().is_none(),
        "one node left: no backup"
    );
    d.shutdown();
}
