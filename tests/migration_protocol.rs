//! Workspace tests of the migration protocol under adversarial interleaving
//! (paper Figures 3–4): concurrent invokers, chained migrations, and
//! foreign-handle resolution through the origin AppOA.

use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};
use jsym_core::{JsObj, MigrateTarget, Placement, Value};
use jsym_net::NodeId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn chained_migrations_land_where_requested() {
    let d = shell_with_idle_machines(4).boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(
        &reg,
        "Counter",
        &[Value::I64(1)],
        Placement::OnPhys(NodeId(0)),
        None,
    )
    .unwrap();
    for hop in [1u32, 2, 3, 0, 2] {
        obj.migrate(MigrateTarget::ToPhys(NodeId(hop)), None)
            .unwrap();
        assert_eq!(obj.get_location().unwrap(), NodeId(hop));
    }
    assert_eq!(obj.sinvoke("get", &[]).unwrap(), Value::I64(1));
    // Total migrations across all nodes equals the hops that changed nodes.
    let total_out: u64 = d
        .machines()
        .iter()
        .map(|&m| d.node_stats(m).unwrap().migrations_out)
        .sum();
    assert_eq!(total_out, 5);
    d.shutdown();
}

#[test]
fn two_writers_and_migrations_lose_no_updates() {
    let d = shell_with_idle_machines(3).boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for _ in 0..2 {
        let obj = obj.clone();
        let stop = Arc::clone(&stop);
        writers.push(std::thread::spawn(move || {
            let mut n = 0i64;
            while !stop.load(Ordering::Relaxed) {
                obj.sinvoke("add", &[Value::I64(1)]).unwrap();
                n += 1;
            }
            n
        }));
    }
    for round in 0..4 {
        let dst = NodeId(1 + (round % 2));
        let target = if dst == NodeId(1) {
            NodeId(2)
        } else {
            NodeId(1)
        };
        obj.migrate(MigrateTarget::ToPhys(target), None).unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let total: i64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
    assert!(total > 0);
    assert_eq!(obj.sinvoke("get", &[]).unwrap(), Value::I64(total));
    d.shutdown();
}

#[test]
fn foreign_handle_follows_migrations() {
    // Object A (on node 1) holds a handle to B (on node 2) and keeps calling
    // it through nested invocation while B migrates. The PubOA on node 1
    // must re-resolve B's location through the origin AppOA (Figure 4).
    let d = shell_with_idle_machines(4).boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let a = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap();
    let b = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(2)), None).unwrap();

    // Warm the location cache on node 1.
    a.sinvoke("add_to", &[Value::Handle(b.handle()), Value::I64(1)])
        .unwrap();
    // Move B twice, then call through A again.
    b.migrate(MigrateTarget::ToPhys(NodeId(3)), None).unwrap();
    b.migrate(MigrateTarget::ToPhys(NodeId(0)), None).unwrap();
    a.sinvoke("add_to", &[Value::Handle(b.handle()), Value::I64(10)])
        .unwrap();
    assert_eq!(b.sinvoke("get", &[]).unwrap(), Value::I64(11));
    d.shutdown();
}

#[test]
fn migrate_is_idempotent_for_same_destination() {
    let d = shell_with_idle_machines(2).boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(0)), None).unwrap();
    obj.migrate(MigrateTarget::ToPhys(NodeId(1)), None).unwrap();
    obj.migrate(MigrateTarget::ToPhys(NodeId(1)), None).unwrap();
    assert_eq!(d.node_stats(NodeId(0)).unwrap().migrations_out, 1);
    assert_eq!(d.node_stats(NodeId(1)).unwrap().migrations_in, 1);
    d.shutdown();
}

#[test]
fn persistence_waits_for_running_methods() {
    // Paper §4.7: "An object can only be stored/loaded when none of its
    // methods are currently executing." Start a long method and store
    // immediately: the store must block until the method finishes, which we
    // observe through virtual time.
    let d = shell_with_idle_machines(2).boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap();
    let clock = d.clock().clone();
    // 500 Mflop at 50 Mflop/s = 10 virtual seconds on the hosting node.
    let h = obj.ainvoke("compute", &[Value::F64(5e8)]).unwrap();
    // Give the invoke a head start so the store arrives mid-method.
    std::thread::sleep(std::time::Duration::from_millis(5));
    let t0 = clock.now();
    let key = obj.store(None).unwrap();
    let store_took = clock.now() - t0;
    assert!(
        store_took > 3.0,
        "store returned in {store_took:.2} virtual s — it did not quiesce the object"
    );
    h.get_result().unwrap();
    let copy = reg.load_stored(&key, Placement::Local, None).unwrap();
    assert_eq!(copy.sinvoke("get", &[]).unwrap(), Value::I64(0));
    d.shutdown();
}
