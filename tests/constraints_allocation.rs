//! Workspace tests: constraint-driven allocation across heterogeneous
//! machines (the paper's §4.2 machinery against the §6 testbed).

use jsym_cluster::catalog::{testbed_machines, LoadKind, TESTBED};
use jsym_core::testkit::register_test_classes;
use jsym_core::{JsObj, JsShell, Placement, Value};
use jsym_sysmon::{JsConstraints, ParamValue, SysParam};
use jsym_vda::VdaError;

fn testbed_deployment(n: usize) -> jsym_core::Deployment {
    // 1e-3: coarse enough that real RMI overhead (~0.5 ms) stays below one
    // virtual second, which the timing assertions here need.
    let d = JsShell::new()
        .time_scale(1e-3)
        .add_machines(testbed_machines(n, LoadKind::Dedicated, 5))
        .boot();
    register_test_classes(&d);
    d
}

#[test]
fn name_constraints_exclude_machines() {
    // The paper's own example: NODE_NAME != "milena".
    let d = testbed_deployment(4);
    let mut constr = JsConstraints::new();
    constr.set(SysParam::NodeName, "!=", "milena");
    for _ in 0..3 {
        let n = d.vda().request_node_constrained(&constr).unwrap();
        assert_ne!(n.name().unwrap(), "milena");
    }
    // Only milena remains unallocated; the constraint now fails.
    assert!(matches!(
        d.vda().request_node_constrained(&constr),
        Err(VdaError::ConstraintsUnsatisfied)
    ));
    d.shutdown();
}

#[test]
fn performance_constraints_select_machine_classes() {
    let d = testbed_deployment(13);
    // Only Ultra-class machines have ≥ 10 Mflop/s peaks.
    let mut ultras_only = JsConstraints::new();
    ultras_only.set(SysParam::PeakMflops, ">=", 10.0);
    let cluster = d.vda().request_cluster(8, Some(&ultras_only)).unwrap();
    for m in cluster.machines() {
        let spec = d.pool().machine(m).unwrap().spec().clone();
        assert!(spec.peak_mflops >= 10.0, "{} is not an Ultra", spec.name);
    }
    // A ninth Ultra does not exist.
    assert!(d.vda().request_node_constrained(&ultras_only).is_err());
    d.shutdown();
}

#[test]
fn memory_constraints_follow_the_catalog() {
    let d = testbed_deployment(13);
    let mut big_mem = JsConstraints::new();
    big_mem.set(SysParam::TotalMem, ">=", 200);
    // Exactly the six Ultra 10s have 256 MB.
    let c = d.vda().request_cluster(6, Some(&big_mem)).unwrap();
    assert_eq!(c.nr_nodes(), 6);
    assert!(d.vda().request_node_constrained(&big_mem).is_err());
    d.shutdown();
}

#[test]
fn string_and_numeric_params_queryable_per_component() {
    let d = testbed_deployment(13);
    let domain = d.vda().request_domain(&[&[4, 4], &[5]], None).unwrap();
    // Node-level string parameter.
    let node = domain.get_node(0, 0, 0).unwrap();
    let name = node.get_sys_param(SysParam::NodeName).unwrap();
    assert!(matches!(name, ParamValue::Str(_)));
    // Component-level averaged numeric parameter (paper §4.6).
    let site_peak = domain
        .get_site(1)
        .unwrap()
        .get_sys_param(SysParam::PeakMflops)
        .unwrap()
        .as_num()
        .unwrap();
    let members = domain.get_site(1).unwrap().machines();
    let mean: f64 = members
        .iter()
        .map(|&m| d.pool().machine(m).unwrap().spec().peak_mflops)
        .sum::<f64>()
        / members.len() as f64;
    assert!((site_peak - mean).abs() < 1e-9);
    d.shutdown();
}

#[test]
fn placement_constraints_put_objects_on_fast_machines() {
    let d = testbed_deployment(13);
    let reg = d.register_app().unwrap();
    let mut fast = JsConstraints::new();
    fast.set(SysParam::CpuMhz, ">=", 400);
    for _ in 0..3 {
        let obj = JsObj::create(&reg, "Counter", &[], Placement::Auto, Some(&fast)).unwrap();
        let loc = obj.get_location().unwrap();
        assert!(d.pool().machine(loc).unwrap().spec().cpu_mhz >= 400);
        // Objects can pile onto the same machine — placement does not
        // allocate VDA nodes — so no exclusivity check here.
        assert_eq!(
            obj.sinvoke("echo", &[Value::Bool(true)]).unwrap(),
            Value::Bool(true)
        );
    }
    d.shutdown();
}

#[test]
fn catalog_speeds_are_observable_through_compute() {
    // The constraint machinery and the execution model must agree: a task
    // constrained to the slowest machine takes ~12x the fastest's time.
    let d = testbed_deployment(13);
    let reg = d.register_app().unwrap();
    let clock = d.clock().clone();

    let mut slowest = JsConstraints::new();
    slowest.set(SysParam::NodeName, "==", TESTBED[12].1);
    let slow_obj = JsObj::create(&reg, "Counter", &[], Placement::Auto, Some(&slowest)).unwrap();
    let mut fastest = JsConstraints::new();
    fastest.set(SysParam::NodeName, "==", TESTBED[0].1);
    let fast_obj = JsObj::create(&reg, "Counter", &[], Placement::Auto, Some(&fastest)).unwrap();

    // Min-of-3 per machine: noise only ever inflates the measurement.
    let time_of = |obj: &JsObj| {
        (0..3)
            .map(|_| {
                let t0 = clock.now();
                obj.sinvoke("compute", &[Value::F64(60e6)]).unwrap();
                clock.now() - t0
            })
            .fold(f64::INFINITY, f64::min)
    };
    let t_fast = time_of(&fast_obj);
    let t_slow = time_of(&slow_obj);
    assert!(
        t_slow > 5.0 * t_fast,
        "slow {t_slow:.2}s vs fast {t_fast:.2}s"
    );
    d.shutdown();
}
