//! Workspace tests: persistence through an on-disk store and codebase
//! lifecycles spanning several components.

use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};
use jsym_core::{JsObj, ObjectStore, Placement, Value};
use jsym_net::NodeId;

#[test]
fn on_disk_store_persists_across_deployments() {
    let dir = std::env::temp_dir().join(format!("jsym-suite-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ObjectStore::on_disk(&dir).unwrap();

    // First deployment: create, mutate, store.
    {
        let d = shell_with_idle_machines(2)
            .object_store(store.clone())
            .boot();
        register_test_classes(&d);
        let reg = d.register_app().unwrap();
        let obj = JsObj::create(&reg, "Counter", &[Value::I64(5)], Placement::Auto, None).unwrap();
        obj.sinvoke("add", &[Value::I64(37)]).unwrap();
        assert_eq!(obj.store(Some("long-lived")).unwrap(), "long-lived");
        reg.unregister().unwrap();
        d.shutdown();
    }
    // The state file exists on disk.
    assert!(dir.join("long-lived.Counter.state").exists());

    // Second deployment sharing the same store: load and continue.
    {
        let d = shell_with_idle_machines(2)
            .object_store(store.clone())
            .boot();
        register_test_classes(&d);
        let reg = d.register_app().unwrap();
        let obj = reg
            .load_stored("long-lived", Placement::Auto, None)
            .unwrap();
        assert_eq!(obj.sinvoke("get", &[]).unwrap(), Value::I64(42));
        d.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn codebase_lifecycle_across_components() {
    let d = shell_with_idle_machines(6).boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let site = d.vda().request_site(&[2, 2], None).unwrap();
    let spare = d.vda().request_node().unwrap();

    let cb = reg.codebase();
    cb.add("blob.jar", 500_000);
    // Load to the whole site plus one extra node.
    cb.load_site(&site).unwrap();
    cb.load_node(&spare).unwrap();
    assert_eq!(cb.loaded_nodes("blob.jar").len(), 5);

    // Creation works on all five, fails on the sixth.
    let unloaded = d
        .machines()
        .into_iter()
        .find(|m| !cb.loaded_nodes("blob.jar").contains(m))
        .unwrap();
    assert!(JsObj::create(
        &reg,
        "Blob",
        &[Value::I64(10)],
        Placement::OnPhys(unloaded),
        None
    )
    .is_err());
    for &m in &cb.loaded_nodes("blob.jar") {
        assert!(JsObj::create(&reg, "Blob", &[Value::I64(10)], Placement::OnPhys(m), None).is_ok());
    }

    // Free the codebase; memory drains everywhere.
    cb.free().unwrap();
    for m in d.machines() {
        let machine = d.pool().machine(m).unwrap();
        let mut tries = 0;
        while machine.runtime_bytes() > 0 {
            tries += 1;
            assert!(tries < 500, "codebase memory not released on {m}");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
    d.shutdown();
}

#[test]
fn store_keys_listable_and_removable() {
    let d = shell_with_idle_machines(2).boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::Auto, None).unwrap();
    obj.store(Some("a")).unwrap();
    obj.store(Some("b")).unwrap();
    assert_eq!(d.store().keys(), vec!["a".to_owned(), "b".to_owned()]);
    assert!(d.store().remove("a"));
    assert!(reg.load_stored("a", Placement::Auto, None).is_err());
    assert!(reg.load_stored("b", Placement::Auto, None).is_ok());
    d.shutdown();
}

#[test]
fn migrated_object_can_still_be_stored_and_loaded() {
    let d = shell_with_idle_machines(3).boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(
        &reg,
        "Counter",
        &[Value::I64(3)],
        Placement::OnPhys(NodeId(0)),
        None,
    )
    .unwrap();
    obj.migrate(jsym_core::MigrateTarget::ToPhys(NodeId(2)), None)
        .unwrap();
    let key = obj.store(None).unwrap();
    let copy = reg
        .load_stored(&key, Placement::OnPhys(NodeId(1)), None)
        .unwrap();
    assert_eq!(copy.sinvoke("get", &[]).unwrap(), Value::I64(3));
    assert_eq!(copy.get_location().unwrap(), NodeId(1));
    d.shutdown();
}
