//! Tests of the network agent system (paper §5.1): monitoring, hierarchical
//! aggregation, heartbeats, failure detection and manager failover.

use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};
use jsym_core::{JsShell, MachineConfig};
use jsym_net::{LinkClass, NodeId};
use jsym_sysmon::{LoadModel, LoadProfile, MachineSpec, SysParam};
use std::time::Duration;

fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    for _ in 0..800 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for: {what}");
}

#[test]
fn na_produces_snapshots_and_rounds() {
    let d = shell_with_idle_machines(2).boot();
    register_test_classes(&d);
    wait_until(
        || d.latest_snapshot(NodeId(0)).is_some(),
        "first monitoring round",
    );
    let snap = d.latest_snapshot(NodeId(0)).unwrap();
    assert_eq!(snap.str(SysParam::NodeName), Some("m0"));
    assert!(snap.num(SysParam::IdlePct).unwrap() > 80.0);
    wait_until(
        || d.node_stats(NodeId(0)).unwrap().monitor_rounds >= 3,
        "three monitoring rounds",
    );
    d.shutdown();
}

#[test]
fn cluster_manager_aggregates_member_reports() {
    // Two machines with very different loads in one cluster: the manager's
    // aggregate must sit between them (averaging, §5.1).
    let shell = JsShell::new()
        .time_scale(1e-4)
        .monitor_period(0.5)
        .failure_timeout(1e9)
        .add_machine(MachineConfig {
            spec: MachineSpec::generic("busy", 50.0, 256.0),
            load: LoadModel::new(LoadProfile::Constant(0.8), 0),
            link: LinkClass::Lan100,
        })
        .add_machine(MachineConfig::idle("calm", 50.0));
    let d = shell.boot();
    let cluster = d.vda().request_cluster(2, None).unwrap();
    let label = format!("{}", cluster.key());
    let manager = cluster.manager().unwrap().phys();

    wait_until(
        || d.aggregated_snapshot(manager, &label).is_some(),
        "manager-side aggregate",
    );
    // Let a couple more rounds flow so both members' reports are in.
    std::thread::sleep(Duration::from_millis(50));
    let agg = d.aggregated_snapshot(manager, &label).unwrap();
    let idle = agg.num(SysParam::IdlePct).unwrap();
    // busy ≈ 13% idle, calm ≈ 98% idle → average ≈ 55%.
    assert!(
        (25.0..90.0).contains(&idle),
        "aggregate idle {idle} is not an average of busy+calm"
    );
    d.shutdown();
}

#[test]
fn dead_member_is_detected_and_released() {
    // At 1e-4 scale, 50 virtual seconds = 5 ms real — comfortably above OS
    // scheduling noise, so no spurious failure declarations.
    let shell = shell_with_idle_machines(3)
        .time_scale(1e-4)
        .monitor_period(2.0)
        .failure_timeout(50.0);
    let d = shell.boot();
    register_test_classes(&d);
    let cluster = d.vda().request_cluster(3, None).unwrap();
    let manager = cluster.manager().unwrap();
    // Kill a non-manager member.
    let victim = (0..3)
        .map(|i| cluster.get_node(i).unwrap())
        .find(|n| *n != manager && Some(n.clone()) != cluster.backup_manager())
        .unwrap();
    let victim_phys = victim.phys();

    // Let heartbeats establish first.
    wait_until(
        || d.node_stats(manager.phys()).unwrap().monitor_rounds >= 2,
        "monitoring to start",
    );
    d.kill_node(victim_phys);
    wait_until(|| d.vda().is_failed(victim_phys), "failure detection");
    wait_until(|| cluster.nr_nodes() == 2, "failed node release");
    assert_eq!(cluster.manager().unwrap(), manager, "manager unchanged");
    d.shutdown();
}

#[test]
fn manager_failure_promotes_backup() {
    let shell = shell_with_idle_machines(3)
        .time_scale(1e-4)
        .monitor_period(2.0)
        .failure_timeout(50.0);
    let d = shell.boot();
    let cluster = d.vda().request_cluster(3, None).unwrap();
    let manager = cluster.manager().unwrap();
    let backup = cluster.backup_manager().unwrap();
    let events = d.vda().subscribe();

    wait_until(
        || {
            (0..3).all(|i| {
                let n = cluster.get_node(i).unwrap().phys();
                d.node_stats(n).unwrap().monitor_rounds >= 2
            })
        },
        "monitoring to start everywhere",
    );
    d.kill_node(manager.phys());
    wait_until(
        || d.vda().is_failed(manager.phys()),
        "manager failure detection",
    );
    wait_until(|| cluster.nr_nodes() == 2, "manager release");
    // The backup took over (paper §5.1).
    assert_eq!(cluster.manager().unwrap(), backup);
    // A takeover event was emitted.
    let saw_takeover = events
        .try_iter()
        .any(|e| matches!(e, jsym_vda::VdaEvent::ManagerChanged { takeover: true, .. }));
    assert!(saw_takeover, "no takeover ManagerChanged event observed");
    d.shutdown();
}

#[test]
fn monitoring_generates_bounded_network_traffic() {
    // Without any architecture there are no managers, so NAs stay silent;
    // with a cluster, report+heartbeat traffic flows each period.
    let d = shell_with_idle_machines(3)
        .time_scale(1e-4)
        .monitor_period(0.5)
        .boot();
    std::thread::sleep(Duration::from_millis(30));
    let before = d.net_stats().msgs_sent;
    // Quiet: no architectures → no monitoring targets.
    assert_eq!(before, 0, "NAs sent traffic without any architecture");

    let _cluster = d.vda().request_cluster(3, None).unwrap();
    wait_until(|| d.net_stats().msgs_sent > 10, "monitoring traffic");
    d.shutdown();
}

#[test]
fn site_and_domain_managers_receive_aggregates() {
    let d = shell_with_idle_machines(6)
        .time_scale(1e-4)
        .monitor_period(0.4)
        .boot();
    let domain = d.vda().request_domain(&[&[2, 2], &[2]], None).unwrap();
    let dm = domain.manager().unwrap().phys();
    let site0 = domain.get_site(0).unwrap();
    let sm = site0.manager().unwrap().phys();
    let site_label = format!("{}", site0.key());
    // The site manager aggregates its site; eventually present.
    wait_until(
        || d.aggregated_snapshot(sm, &site_label).is_some(),
        "site-level aggregate at the site manager",
    );
    // The domain manager aggregates the whole domain.
    let dom_label = format!("{}", domain.key());
    wait_until(
        || d.aggregated_snapshot(dm, &dom_label).is_some(),
        "domain-level aggregate at the domain manager",
    );
    d.shutdown();
}

#[test]
fn monitoring_knobs_are_runtime_adjustable() {
    // Boot with an enormous period (monitoring effectively off), then dial
    // it down through the JS-Shell API and watch rounds start flowing —
    // paper §5.1: periods are "changeable under JS-Shell".
    let d = shell_with_idle_machines(2)
        .time_scale(1e-4)
        .monitor_period(1e9)
        .failure_timeout(1e12)
        .boot();
    let _cluster = d.vda().request_cluster(2, None).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let before = d.node_stats(NodeId(0)).unwrap().monitor_rounds;
    assert_eq!(before, 0, "monitoring should be dormant at a huge period");

    d.set_monitor_period(1.0);
    wait_until(
        || d.node_stats(NodeId(0)).unwrap().monitor_rounds >= 3,
        "rounds after tightening the period",
    );

    // Tighten the failure timeout too, then kill a node: detection follows
    // the new setting.
    d.set_failure_timeout(40.0);
    wait_until(
        || d.node_stats(NodeId(1)).unwrap().monitor_rounds >= 2,
        "peer monitoring",
    );
    d.kill_node(NodeId(1));
    wait_until(|| d.vda().is_failed(NodeId(1)), "failure detection");
    d.shutdown();
}

#[test]
fn event_log_records_failures_with_recovery_enabled() {
    use jsym_core::RuntimeEvent;
    let d = shell_with_idle_machines(3)
        .time_scale(1e-4)
        .monitor_period(2.0)
        .failure_timeout(50.0)
        .checkpointing(5.0)
        .boot();
    register_test_classes(&d);
    let _cluster = d.vda().request_cluster(3, None).unwrap();
    wait_until(
        || d.node_stats(NodeId(0)).unwrap().monitor_rounds >= 2,
        "monitoring to start",
    );
    d.kill_node(NodeId(2));
    wait_until(|| d.vda().is_failed(NodeId(2)), "failure detection");
    wait_until(
        || {
            d.events()
                .all()
                .iter()
                .any(|(_, e)| matches!(e, RuntimeEvent::NodeFailed { node } if *node == NodeId(2)))
        },
        "NodeFailed event in the log",
    );
    d.shutdown();
}
