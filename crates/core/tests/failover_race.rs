//! Manager failover racing an in-flight migration (ISSUE 6 satellite).
//!
//! While a counter object ping-pongs between two surviving machines and a
//! stream of invocations is in flight, the cluster manager is killed and
//! its backup promoted — with the replicated directory enabled, so the
//! `SetLocation` write-throughs race the failover's `MarkFailed`/`SetRole`
//! proposals. The test asserts end-to-end integrity:
//!
//! * no RMI is misrouted — every invocation lands on the object (nested
//!   probes resolve through the directory and never error);
//! * no message is double-delivered — each `add(1)` returns exactly the
//!   previous value + 1, and the final count equals the number of adds.

use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};
use jsym_core::{JsObj, MigrateTarget, Placement, Value};
use jsym_net::NodeId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    for _ in 0..800 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for: {what}");
}

#[test]
fn failover_races_migration_without_misroute_or_double_delivery() {
    // At this time scale one virtual second is 0.1 ms real, so the failure
    // timeout must stay well above ordinary thread-scheduling noise: 500
    // virtual seconds is 50 ms real. Anything much tighter (e.g. 50 → 5 ms)
    // lets a descheduled NA thread on a *surviving* node miss its heartbeat
    // window during the post-kill directory re-election burst, get falsely
    // declared failed, and permanently shrink the cluster under test.
    let d = shell_with_idle_machines(5)
        .time_scale(1e-4)
        .monitor_period(2.0)
        .failure_timeout(500.0)
        .directory_replicas(3)
        .boot();
    register_test_classes(&d);
    let cluster = d.vda().request_cluster(5, None).unwrap();
    let manager = cluster.manager().unwrap();
    let backup = cluster.backup_manager().unwrap();
    let victim = manager.phys();

    // Pick an app home and two migration endpoints that all survive.
    let survivors: Vec<NodeId> = (0..5).map(NodeId).filter(|&n| n != victim).collect();
    let home = survivors[0];
    let (a, b) = (survivors[1], survivors[2]);
    let reg = d.register_app_on(home).unwrap();

    wait_until(
        || {
            (0..5).all(|i| {
                d.node_stats(NodeId(i))
                    .is_some_and(|s| s.monitor_rounds >= 2)
            })
        },
        "monitoring to start everywhere",
    );

    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(a), None).unwrap();
    // The prober lives on the home node and reaches `obj` through its
    // first-order handle — the resolve path the directory serves.
    let prober = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(home), None).unwrap();

    // Invocation stream: serialized adds of exactly 1. Shared-nothing with
    // the migration loop below, so any gap or repeat in the returned
    // sequence is a delivery bug, not test-side racing.
    let stop = Arc::new(AtomicBool::new(false));
    let adder = {
        let stop = Arc::clone(&stop);
        let obj = obj.handle();
        let reg = d.register_app_on(home).unwrap();
        std::thread::spawn(move || {
            // A second registration shares nothing with the main one except
            // the runtime; its nested calls resolve via the directory.
            let me = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(home), None).unwrap();
            let mut prev = 0i64;
            let mut adds = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let v = me
                    .sinvoke("add_to", &[Value::Handle(obj), Value::I64(1)])
                    .expect("add_to must never fail across failover");
                let got = v.as_i64().expect("add returns the running count");
                assert_eq!(
                    got,
                    prev + 1,
                    "double delivery or lost update: {prev} -> {got}"
                );
                prev = got;
                adds += 1;
            }
            me.free().unwrap();
            reg.unregister().unwrap();
            (prev, adds)
        })
    };

    // Migration loop racing the failover: ping-pong a<->b, killing the
    // manager part-way through.
    let mut dst = b;
    for round in 0..10 {
        let landed = obj.migrate(MigrateTarget::ToPhys(dst), None).unwrap();
        assert_eq!(landed, dst, "migration landed on the wrong node");
        // Probe through the directory-resolved path: must reach the object
        // wherever it is now.
        let v = prober
            .sinvoke("add_to", &[Value::Handle(obj.handle()), Value::I64(0)])
            .unwrap();
        assert!(v.as_i64().is_some(), "probe misrouted: {v:?}");
        if round == 3 {
            d.kill_node(victim);
        }
        dst = if dst == b { a } else { b };
    }

    wait_until(|| d.vda().is_failed(victim), "manager failure detection");
    wait_until(
        || cluster.manager().is_some_and(|m| m == backup),
        "backup promotion",
    );

    stop.store(true, Ordering::Relaxed);
    let (last, adds) = adder.join().expect("adder thread must not panic");
    assert!(adds > 0, "the invocation stream never ran");
    // Exactly-once end to end: the final count equals the adds performed.
    let total = obj.sinvoke("get", &[]).unwrap();
    assert_eq!(total, Value::I64(last));
    assert_eq!(last as u64, adds);

    // The directory survived the minority kill: one leader among survivors,
    // and the role transition for the cluster was committed.
    wait_until(
        || {
            let st = d.directory_status();
            st.iter().filter(|s| s.role == "leader").count() == 1 && st.iter().any(|s| s.roles >= 1)
        },
        "directory leader and committed role transition",
    );

    obj.free().unwrap();
    prober.free().unwrap();
    reg.unregister().unwrap();
    d.shutdown();
}
