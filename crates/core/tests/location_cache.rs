//! Location-cache staleness tests.
//!
//! Nested calls (`ctx.invoke` from inside a method body) resolve foreign
//! handles through the per-node `location_cache`. A cached location can go
//! stale two ways: the object migrates (the old host answers `ObjectMoved`,
//! which already invalidates and retries), or the cached host *dies* — in
//! which case the invoke fails with `NodeUnreachable` and, before the fix,
//! the stale entry was never dropped, masking the directory-correct answer
//! after failover recovery re-placed the object.

use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};
use jsym_core::{JsObj, MigrateTarget, Placement, Value};
use jsym_net::NodeId;
use std::time::Duration;

fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    for _ in 0..1000 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for: {what}");
}

/// Nested calls racing explicit migrations: every `add_to` through the
/// caching path must land exactly once, wherever the target currently is.
#[test]
fn nested_calls_survive_migrate_races() {
    let d = shell_with_idle_machines(3).boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let proxy = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(2)), None).unwrap();
    let target = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(0)), None).unwrap();

    const CALLS: i64 = 40;
    let driver = {
        let proxy = proxy.clone();
        let handle = target.handle();
        std::thread::spawn(move || {
            for _ in 0..CALLS {
                proxy
                    .sinvoke("add_to", &[Value::Handle(handle), Value::I64(1)])
                    .expect("nested add_to must survive a concurrent migration");
            }
        })
    };
    // Bounce the target between m0 and m1 while the driver hammers it.
    for i in 0..20u32 {
        let dst = NodeId(i % 2);
        let _ = target.migrate(MigrateTarget::ToPhys(dst), None);
        std::thread::sleep(Duration::from_millis(1));
    }
    driver.join().expect("driver thread");
    assert_eq!(target.sinvoke("get", &[]).unwrap(), Value::I64(CALLS));
    d.shutdown();
}

/// A stale cache entry pointing at a killed node must not mask the
/// post-recovery placement: the nested call drops the entry, re-resolves
/// and reaches the resurrected object.
#[test]
fn stale_cache_entry_does_not_mask_failover_recovery() {
    let d = shell_with_idle_machines(3)
        .time_scale(1e-4)
        .monitor_period(2.0)
        .failure_timeout(50.0)
        .checkpointing(10.0)
        .boot();
    register_test_classes(&d);
    // An architecture is needed so the NAS monitors (and detects failures).
    let _cluster = d.vda().request_cluster(3, None).unwrap();
    let reg = d.register_app().unwrap();
    let proxy = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(0)), None).unwrap();
    let target = JsObj::create(
        &reg,
        "Counter",
        &[Value::I64(41)],
        Placement::OnPhys(NodeId(2)),
        None,
    )
    .unwrap();

    // Prime m0's location cache with target → m2 through a nested no-op.
    assert_eq!(
        proxy
            .sinvoke("add_to", &[Value::Handle(target.handle()), Value::I64(0)])
            .unwrap(),
        Value::I64(41)
    );

    wait_until(
        || d.store().keys().iter().any(|k| k.starts_with("__ckpt_")),
        "first checkpoint",
    );
    d.kill_node(NodeId(2));
    wait_until(|| d.vda().is_failed(NodeId(2)), "failure detection");
    wait_until(
        || {
            target
                .get_location()
                .map(|l| l != NodeId(2))
                .unwrap_or(false)
        },
        "object recovery",
    );

    // The nested call re-resolves past the stale m2 entry and reaches the
    // resurrected object on its new home.
    assert_eq!(
        proxy
            .sinvoke("add_to", &[Value::Handle(target.handle()), Value::I64(1)])
            .expect("stale cache entry must not mask the recovered placement"),
        Value::I64(42)
    );
    d.shutdown();
}
