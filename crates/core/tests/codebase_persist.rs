//! Tests of selective classloading (§4.3) and persistent objects (§4.7).

use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};
use jsym_core::{Deployment, JsError, JsObj, MigrateTarget, Placement, Value};
use jsym_net::NodeId;

fn boot(n: usize) -> Deployment {
    let d = shell_with_idle_machines(n).boot();
    register_test_classes(&d);
    d
}

// ------------------------------------------------------- selective loading

#[test]
fn creation_requires_loaded_artifact() {
    let d = boot(2);
    let reg = d.register_app().unwrap();
    // Blob lives in "blob.jar", which has not been loaded anywhere.
    assert!(matches!(
        JsObj::create(
            &reg,
            "Blob",
            &[Value::I64(10)],
            Placement::OnPhys(NodeId(1)),
            None
        ),
        Err(JsError::ClassNotLoaded { .. })
    ));
    // Load the codebase onto node 1 only.
    let cb = reg.codebase();
    cb.add("blob.jar", 200_000);
    cb.load_phys(NodeId(1)).unwrap();
    assert!(JsObj::create(
        &reg,
        "Blob",
        &[Value::I64(10)],
        Placement::OnPhys(NodeId(1)),
        None
    )
    .is_ok());
    // Node 0 still lacks it (selective!).
    assert!(matches!(
        JsObj::create(
            &reg,
            "Blob",
            &[Value::I64(10)],
            Placement::OnPhys(NodeId(0)),
            None
        ),
        Err(JsError::ClassNotLoaded {
            node: NodeId(0),
            ..
        })
    ));
    d.shutdown();
}

#[test]
fn codebase_load_accounts_memory_and_free_releases_it() {
    let d = boot(2);
    let reg = d.register_app().unwrap();
    let cb = reg.codebase();
    cb.add("blob.jar", 4 << 20); // 4 MiB of "byte-code"
    cb.load_phys(NodeId(1)).unwrap();

    let m1 = d.pool().machine(NodeId(1)).unwrap();
    assert_eq!(m1.runtime_bytes(), 4 << 20);
    assert_eq!(d.loaded_artifacts(NodeId(1)), vec!["blob.jar".to_owned()]);
    assert!(d.loaded_artifacts(NodeId(0)).is_empty());
    assert_eq!(d.node_stats(NodeId(1)).unwrap().artifact_bytes, 4 << 20);

    cb.free().unwrap();
    // Unload is one-sided; give it a moment to arrive.
    let mut tries = 0;
    while m1.runtime_bytes() > 0 {
        tries += 1;
        assert!(tries < 200, "codebase memory never released");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert!(d.loaded_artifacts(NodeId(1)).is_empty());
    d.shutdown();
}

#[test]
fn codebase_load_to_cluster_reaches_all_members() {
    let d = boot(4);
    let reg = d.register_app().unwrap();
    let cluster = d.vda().request_cluster(3, None).unwrap();
    let cb = reg.codebase();
    cb.add("blob.jar", 1000);
    cb.add_url("http://www.par.univie.ac.at/JS/test/extra.jar", 500);
    cb.load_cluster(&cluster).unwrap();
    for m in cluster.machines() {
        assert_eq!(
            d.loaded_artifacts(m),
            vec!["blob.jar".to_owned(), "extra.jar".to_owned()]
        );
    }
    assert_eq!(cb.loaded_nodes("blob.jar").len(), 3);
    d.shutdown();
}

#[test]
fn duplicate_loads_are_idempotent() {
    let d = boot(2);
    let reg = d.register_app().unwrap();
    let cb = reg.codebase();
    cb.add("blob.jar", 1 << 20);
    cb.load_phys(NodeId(1)).unwrap();
    cb.load_phys(NodeId(1)).unwrap(); // second load: no double accounting
    let m1 = d.pool().machine(NodeId(1)).unwrap();
    assert_eq!(m1.runtime_bytes(), 1 << 20);
    d.shutdown();
}

#[test]
fn migration_to_node_without_class_fails_cleanly() {
    let d = boot(3);
    let reg = d.register_app().unwrap();
    let cb = reg.codebase();
    cb.add("blob.jar", 1000);
    cb.load_phys(NodeId(1)).unwrap();
    let obj = JsObj::create(
        &reg,
        "Blob",
        &[Value::I64(64)],
        Placement::OnPhys(NodeId(1)),
        None,
    )
    .unwrap();
    // Node 2 lacks blob.jar: migration must fail and the object stay put.
    assert!(matches!(
        obj.migrate(MigrateTarget::ToPhys(NodeId(2)), None),
        Err(JsError::ClassNotLoaded { .. })
    ));
    assert_eq!(obj.get_location().unwrap(), NodeId(1));
    assert_eq!(obj.sinvoke("size", &[]).unwrap(), Value::I64(64));
    d.shutdown();
}

// ------------------------------------------------------- persistent objects

#[test]
fn store_and_load_round_trip() {
    let d = boot(2);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[Value::I64(11)], Placement::Auto, None).unwrap();
    obj.sinvoke("add", &[Value::I64(4)]).unwrap();

    // Store under an explicit key.
    let key = obj.store(Some("my-counter")).unwrap();
    assert_eq!(key, "my-counter");
    assert_eq!(d.store().keys(), vec!["my-counter".to_owned()]);

    // The original keeps running and diverges.
    obj.sinvoke("add", &[Value::I64(100)]).unwrap();

    // Load resurrects the stored state (15), not the live state (115).
    let copy = reg
        .load_stored("my-counter", Placement::OnPhys(NodeId(1)), None)
        .unwrap();
    assert_eq!(copy.sinvoke("get", &[]).unwrap(), Value::I64(15));
    assert_eq!(copy.get_location().unwrap(), NodeId(1));
    assert_eq!(obj.sinvoke("get", &[]).unwrap(), Value::I64(115));
    d.shutdown();
}

#[test]
fn store_generates_unique_keys_when_unnamed() {
    let d = boot(2);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::Auto, None).unwrap();
    let k1 = obj.store(None).unwrap();
    let k2 = obj.store(None).unwrap();
    assert_ne!(k1, k2);
    assert_eq!(d.store().len(), 2);
    d.shutdown();
}

#[test]
fn load_unknown_key_fails() {
    let d = boot(2);
    let reg = d.register_app().unwrap();
    assert!(matches!(
        reg.load_stored("ghost", Placement::Auto, None),
        Err(JsError::NoSuchStoredObject(_))
    ));
    d.shutdown();
}

#[test]
fn loading_a_class_gated_object_respects_classloading() {
    let d = boot(3);
    let reg = d.register_app().unwrap();
    let cb = reg.codebase();
    cb.add("blob.jar", 1000);
    cb.load_phys(NodeId(1)).unwrap();
    let obj = JsObj::create(
        &reg,
        "Blob",
        &[Value::I64(32)],
        Placement::OnPhys(NodeId(1)),
        None,
    )
    .unwrap();
    let key = obj.store(None).unwrap();
    // Restoring on a node without the class fails; on node 1 it works.
    assert!(matches!(
        reg.load_stored(&key, Placement::OnPhys(NodeId(2)), None),
        Err(JsError::ClassNotLoaded { .. })
    ));
    let back = reg
        .load_stored(&key, Placement::OnPhys(NodeId(1)), None)
        .unwrap();
    assert_eq!(back.sinvoke("size", &[]).unwrap(), Value::I64(32));
    d.shutdown();
}

#[test]
fn persistence_survives_the_original_objects_free() {
    let d = boot(2);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[Value::I64(5)], Placement::Auto, None).unwrap();
    let key = obj.store(None).unwrap();
    obj.free().unwrap();
    let back = reg.load_stored(&key, Placement::Auto, None).unwrap();
    assert_eq!(back.sinvoke("get", &[]).unwrap(), Value::I64(5));
    d.shutdown();
}
