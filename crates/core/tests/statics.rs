//! Tests of the statics extension (paper §7 future work): per-node static
//! contexts with all three invocation modes.

use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};
use jsym_core::{JsError, JsObj, JsStaticRef, Placement, Value};
use jsym_net::NodeId;

#[test]
fn static_state_is_shared_per_node() {
    let d = shell_with_idle_machines(2).boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let s1 = JsStaticRef::new(&reg, "Counter", Placement::OnPhys(NodeId(1)), None).unwrap();
    // Two references to the same node's static context share state.
    let s1b = JsStaticRef::new(&reg, "Counter", Placement::OnPhys(NodeId(1)), None).unwrap();
    s1.sinvoke("add", &[Value::I64(5)]).unwrap();
    assert_eq!(s1b.sinvoke("get", &[]).unwrap(), Value::I64(5));
    d.shutdown();
}

#[test]
fn statics_are_per_node_not_global() {
    let d = shell_with_idle_machines(3).boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let on0 = JsStaticRef::new(&reg, "Counter", Placement::OnPhys(NodeId(0)), None).unwrap();
    let on1 = JsStaticRef::new(&reg, "Counter", Placement::OnPhys(NodeId(1)), None).unwrap();
    on0.sinvoke("add", &[Value::I64(3)]).unwrap();
    on1.sinvoke("add", &[Value::I64(40)]).unwrap();
    assert_eq!(on0.sinvoke("get", &[]).unwrap(), Value::I64(3));
    assert_eq!(on1.sinvoke("get", &[]).unwrap(), Value::I64(40));
    d.shutdown();
}

#[test]
fn statics_shared_across_applications() {
    // Statics live per node (per "JVM"), so two applications touching the
    // same node's static context observe each other — exactly Java.
    let d = shell_with_idle_machines(2).boot();
    register_test_classes(&d);
    let reg_a = d.register_app().unwrap();
    let reg_b = d.register_app_on(NodeId(1)).unwrap();
    let via_a = JsStaticRef::new(&reg_a, "Counter", Placement::OnPhys(NodeId(0)), None).unwrap();
    let via_b = JsStaticRef::new(&reg_b, "Counter", Placement::OnPhys(NodeId(0)), None).unwrap();
    via_a.sinvoke("add", &[Value::I64(7)]).unwrap();
    assert_eq!(via_b.sinvoke("get", &[]).unwrap(), Value::I64(7));
    d.shutdown();
}

#[test]
fn static_invocation_modes_all_work() {
    let d = shell_with_idle_machines(2).boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let st = JsStaticRef::new(&reg, "Counter", Placement::OnPhys(NodeId(1)), None).unwrap();
    st.oinvoke("add", &[Value::I64(1)]).unwrap();
    let h = st.ainvoke("add", &[Value::I64(2)]).unwrap();
    h.get_result().unwrap();
    // One-sided then async then sync: FIFO per static context guarantees
    // the sync read sees both.
    assert_eq!(st.sinvoke("get", &[]).unwrap(), Value::I64(3));
    d.shutdown();
}

#[test]
fn statics_are_independent_from_instances() {
    let d = shell_with_idle_machines(2).boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let st = JsStaticRef::new(&reg, "Counter", Placement::OnPhys(NodeId(0)), None).unwrap();
    let inst = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(0)), None).unwrap();
    st.sinvoke("add", &[Value::I64(100)]).unwrap();
    inst.sinvoke("add", &[Value::I64(1)]).unwrap();
    assert_eq!(st.sinvoke("get", &[]).unwrap(), Value::I64(100));
    assert_eq!(inst.sinvoke("get", &[]).unwrap(), Value::I64(1));
    d.shutdown();
}

#[test]
fn class_without_static_context_errors() {
    let d = shell_with_idle_machines(2).boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    // Blob registers no static context.
    let cb = reg.codebase();
    cb.add("blob.jar", 1000);
    cb.load_phys(NodeId(0)).unwrap();
    let st = JsStaticRef::new(&reg, "Blob", Placement::OnPhys(NodeId(0)), None).unwrap();
    assert!(matches!(
        st.sinvoke("size", &[]),
        Err(JsError::NoSuchMethod { .. })
    ));
    d.shutdown();
}

#[test]
fn statics_respect_selective_classloading() {
    let d = shell_with_idle_machines(2).boot();
    register_test_classes(&d);
    // Give Blob a static context, but never load blob.jar on node 1.
    d.classes()
        .set_static("Blob", || {
            Ok(Box::new(jsym_core::testkit::Blob::from_args(&[Value::I64(4)])) as _)
        })
        .unwrap();
    let reg = d.register_app().unwrap();
    let st = JsStaticRef::new(&reg, "Blob", Placement::OnPhys(NodeId(1)), None).unwrap();
    assert!(matches!(
        st.sinvoke("size", &[]),
        Err(JsError::ClassNotLoaded { .. })
    ));
    // After loading the artifact, it works.
    let cb = reg.codebase();
    cb.add("blob.jar", 1000);
    cb.load_phys(NodeId(1)).unwrap();
    assert_eq!(st.sinvoke("size", &[]).unwrap(), Value::I64(4));
    d.shutdown();
}

#[test]
fn set_static_on_unknown_class_errors() {
    let d = shell_with_idle_machines(1).boot();
    assert!(d.classes().set_static("Ghost", || unreachable!()).is_err());
    d.shutdown();
}
