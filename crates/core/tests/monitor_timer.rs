//! Regression test: `set_monitor_period` in executor mode re-arms the NA
//! monitor timer chain exactly once.
//!
//! The executor-mode NA runs as a self-re-arming timer task. Changing the
//! monitoring period re-arms a fresh chain so a shortened period takes
//! effect immediately — but the already-scheduled old chain must be
//! invalidated (via the per-node timer generation), otherwise every
//! `set_monitor_period` call would stack another chain and rounds would run
//! at a multiple of the configured rate.

use jsym_core::{JsShell, MachineConfig};

#[test]
fn set_monitor_period_does_not_stack_timer_chains() {
    let d = JsShell::new()
        .add_machine(MachineConfig::idle("m0", 400.0))
        .add_machine(MachineConfig::idle("m1", 400.0))
        .time_scale(1e-3)
        // Boot with a far-future round so the original chain never fires
        // inside the test window.
        .monitor_period(10_000.0)
        .executor(2)
        .boot();
    let node = d.machines()[0];

    // Re-arm repeatedly: each call supersedes the previous chain. If the
    // old chains stayed live, rounds would accrue at ~6x the period rate.
    for _ in 0..6 {
        d.set_monitor_period(5.0);
    }

    let start = d.clock().now();
    while d.clock().now() - start < 100.0 {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    let rounds = d.node_stats(node).expect("node stats").monitor_rounds;
    // ~20 rounds expected at one round per 5 virtual seconds. Leave slack
    // for scheduler jitter in both directions; six stacked chains would
    // show ~120.
    assert!(rounds >= 5, "monitor chain never re-armed: {rounds} rounds");
    assert!(
        rounds <= 40,
        "duplicate monitor chains after set_monitor_period: {rounds} rounds in 100 virt s at period 5"
    );
    d.shutdown();
}
