//! Differential property tests for the contention-free hot paths (PR 10).
//!
//! Both de-contended planes are pure concurrency-layout changes: the
//! lock-striped delivery-plane state (`state_shards > 1` + the per-thread
//! endpoint cache) must produce transcripts byte-identical to the legacy
//! single-lock layout, and the striped-injector executor must be
//! byte-identical to the legacy global-injector one. These tests run the
//! same random program under both layouts — batching armed so the `pending`
//! and `gaps` stripes are exercised too, migrations included so endpoint
//! directory churn hits the cache invalidation path — and require identical
//! invocation results (which encode per-object execution order, i.e. the
//! per-pair `(due, seq)` delivery order), identical charged wire bytes and
//! identical message counts.

use jsym_core::testkit::register_test_classes;
use jsym_core::{CostModel, JsObj, JsShell, MachineConfig, MigrateTarget, Placement, Value};
use jsym_net::NodeId;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    SyncAdd(u8, i64),
    AsyncAdd(u8, i64),
    OneSidedAdd(u8, i64),
    OneSidedSet(u8, i64),
    SyncRead(u8),
    Migrate(u8, u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0u8..2), -100i64..100).prop_map(|(o, k)| Op::SyncAdd(o, k)),
        ((0u8..2), -100i64..100).prop_map(|(o, k)| Op::AsyncAdd(o, k)),
        ((0u8..2), -100i64..100).prop_map(|(o, k)| Op::OneSidedAdd(o, k)),
        ((0u8..2), -100i64..100).prop_map(|(o, k)| Op::OneSidedSet(o, k)),
        (0u8..2).prop_map(Op::SyncRead),
        ((0u8..2), (0u8..2)).prop_map(|(o, n)| Op::Migrate(o, n)),
    ]
}

#[derive(Debug, PartialEq)]
struct Outcome {
    sync_results: Vec<Value>,
    async_results: Vec<Value>,
    finals: Vec<Value>,
    msgs_sent: u64,
    bytes_sent: u64,
    msgs_delivered: u64,
    msgs_dropped: u64,
    msgs_rejected: u64,
}

/// One knob set under test: the delivery plane's stripe layout, the
/// endpoint cache, and the executor's injector layout.
#[derive(Clone, Copy)]
struct Layout {
    state_shards: usize,
    endpoint_cache: bool,
    executor_threads: usize,
    legacy_injector: bool,
}

const LEGACY_NET: Layout = Layout {
    state_shards: 1,
    endpoint_cache: false,
    executor_threads: 0,
    legacy_injector: false,
};
const STRIPED_NET: Layout = Layout {
    state_shards: 64,
    endpoint_cache: true,
    executor_threads: 0,
    legacy_injector: false,
};
const LEGACY_EXEC: Layout = Layout {
    state_shards: 64,
    endpoint_cache: true,
    executor_threads: 2,
    legacy_injector: true,
};
const STRIPED_EXEC: Layout = Layout {
    state_shards: 64,
    endpoint_cache: true,
    executor_threads: 2,
    legacy_injector: false,
};

fn run(ops: &[Op], layout: Layout) -> Outcome {
    // Two machines, NA silenced so the counters contain application traffic
    // only; batching armed so the pending/gaps stripes run too.
    let d = JsShell::new()
        .add_machine(MachineConfig::idle("m0", 50.0))
        .add_machine(MachineConfig::idle("m1", 50.0))
        .time_scale(1e-5)
        .monitor_period(1e9)
        .failure_timeout(1e9)
        .cost_model(CostModel::free())
        .rmi_batching(1.0, 64 * 1024)
        .net_state_shards(layout.state_shards)
        .net_endpoint_cache(layout.endpoint_cache)
        .executor(layout.executor_threads)
        .executor_legacy_injector(layout.legacy_injector)
        .boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let objs: Vec<JsObj> = (0..2)
        .map(|_| JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap())
        .collect();
    let mut sync_results = Vec::new();
    let mut handles = Vec::new();
    for op in ops {
        match *op {
            Op::SyncAdd(o, k) => {
                sync_results.push(objs[o as usize].sinvoke("add", &[Value::I64(k)]).unwrap());
            }
            Op::AsyncAdd(o, k) => {
                handles.push(objs[o as usize].ainvoke("add", &[Value::I64(k)]).unwrap());
            }
            Op::OneSidedAdd(o, k) => {
                objs[o as usize].oinvoke("add", &[Value::I64(k)]).unwrap();
            }
            Op::OneSidedSet(o, k) => {
                objs[o as usize].oinvoke("set", &[Value::I64(k)]).unwrap();
            }
            Op::SyncRead(o) => {
                sync_results.push(objs[o as usize].sinvoke("get", &[]).unwrap());
            }
            Op::Migrate(o, n) => {
                // Quiesce the object's in-flight one-sided traffic first so
                // the migrate/invoke interleaving is the program's, not the
                // scheduler's.
                sync_results.push(objs[o as usize].sinvoke("get", &[]).unwrap());
                objs[o as usize]
                    .migrate(MigrateTarget::ToPhys(NodeId(n as u32)), None)
                    .unwrap();
            }
        }
    }
    let async_results: Vec<Value> = handles
        .into_iter()
        .map(|h| h.get_result().unwrap())
        .collect();
    // A final synchronous read per object flushes every one-sided call
    // still in flight (per-pair FIFO ordering regardless of the stripe
    // layout): afterwards the network is quiescent and the counters exact.
    let finals: Vec<Value> = objs
        .iter()
        .map(|o| o.sinvoke("get", &[]).unwrap())
        .collect();
    let s = d.net_stats();
    let out = Outcome {
        sync_results,
        async_results,
        finals,
        msgs_sent: s.msgs_sent,
        bytes_sent: s.bytes_sent,
        msgs_delivered: s.msgs_delivered,
        msgs_dropped: s.msgs_dropped,
        msgs_rejected: s.msgs_rejected,
    };
    reg.unregister().unwrap();
    d.shutdown();
    out
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case boots two deployments; keep the count low
        .. ProptestConfig::default()
    })]

    /// The lock-striped delivery plane (+ endpoint cache) is byte-identical
    /// to the legacy single-lock layout: identical results (hence identical
    /// per-pair delivery order), charged bytes and message counts.
    #[test]
    fn sharded_delivery_plane_matches_legacy(
        ops in proptest::collection::vec(arb_op(), 0..20)
    ) {
        let sharded = run(&ops, STRIPED_NET);
        let legacy = run(&ops, LEGACY_NET);
        prop_assert_eq!(&sharded, &legacy);
        prop_assert_eq!(sharded.msgs_dropped, 0);
        prop_assert_eq!(sharded.msgs_rejected, 0);
        prop_assert_eq!(sharded.msgs_sent, sharded.msgs_delivered);
    }

    /// The striped-injector executor is byte-identical to the legacy
    /// global-injector one on the same replayed program.
    #[test]
    fn striped_injector_matches_legacy(
        ops in proptest::collection::vec(arb_op(), 0..20)
    ) {
        let striped = run(&ops, STRIPED_EXEC);
        let legacy = run(&ops, LEGACY_EXEC);
        prop_assert_eq!(&striped, &legacy);
        prop_assert_eq!(striped.msgs_dropped, 0);
        prop_assert_eq!(striped.msgs_sent, striped.msgs_delivered);
    }
}
