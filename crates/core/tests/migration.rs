//! Tests of the migration protocol (paper §4.6, Figures 3–4) and the
//! automatic migration policy.

use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};
use jsym_core::{Deployment, JsError, JsObj, MigrateTarget, Placement, Value};
use jsym_core::{JsShell, MachineConfig};
use jsym_net::LinkClass;
use jsym_net::NodeId;
use jsym_sysmon::{JsConstraints, LoadModel, LoadProfile, MachineSpec, SysParam};

fn boot(n: usize) -> Deployment {
    let d = shell_with_idle_machines(n).boot();
    register_test_classes(&d);
    d
}

#[test]
fn explicit_migration_preserves_state() {
    let d = boot(3);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(
        &reg,
        "Counter",
        &[Value::I64(7)],
        Placement::OnPhys(NodeId(1)),
        None,
    )
    .unwrap();
    obj.sinvoke("add", &[Value::I64(3)]).unwrap();
    let dst = obj.migrate(MigrateTarget::ToPhys(NodeId(2)), None).unwrap();
    assert_eq!(dst, NodeId(2));
    assert_eq!(obj.get_location().unwrap(), NodeId(2));
    // State survived the move.
    assert_eq!(obj.sinvoke("get", &[]).unwrap(), Value::I64(10));
    assert_eq!(
        obj.sinvoke("node_name", &[]).unwrap(),
        Value::Str("m2".into())
    );
    // Object tables updated on both PubOAs.
    assert_eq!(d.node_stats(NodeId(1)).unwrap().migrations_out, 1);
    assert_eq!(d.node_stats(NodeId(2)).unwrap().migrations_in, 1);
    assert_eq!(d.node_stats(NodeId(1)).unwrap().objects_hosted, 0);
    assert_eq!(d.node_stats(NodeId(2)).unwrap().objects_hosted, 1);
    d.shutdown();
}

#[test]
fn migrate_to_same_node_is_noop() {
    let d = boot(2);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap();
    let dst = obj.migrate(MigrateTarget::ToPhys(NodeId(1)), None).unwrap();
    assert_eq!(dst, NodeId(1));
    assert_eq!(d.node_stats(NodeId(1)).unwrap().migrations_out, 0);
    d.shutdown();
}

#[test]
fn migrate_auto_moves_off_current_node() {
    let d = boot(3);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(0)), None).unwrap();
    let dst = obj.migrate(MigrateTarget::Auto, None).unwrap();
    assert_ne!(dst, NodeId(0));
    d.shutdown();
}

#[test]
fn migrate_to_cluster_picks_member() {
    let d = boot(4);
    let reg = d.register_app().unwrap();
    let cluster = d.vda().request_cluster(2, None).unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::Auto, None).unwrap();
    let dst = obj
        .migrate(MigrateTarget::ToCluster(&cluster), None)
        .unwrap();
    assert!(cluster.machines().contains(&dst));
    d.shutdown();
}

#[test]
fn migration_with_constraints_rejects_unsuitable_targets() {
    let d = boot(2);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(0)), None).unwrap();
    let mut impossible = JsConstraints::new();
    impossible.set(SysParam::AvailMem, ">=", 1e9);
    assert!(matches!(
        obj.migrate(MigrateTarget::Auto, Some(&impossible)),
        Err(JsError::PlacementFailed(_))
    ));
    // Still usable where it is.
    assert_eq!(obj.sinvoke("get", &[]).unwrap(), Value::I64(0));
    d.shutdown();
}

#[test]
fn migration_waits_for_running_method() {
    let d = boot(3);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap();
    // Kick off a long-running method (2 virtual s ≈ 20 µs real at 1e-5 — so
    // scale up: 200 virtual s ≈ 2 ms real), then migrate mid-flight.
    let h = obj.ainvoke("compute", &[Value::F64(1e10)]).unwrap();
    let dst = obj.migrate(MigrateTarget::ToPhys(NodeId(2)), None).unwrap();
    assert_eq!(dst, NodeId(2));
    // The in-flight method still completed (migration waited for it).
    assert!(h.get_result().is_ok());
    assert_eq!(obj.sinvoke("get", &[]).unwrap(), Value::I64(0));
    d.shutdown();
}

#[test]
fn invocations_racing_with_migration_are_rerouted() {
    let d = boot(3);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap();

    // Concurrent invoker hammering the object while it migrates back and
    // forth; every sinvoke must succeed (Figure 4's transparent re-routing).
    let obj2 = obj.clone();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop2 = stop.clone();
    let invoker = std::thread::spawn(move || {
        let mut count = 0i64;
        while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
            obj2.sinvoke("add", &[Value::I64(1)])
                .expect("invoke survives migration");
            count += 1;
        }
        count
    });
    for round in 0..6 {
        let dst = NodeId(1 + (round % 2) as u32); // 1 → 2 → 1 → ...
        let target = NodeId(if dst == NodeId(1) { 2 } else { 1 });
        obj.migrate(MigrateTarget::ToPhys(target), None).unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let count = invoker.join().unwrap();
    assert!(count > 0, "invoker made no progress");
    // No lost updates: the counter equals the number of successful adds.
    assert_eq!(obj.sinvoke("get", &[]).unwrap(), Value::I64(count));
    d.shutdown();
}

#[test]
fn migration_to_dead_node_fails_and_object_survives() {
    let d = boot(3);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(
        &reg,
        "Counter",
        &[Value::I64(5)],
        Placement::OnPhys(NodeId(1)),
        None,
    )
    .unwrap();
    d.kill_node(NodeId(2));
    assert!(obj.migrate(MigrateTarget::ToPhys(NodeId(2)), None).is_err());
    // Object is still usable at its original location.
    assert_eq!(obj.get_location().unwrap(), NodeId(1));
    assert_eq!(obj.sinvoke("get", &[]).unwrap(), Value::I64(5));
    d.shutdown();
}

#[test]
fn automigration_moves_objects_off_violating_nodes() {
    // Machine m0 is calm until t=200 virtual seconds, then spikes to 90% load;
    // m1 stays idle. An idle-constrained virtual node on m0 will violate its
    // constraints after the spike and its object must auto-migrate to m1
    // (m1 is in the same implicit... no cluster, so the candidate comes from
    // the shared cluster we build).
    let shell = JsShell::new()
        .time_scale(1e-4)
        .monitor_period(0.5)
        .failure_timeout(1e9) // irrelevant here
        .automigration(true, 0.5);
    let shell = shell
        .add_machine(MachineConfig {
            spec: MachineSpec::generic("m0", 50.0, 256.0),
            load: LoadModel::new(
                LoadProfile::Spike {
                    base: 0.0,
                    level: 0.9,
                    start: 200.0,
                    end: 1e12,
                },
                0,
            ),
            link: LinkClass::Lan100,
        })
        .add_machine(MachineConfig::idle("m1", 50.0));
    let d = shell.boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();

    // Build a 2-node cluster with an idleness constraint. Allocation happens
    // before the spike, so both machines qualify.
    let mut constr = JsConstraints::new();
    constr.set(SysParam::IdlePct, ">=", 50);
    let cluster = d.vda().request_cluster(2, Some(&constr)).unwrap();

    // Place the object on m0 (the future-spiking machine).
    let obj = JsObj::create(
        &reg,
        "Counter",
        &[Value::I64(3)],
        Placement::OnPhys(NodeId(0)),
        None,
    )
    .unwrap();
    assert_eq!(obj.get_location().unwrap(), NodeId(0));
    let _ = cluster;

    // Wait for the spike (t=200 virt = 20 ms real at 1e-4) plus a few
    // auto-migration rounds.
    let mut moved = false;
    for _ in 0..400 {
        std::thread::sleep(std::time::Duration::from_millis(5));
        if obj.get_location().unwrap() == NodeId(1) {
            moved = true;
            break;
        }
    }
    assert!(
        moved,
        "auto-migration never moved the object off the loaded node"
    );
    // State intact after the automatic move.
    assert_eq!(obj.sinvoke("get", &[]).unwrap(), Value::I64(3));
    d.shutdown();
}
