//! The replicated directory's differential guarantee (DESIGN.md §10): on a
//! fault-free run, every operation — creation, invocation, nested
//! invocation through first-order handles, migration, freeing — produces
//! byte-for-byte the same results whether locations resolve through the
//! legacy origin-authority path (`directory_replicas(0)`) or the replicated
//! directory (`directory_replicas(3)`).

use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};
use jsym_core::{JsObj, MigrateTarget, Placement, Value};
use jsym_net::NodeId;
use proptest::prelude::*;

/// One step of a randomized object program. Indices are taken modulo the
/// set of live objects at execution time.
#[derive(Clone, Debug)]
enum Op {
    Create {
        node: u8,
    },
    Add {
        obj: u8,
        delta: i64,
    },
    Get {
        obj: u8,
    },
    WhereRuns {
        obj: u8,
    },
    MoveTo {
        obj: u8,
        node: u8,
    },
    /// `a.add_to(handle(b), delta)` — a nested invocation resolved on a's
    /// host via `resolve_location`, the path the directory replaces.
    NestedAdd {
        a: u8,
        b: u8,
        delta: i64,
    },
    Free {
        obj: u8,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4).prop_map(|node| Op::Create { node }),
        (any::<u8>(), -50i64..50).prop_map(|(obj, delta)| Op::Add { obj, delta }),
        any::<u8>().prop_map(|obj| Op::Get { obj }),
        any::<u8>().prop_map(|obj| Op::WhereRuns { obj }),
        (any::<u8>(), 0u8..4).prop_map(|(obj, node)| Op::MoveTo { obj, node }),
        (any::<u8>(), any::<u8>(), -9i64..9).prop_map(|(a, b, delta)| Op::NestedAdd {
            a,
            b,
            delta
        }),
        any::<u8>().prop_map(|obj| Op::Free { obj }),
    ]
}

/// Runs `ops` on a fresh 4-machine deployment and returns the transcript of
/// every step's observable outcome.
fn run_program(ops: &[Op], replicas: u32) -> Vec<String> {
    let deployment = shell_with_idle_machines(4)
        .directory_replicas(replicas)
        .boot();
    register_test_classes(&deployment);
    let reg = deployment.register_app().unwrap();
    let mut live: Vec<JsObj> = Vec::new();
    let mut transcript = Vec::new();
    for op in ops {
        let outcome = match op {
            Op::Create { node } => {
                let obj = JsObj::create(
                    &reg,
                    "Counter",
                    &[],
                    Placement::OnPhys(NodeId(*node as u32)),
                    None,
                )
                .unwrap();
                live.push(obj);
                format!("created on {node}")
            }
            Op::Add { obj, delta } => match pick(&live, *obj) {
                Some(o) => fmt(o.sinvoke("add", &[Value::I64(*delta)])),
                None => "no object".into(),
            },
            Op::Get { obj } => match pick(&live, *obj) {
                Some(o) => fmt(o.sinvoke("get", &[])),
                None => "no object".into(),
            },
            Op::WhereRuns { obj } => match pick(&live, *obj) {
                Some(o) => fmt(o.sinvoke("node_name", &[])),
                None => "no object".into(),
            },
            Op::MoveTo { obj, node } => match pick(&live, *obj) {
                Some(o) => fmt(o
                    .migrate(MigrateTarget::ToPhys(NodeId(*node as u32)), None)
                    .map(|n| Value::I64(n.0 as i64))),
                None => "no object".into(),
            },
            Op::NestedAdd { a, b, delta } => match (pick(&live, *a), pick(&live, *b)) {
                (Some(oa), Some(ob)) => {
                    fmt(oa.sinvoke("add_to", &[Value::Handle(ob.handle()), Value::I64(*delta)]))
                }
                _ => "no object".into(),
            },
            Op::Free { obj } => {
                if live.is_empty() {
                    "no object".into()
                } else {
                    let idx = *obj as usize % live.len();
                    let o = live.remove(idx);
                    fmt(o.free().map(|_| Value::Null))
                }
            }
        };
        transcript.push(outcome);
    }
    reg.unregister().unwrap();
    deployment.shutdown();
    transcript
}

fn pick(live: &[JsObj], idx: u8) -> Option<&JsObj> {
    if live.is_empty() {
        None
    } else {
        live.get(idx as usize % live.len())
    }
}

fn fmt(r: jsym_core::Result<Value>) -> String {
    match r {
        Ok(v) => format!("{v:?}"),
        Err(e) => format!("err: {e}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        max_shrink_iters: 32,
        .. ProptestConfig::default()
    })]

    /// Replicated and legacy resolution agree byte-for-byte on fault-free
    /// runs: identical transcripts, including every `node_name` placement
    /// observation.
    #[test]
    fn replicated_directory_matches_legacy_resolution(
        ops in proptest::collection::vec(op_strategy(), 1..24)
    ) {
        let legacy = run_program(&ops, 0);
        let replicated = run_program(&ops, 3);
        prop_assert_eq!(legacy, replicated);
    }
}

#[test]
fn directory_smoke_resolves_and_reports_a_leader() {
    let deployment = shell_with_idle_machines(4).directory_replicas(3).boot();
    register_test_classes(&deployment);
    assert!(deployment.directory_enabled());
    let reg = deployment.register_app().unwrap();

    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(2)), None).unwrap();
    assert_eq!(obj.sinvoke("add", &[Value::I64(5)]).unwrap(), Value::I64(5));
    assert_eq!(
        obj.sinvoke("node_name", &[]).unwrap(),
        Value::Str("m2".into())
    );

    // Migrate and observe the new placement through the directory.
    let dst = obj.migrate(MigrateTarget::ToPhys(NodeId(1)), None).unwrap();
    assert_eq!(dst, NodeId(1));
    assert_eq!(
        obj.sinvoke("node_name", &[]).unwrap(),
        Value::Str("m1".into())
    );

    // A nested call forces a foreign resolve on the peer's host node.
    let other = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(3)), None).unwrap();
    assert_eq!(
        other
            .sinvoke("add_to", &[Value::Handle(obj.handle()), Value::I64(2)])
            .unwrap(),
        Value::I64(7)
    );

    // Exactly one leader; every replica applied the same committed log.
    let status = deployment.directory_status();
    assert_eq!(status.len(), 3);
    let leaders: Vec<_> = status.iter().filter(|s| s.role == "leader").collect();
    assert_eq!(leaders.len(), 1, "status: {status:?}");
    assert!(
        status.iter().all(|s| s.locations >= 2),
        "status: {status:?}"
    );

    obj.free().unwrap();
    other.free().unwrap();
    reg.unregister().unwrap();
    deployment.shutdown();
}
