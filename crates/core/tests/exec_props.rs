//! Differential property tests for the work-stealing executor runtime.
//!
//! `JsShell::executor(n)` replaces the thread-per-node model (receiver, NA
//! and worker-pool threads per node) with a fixed pool of `n` workers onto
//! which hook-routed deliveries, object drains, NA rounds and directory
//! ticks are scheduled as cooperatively-yielding tasks. It is a pure
//! scheduling change: nothing observable may differ. These tests run the
//! same random program under both runtimes and require identical results,
//! identical `NetStats` counters and an identical (timestamp-stripped,
//! id-normalized) structural event log — the same differential-oracle
//! treatment the loopback and batching fast paths got before it.

use jsym_core::testkit::register_test_classes;
use jsym_core::{
    CostModel, InvokeCtx, JsClass, JsError, JsObj, JsShell, MachineConfig, MigrateTarget,
    Placement, Result, RuntimeEvent, Value,
};
use jsym_net::NodeId;
use proptest::prelude::*;

/// One step of the random two-counter program (both counters start on the
/// remote node, so calls cross the modeled link; migration bounces them
/// between machines mid-program).
#[derive(Clone, Debug)]
enum Op {
    SyncAdd(u8, i64),
    AsyncAdd(u8, i64),
    OneSidedAdd(u8, i64),
    SyncRead(u8),
    Migrate(u8, u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0u8..2), -100i64..100).prop_map(|(o, k)| Op::SyncAdd(o, k)),
        ((0u8..2), -100i64..100).prop_map(|(o, k)| Op::AsyncAdd(o, k)),
        ((0u8..2), -100i64..100).prop_map(|(o, k)| Op::OneSidedAdd(o, k)),
        (0u8..2).prop_map(Op::SyncRead),
        ((0u8..2), (0u8..2)).prop_map(|(o, n)| Op::Migrate(o, n)),
    ]
}

/// A structural event with its object ids replaced by dense first-appearance
/// indices, so two runs (which draw from one process-global id generator)
/// compare equal when their histories match.
fn normalize_events(events: Vec<(f64, RuntimeEvent)>) -> Vec<String> {
    let mut ids: Vec<jsym_core::ObjectId> = Vec::new();
    let mut dense = |obj: jsym_core::ObjectId| -> usize {
        match ids.iter().position(|&o| o == obj) {
            Some(i) => i,
            None => {
                ids.push(obj);
                ids.len() - 1
            }
        }
    };
    events
        .into_iter()
        .map(|(_, ev)| match ev {
            RuntimeEvent::ObjectCreated { obj, class, node } => {
                format!("created o{} {class} on {node}", dense(obj))
            }
            RuntimeEvent::Migrated {
                obj,
                from,
                to,
                state_bytes,
            } => format!("migrated o{} {from}->{to} {state_bytes}B", dense(obj)),
            RuntimeEvent::ObjectFreed { obj, node } => {
                format!("freed o{} on {node}", dense(obj))
            }
            other => format!("{:?}", other.kind()),
        })
        .collect()
}

#[derive(Debug, PartialEq)]
struct Outcome {
    sync_results: Vec<Value>,
    async_results: Vec<Value>,
    finals: Vec<Value>,
    events: Vec<String>,
    msgs_sent: u64,
    bytes_sent: u64,
    msgs_delivered: u64,
    msgs_dropped: u64,
    msgs_rejected: u64,
}

fn run(ops: &[Op], executor_threads: usize) -> Outcome {
    // Two machines, NA quiesced so the counters contain application traffic
    // only (in executor mode the monitor round is a far-future timer task).
    let d = JsShell::new()
        .add_machine(MachineConfig::idle("m0", 50.0))
        .add_machine(MachineConfig::idle("m1", 50.0))
        .time_scale(1e-5)
        .monitor_period(1e9)
        .failure_timeout(1e9)
        .cost_model(CostModel::free())
        .executor(executor_threads)
        .boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let objs: Vec<JsObj> = (0..2)
        .map(|_| JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap())
        .collect();
    let mut sync_results = Vec::new();
    let mut handles = Vec::new();
    for op in ops {
        match *op {
            Op::SyncAdd(o, k) => {
                sync_results.push(objs[o as usize].sinvoke("add", &[Value::I64(k)]).unwrap());
            }
            Op::AsyncAdd(o, k) => {
                handles.push(objs[o as usize].ainvoke("add", &[Value::I64(k)]).unwrap());
            }
            Op::OneSidedAdd(o, k) => {
                objs[o as usize].oinvoke("add", &[Value::I64(k)]).unwrap();
            }
            Op::SyncRead(o) => {
                sync_results.push(objs[o as usize].sinvoke("get", &[]).unwrap());
            }
            Op::Migrate(o, n) => {
                // Quiesce this object's in-flight one-sided traffic first so
                // the migrate/invoke interleaving is the program's, not the
                // scheduler's.
                sync_results.push(objs[o as usize].sinvoke("get", &[]).unwrap());
                objs[o as usize]
                    .migrate(MigrateTarget::ToPhys(NodeId(n as u32)), None)
                    .unwrap();
            }
        }
    }
    let async_results: Vec<Value> = handles
        .into_iter()
        .map(|h| h.get_result().unwrap())
        .collect();
    // Final synchronous reads flush every one-sided call still in flight
    // (per-pair FIFO): afterwards the network is quiescent.
    let finals: Vec<Value> = objs
        .iter()
        .map(|o| o.sinvoke("get", &[]).unwrap())
        .collect();
    let s = d.net_stats();
    let out = Outcome {
        sync_results,
        async_results,
        finals,
        events: normalize_events(d.events().all()),
        msgs_sent: s.msgs_sent,
        bytes_sent: s.bytes_sent,
        msgs_delivered: s.msgs_delivered,
        msgs_dropped: s.msgs_dropped,
        msgs_rejected: s.msgs_rejected,
    };
    reg.unregister().unwrap();
    d.shutdown();
    out
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case boots two deployments; keep the count low
        .. ProptestConfig::default()
    })]

    /// A 2-worker executor is observationally equivalent to the threaded
    /// runtime: identical results, event history and network counters.
    #[test]
    fn executor_is_observationally_equivalent(
        ops in proptest::collection::vec(arb_op(), 0..20)
    ) {
        let exec = run(&ops, 2);
        let threaded = run(&ops, 0);
        prop_assert_eq!(&exec, &threaded);
        prop_assert_eq!(exec.msgs_dropped, 0);
        prop_assert_eq!(exec.msgs_rejected, 0);
        prop_assert_eq!(exec.msgs_sent, exec.msgs_delivered);
    }
}

/// A chain node: `deep([h1, h2, ..])` invokes `deep` on `h1` with the rest
/// of the chain and adds 1 — each hop holds a worker in a blocking reply
/// wait, so a chain deeper than the pool deadlocks unless blocked workers
/// are compensated with spares.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct ChainNode;

impl JsClass for ChainNode {
    fn class_name(&self) -> &str {
        "ChainNode"
    }

    fn invoke(&mut self, method: &str, args: &[Value], ctx: &mut InvokeCtx<'_>) -> Result<Value> {
        match method {
            "deep" => {
                let Some(Value::List(chain)) = args.first() else {
                    return Err(JsError::BadArguments("deep(list-of-handles)".into()));
                };
                let Some(next) = chain.first().and_then(Value::as_handle) else {
                    return Ok(Value::I64(0));
                };
                let rest = Value::List(chain[1..].to_vec());
                let below = ctx.invoke(next, "deep", &[rest])?;
                Ok(Value::I64(below.as_i64().unwrap_or(0) + 1))
            }
            _ => Err(JsError::NoSuchMethod {
                class: "ChainNode".into(),
                method: method.to_owned(),
            }),
        }
    }

    fn snapshot(&self) -> Result<Vec<u8>> {
        jsym_core::snapshot_state(self)
    }
}

/// Regression: a nested-invocation chain 32 deep across two nodes on a
/// 2-worker executor. Every hop blocks its worker awaiting the callee's
/// reply; without blocking-compensation the pool starves after 2 hops and
/// the chain never completes. Run under both injector layouts — the striped
/// scheduler must preserve the ledger invariant exactly.
fn deep_chain_on_two_workers(legacy_injector: bool) {
    let d = JsShell::new()
        .add_machine(MachineConfig::idle("m0", 50.0))
        .add_machine(MachineConfig::idle("m1", 50.0))
        .time_scale(1e-5)
        .monitor_period(1e9)
        .failure_timeout(1e9)
        .cost_model(CostModel::free())
        .executor(2)
        .executor_legacy_injector(legacy_injector)
        .boot();
    d.classes()
        .register_class::<ChainNode, _>("ChainNode", None, |_| Ok(ChainNode));
    let reg = d.register_app().unwrap();
    const DEPTH: usize = 32;
    let objs: Vec<JsObj> = (0..DEPTH)
        .map(|i| {
            JsObj::create(
                &reg,
                "ChainNode",
                &[],
                Placement::OnPhys(NodeId((i % 2) as u32)),
                None,
            )
            .unwrap()
        })
        .collect();
    let chain = Value::List(
        objs[1..]
            .iter()
            .map(|o| Value::Handle(o.handle()))
            .collect(),
    );
    // Run under a watchdog: a deadlock here would otherwise hang the suite
    // until the 120 s call timeout.
    let (tx, rx) = crossbeam::channel::bounded(1);
    let head = objs[0].clone();
    std::thread::spawn(move || {
        let _ = tx.send(head.sinvoke("deep", &[chain]));
    });
    let out = rx
        .recv_timeout(std::time::Duration::from_secs(60))
        .expect("deep chain deadlocked on the 2-worker executor");
    assert_eq!(out.unwrap(), Value::I64((DEPTH - 1) as i64));
    // The blocked-worker ledger (`live - blocked >= base`) had to spawn
    // spares for the chain to finish; the invariant itself is debug-asserted
    // at every compensation and retirement inside the executor.
    let stats = d.exec_stats().expect("executor mode");
    assert!(stats.spare_spawns >= 1, "chain must have compensated");
    reg.unregister().unwrap();
    d.shutdown();
}

#[test]
fn deep_nested_chain_completes_on_two_worker_executor() {
    deep_chain_on_two_workers(false);
}

#[test]
fn deep_nested_chain_completes_on_legacy_injector() {
    deep_chain_on_two_workers(true);
}
