//! Differential oracles for the affinity plane and lease reads (DESIGN.md
//! §14): every new fast path ships behind a toggle whose *off* state is
//! byte-identical to the pre-existing behaviour, and the toggled-on lease
//! path must not change any fault-free observable either — it only removes
//! a round trip.

use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};
use jsym_core::{AffinityConfig, JsObj, MigrateTarget, Placement, Value};
use jsym_net::NodeId;
use proptest::prelude::*;

/// One step of a randomized object program (same shape as dir_props.rs).
#[derive(Clone, Debug)]
enum Op {
    Create { node: u8 },
    Add { obj: u8, delta: i64 },
    Get { obj: u8 },
    WhereRuns { obj: u8 },
    MoveTo { obj: u8, node: u8 },
    NestedAdd { a: u8, b: u8, delta: i64 },
    Free { obj: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4).prop_map(|node| Op::Create { node }),
        (any::<u8>(), -50i64..50).prop_map(|(obj, delta)| Op::Add { obj, delta }),
        any::<u8>().prop_map(|obj| Op::Get { obj }),
        any::<u8>().prop_map(|obj| Op::WhereRuns { obj }),
        (any::<u8>(), 0u8..4).prop_map(|(obj, node)| Op::MoveTo { obj, node }),
        (any::<u8>(), any::<u8>(), -9i64..9).prop_map(|(a, b, delta)| Op::NestedAdd {
            a,
            b,
            delta
        }),
        any::<u8>().prop_map(|obj| Op::Free { obj }),
    ]
}

/// Runs `ops` on a fresh 4-machine deployment with the given directory
/// replica count and affinity configuration, returning the transcript of
/// every step's observable outcome.
fn run_program(ops: &[Op], replicas: u32, affinity: Option<AffinityConfig>) -> Vec<String> {
    let mut shell = shell_with_idle_machines(4).directory_replicas(replicas);
    if let Some(config) = affinity {
        shell = shell.affinity(config);
    }
    let deployment = shell.boot();
    register_test_classes(&deployment);
    let reg = deployment.register_app().unwrap();
    let mut live: Vec<JsObj> = Vec::new();
    let mut transcript = Vec::new();
    for op in ops {
        let outcome = match op {
            Op::Create { node } => {
                let obj = JsObj::create(
                    &reg,
                    "Counter",
                    &[],
                    Placement::OnPhys(NodeId(*node as u32)),
                    None,
                )
                .unwrap();
                live.push(obj);
                format!("created on {node}")
            }
            Op::Add { obj, delta } => match pick(&live, *obj) {
                Some(o) => fmt(o.sinvoke("add", &[Value::I64(*delta)])),
                None => "no object".into(),
            },
            Op::Get { obj } => match pick(&live, *obj) {
                Some(o) => fmt(o.sinvoke("get", &[])),
                None => "no object".into(),
            },
            Op::WhereRuns { obj } => match pick(&live, *obj) {
                Some(o) => fmt(o.sinvoke("node_name", &[])),
                None => "no object".into(),
            },
            Op::MoveTo { obj, node } => match pick(&live, *obj) {
                Some(o) => fmt(o
                    .migrate(MigrateTarget::ToPhys(NodeId(*node as u32)), None)
                    .map(|n| Value::I64(n.0 as i64))),
                None => "no object".into(),
            },
            Op::NestedAdd { a, b, delta } => match (pick(&live, *a), pick(&live, *b)) {
                // A self-nested invoke would deadlock on the object's own
                // mailbox; skip it deterministically on both sides.
                (Some(oa), Some(ob)) if oa.handle() == ob.handle() => "self".into(),
                (Some(oa), Some(ob)) => {
                    fmt(oa.sinvoke("add_to", &[Value::Handle(ob.handle()), Value::I64(*delta)]))
                }
                _ => "no object".into(),
            },
            Op::Free { obj } => {
                if live.is_empty() {
                    "no object".into()
                } else {
                    let idx = *obj as usize % live.len();
                    let o = live.remove(idx);
                    fmt(o.free().map(|_| Value::Null))
                }
            }
        };
        transcript.push(outcome);
    }
    reg.unregister().unwrap();
    deployment.shutdown();
    transcript
}

fn pick(live: &[JsObj], idx: u8) -> Option<&JsObj> {
    if live.is_empty() {
        None
    } else {
        live.get(idx as usize % live.len())
    }
}

fn fmt(r: jsym_core::Result<Value>) -> String {
    match r {
        Ok(v) => format!("{v:?}"),
        Err(e) => format!("err: {e}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        max_shrink_iters: 32,
        .. ProptestConfig::default()
    })]

    /// With every affinity toggle off (the default config, passed
    /// explicitly) the deployment behaves byte-for-byte like one that never
    /// heard of affinity: identical transcripts, including placement
    /// observations.
    #[test]
    fn affinity_off_is_byte_identical_to_plain(
        ops in proptest::collection::vec(op_strategy(), 1..24)
    ) {
        let plain = run_program(&ops, 0, None);
        let toggled_off = run_program(&ops, 0, Some(AffinityConfig::default()));
        prop_assert_eq!(plain, toggled_off);
    }

    /// Lease-served directory reads change latency, never results: on
    /// fault-free runs with a replicated directory the transcript with
    /// leases on matches the probe-only transcript byte for byte.
    #[test]
    fn lease_reads_are_byte_identical_on_fault_free_runs(
        ops in proptest::collection::vec(op_strategy(), 1..24)
    ) {
        let probe_only = run_program(&ops, 3, None);
        let leased = run_program(
            &ops,
            3,
            Some(AffinityConfig {
                leases: true,
                ..AffinityConfig::default()
            }),
        );
        prop_assert_eq!(probe_only, leased);
    }
}

/// Lease reads actually happen: with leases on, a steady-state deployment
/// resolves foreign handles through the leader's lease fast path, and the
/// counters prove it.
#[test]
fn lease_counters_record_local_reads() {
    let deployment = shell_with_idle_machines(4)
        .directory_replicas(3)
        .affinity(AffinityConfig {
            leases: true,
            ..AffinityConfig::default()
        })
        .boot();
    register_test_classes(&deployment);
    let reg = deployment.register_app().unwrap();

    let a = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(0)), None).unwrap();
    let b = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(2)), None).unwrap();
    // Nested adds force foreign resolves through the directory on a's host.
    for _ in 0..20 {
        a.sinvoke("add_to", &[Value::Handle(b.handle()), Value::I64(1)])
            .unwrap();
    }
    assert_eq!(b.sinvoke("get", &[]).unwrap(), Value::I64(20));

    let snap = deployment.obs().snapshot();
    let reads = snap.metrics.counter_total("dir.reads");
    let local = snap.metrics.counter_total("dir.lease.local_reads");
    assert!(reads > 0, "directory reads should be counted");
    assert!(
        local * 10 >= reads * 9,
        "steady-state reads should be lease-served: {local}/{reads}"
    );

    a.free().unwrap();
    b.free().unwrap();
    reg.unregister().unwrap();
    deployment.shutdown();
}
