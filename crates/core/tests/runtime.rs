//! End-to-end tests of the object model: creation, placement, the three
//! invocation modes, first-order handles, freeing and unregistration.

use jsym_core::testkit::{register_test_classes, shell_with_idle_machines, three_node_shell};
use jsym_core::{Deployment, JsError, JsObj, Placement, Value};
use jsym_net::NodeId;
use jsym_sysmon::{JsConstraints, SysParam};

fn boot(n: usize) -> Deployment {
    let d = shell_with_idle_machines(n).boot();
    register_test_classes(&d);
    d
}

#[test]
fn create_invoke_free_lifecycle() {
    let d = boot(3);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[Value::I64(100)], Placement::Auto, None).unwrap();
    assert_eq!(obj.sinvoke("get", &[]).unwrap(), Value::I64(100));
    assert_eq!(
        obj.sinvoke("add", &[Value::I64(-58)]).unwrap(),
        Value::I64(42)
    );
    obj.free().unwrap();
    // Further use fails at the AppOA (object no longer in the table).
    assert!(matches!(
        obj.sinvoke("get", &[]),
        Err(JsError::NoSuchObject(_))
    ));
    reg.unregister().unwrap();
    d.shutdown();
}

#[test]
fn placement_local_and_on_phys() {
    let d = boot(3);
    let reg = d.register_app().unwrap();
    let local = JsObj::create(&reg, "Counter", &[], Placement::Local, None).unwrap();
    assert_eq!(local.get_location().unwrap(), reg.local_phys());
    assert_eq!(
        local.sinvoke("node_name", &[]).unwrap(),
        Value::Str("m0".into())
    );
    let remote = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(2)), None).unwrap();
    assert_eq!(remote.get_location().unwrap(), NodeId(2));
    assert_eq!(remote.get_node_name().unwrap(), "m2");
    d.shutdown();
}

#[test]
fn placement_in_cluster_places_on_member() {
    let d = boot(4);
    let reg = d.register_app().unwrap();
    let cluster = d.vda().request_cluster(2, None).unwrap();
    let members = cluster.machines();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::InCluster(&cluster), None).unwrap();
    assert!(members.contains(&obj.get_location().unwrap()));
    d.shutdown();
}

#[test]
fn placement_with_object_colocates() {
    let d = boot(3);
    let reg = d.register_app().unwrap();
    let a = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap();
    let b = JsObj::create(&reg, "Counter", &[], Placement::WithObject(&a), None).unwrap();
    assert_eq!(a.get_location().unwrap(), b.get_location().unwrap());
    d.shutdown();
}

#[test]
fn placement_respects_constraints() {
    let d = boot(3);
    let reg = d.register_app().unwrap();
    let mut impossible = JsConstraints::new();
    impossible.set(SysParam::AvailMem, ">=", 1e9);
    assert!(matches!(
        JsObj::create(&reg, "Counter", &[], Placement::Auto, Some(&impossible)),
        Err(JsError::PlacementFailed(_))
    ));
    let mut fine = JsConstraints::new();
    fine.set(SysParam::IdlePct, ">=", 50);
    assert!(JsObj::create(&reg, "Counter", &[], Placement::Auto, Some(&fine)).is_ok());
    d.shutdown();
}

#[test]
fn sinvoke_returns_method_errors() {
    let d = boot(2);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::Auto, None).unwrap();
    assert!(matches!(
        obj.sinvoke("fail", &[]),
        Err(JsError::MethodFailed(_))
    ));
    assert!(matches!(
        obj.sinvoke("no_such", &[]),
        Err(JsError::NoSuchMethod { .. })
    ));
    assert!(matches!(
        obj.sinvoke("add", &[Value::Str("x".into())]),
        Err(JsError::BadArguments(_))
    ));
    d.shutdown();
}

#[test]
fn ainvoke_overlaps_computation() {
    let d = boot(2);
    let reg = d.register_app().unwrap();
    // Place on the remote node so compute happens there.
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap();
    // 50 Mflop at 50 Mflop/s = 1 virtual s = 10 µs real at 1e-5.
    let h = obj.ainvoke("compute", &[Value::F64(50e6)]).unwrap();
    // Not ready immediately (the remote is sleeping its modeled second).
    assert!(!h.is_ready());
    let v = h.get_result().unwrap();
    assert!(matches!(v, Value::F64(_)));
    assert!(h.is_ready());
    d.shutdown();
}

#[test]
fn oinvoke_applies_without_result() {
    let d = boot(2);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap();
    obj.oinvoke("add", &[Value::I64(5)]).unwrap();
    obj.oinvoke("add", &[Value::I64(7)]).unwrap();
    // A later sinvoke observes both one-sided effects (per-object FIFO is
    // guaranteed by the instance lock + network FIFO on equal-size frames).
    let mut tries = 0;
    loop {
        let v = obj.sinvoke("get", &[]).unwrap();
        if v == Value::I64(12) {
            break;
        }
        tries += 1;
        assert!(tries < 100, "one-sided invocations never applied: {v:?}");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    d.shutdown();
}

#[test]
fn first_order_handles_enable_nested_invocation() {
    let d = boot(3);
    let reg = d.register_app().unwrap();
    let a = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap();
    let b = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(2)), None).unwrap();
    // Ask `a` (on m1) to add 9 to `b` (on m2) via b's handle.
    let v = a
        .sinvoke("add_to", &[Value::Handle(b.handle()), Value::I64(9)])
        .unwrap();
    assert_eq!(v, Value::I64(9));
    assert_eq!(b.sinvoke("get", &[]).unwrap(), Value::I64(9));
    d.shutdown();
}

#[test]
fn unregister_frees_everything_and_blocks_further_use() {
    let d = boot(2);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap();
    reg.unregister().unwrap();
    assert!(matches!(
        obj.sinvoke("get", &[]),
        Err(JsError::NoSuchObject(_) | JsError::AppUnregistered)
    ));
    assert!(matches!(
        JsObj::create(&reg, "Counter", &[], Placement::Auto, None),
        Err(JsError::AppUnregistered)
    ));
    assert!(matches!(reg.unregister(), Err(JsError::AppUnregistered)));
    // The hosted object is eventually freed on m1.
    let mut tries = 0;
    while d.node_stats(NodeId(1)).unwrap().objects_hosted > 0 {
        tries += 1;
        assert!(tries < 200, "object never freed after unregister");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    d.shutdown();
}

#[test]
fn two_apps_are_isolated() {
    let d = boot(3);
    let reg1 = d.register_app().unwrap();
    let reg2 = d.register_app_on(NodeId(1)).unwrap();
    assert_ne!(reg1.app_id(), reg2.app_id());
    let a = JsObj::create(&reg1, "Counter", &[Value::I64(1)], Placement::Auto, None).unwrap();
    let b = JsObj::create(&reg2, "Counter", &[Value::I64(2)], Placement::Auto, None).unwrap();
    assert_eq!(a.sinvoke("get", &[]).unwrap(), Value::I64(1));
    assert_eq!(b.sinvoke("get", &[]).unwrap(), Value::I64(2));
    reg1.unregister().unwrap();
    // App 2 unaffected.
    assert_eq!(b.sinvoke("get", &[]).unwrap(), Value::I64(2));
    d.shutdown();
}

#[test]
fn stats_count_activity() {
    let d = boot(2);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap();
    for _ in 0..5 {
        obj.sinvoke("get", &[]).unwrap();
    }
    let stats = d.node_stats(NodeId(1)).unwrap();
    assert_eq!(stats.creations, 1);
    assert!(stats.invocations >= 5);
    assert_eq!(stats.objects_hosted, 1);
    let net = d.net_stats();
    assert!(net.msgs_sent >= 12, "expected RMI traffic, got {net:?}");
    d.shutdown();
}

#[test]
fn three_node_shell_fixture_works() {
    let d = three_node_shell().boot();
    register_test_classes(&d);
    assert_eq!(d.machines().len(), 3);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::Auto, None).unwrap();
    assert_eq!(
        obj.sinvoke("echo", &[Value::Bool(true)]).unwrap(),
        Value::Bool(true)
    );
    d.shutdown();
}

#[test]
fn dead_node_reports_unreachable() {
    let d = boot(3);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(2)), None).unwrap();
    d.kill_node(NodeId(2));
    assert!(matches!(
        obj.sinvoke("get", &[]),
        Err(JsError::NodeUnreachable(_) | JsError::Timeout | JsError::ShuttingDown)
    ));
    // Creations on the dead node fail too.
    assert!(JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(2)), None).is_err());
    d.shutdown();
}

#[test]
fn bulk_payloads_round_trip() {
    let d = boot(2);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap();
    let data = Value::floats((0..10_000).map(|i| i as f32).collect());
    let back = obj.sinvoke("echo", std::slice::from_ref(&data)).unwrap();
    assert_eq!(back, data);
    d.shutdown();
}

#[test]
fn remove_machine_is_graceful_and_guarded() {
    let d = boot(3);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(2)), None).unwrap();
    // Hosting an object blocks removal.
    assert!(matches!(
        d.remove_machine(NodeId(2)),
        Err(JsError::PlacementFailed(_))
    ));
    // Being part of an architecture blocks removal.
    let cluster = d.vda().request_cluster(3, None).unwrap();
    obj.free().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20)); // one-sided free lands
    assert!(matches!(
        d.remove_machine(NodeId(2)),
        Err(JsError::PlacementFailed(_))
    ));
    cluster.free().unwrap();
    // Drained: removal succeeds and the machine disappears.
    d.remove_machine(NodeId(2)).unwrap();
    assert_eq!(d.machines(), vec![NodeId(0), NodeId(1)]);
    assert!(d.pool().machine(NodeId(2)).is_err());
    // Placement no longer considers it; the rest keeps working.
    for _ in 0..3 {
        let o = JsObj::create(&reg, "Counter", &[], Placement::Auto, None).unwrap();
        assert_ne!(o.get_location().unwrap(), NodeId(2));
    }
    // Removing twice errors cleanly.
    assert!(d.remove_machine(NodeId(2)).is_err());
    d.shutdown();
}

#[test]
fn placed_in_supports_component_level_colocation() {
    use jsym_core::PlacedIn;
    let d = boot(6);
    let reg = d.register_app().unwrap();
    let site = d.vda().request_site(&[2, 2], None).unwrap();
    let cluster0 = site.get_cluster(0).unwrap();

    // obj1 placed inside cluster0; obj2 placed "in the same cluster as obj1"
    // — the paper's `new JSObj("C", obj1.getCluster())`.
    let obj1 = JsObj::create(&reg, "Counter", &[], Placement::InCluster(&cluster0), None).unwrap();
    let PlacedIn::Cluster(c) = obj1.placed_in() else {
        panic!("expected cluster placement, got {:?}", obj1.placed_in());
    };
    let obj2 = JsObj::create(&reg, "Counter", &[], Placement::InCluster(&c), None).unwrap();
    assert!(cluster0.machines().contains(&obj2.get_location().unwrap()));

    // Node-granularity placements report the machine.
    let obj3 = JsObj::create(&reg, "Counter", &[], Placement::WithObject(&obj1), None).unwrap();
    match obj3.placed_in() {
        PlacedIn::Cluster(c2) => assert_eq!(c2.key(), cluster0.key()),
        other => panic!("WithObject should inherit the scope, got {other:?}"),
    }
    let obj4 = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(5)), None).unwrap();
    match obj4.placed_in() {
        PlacedIn::Node(n) => assert_eq!(n, NodeId(5)),
        other => panic!("{other:?}"),
    }
    d.shutdown();
}

#[test]
fn handles_cross_application_boundaries() {
    // App A creates a counter; its first-order handle is given to app B's
    // object, which invokes through it (resolution goes via A's AppOA —
    // handles carry their origin, paper §5.2).
    let d = boot(3);
    let reg_a = d.register_app().unwrap();
    let reg_b = d.register_app_on(NodeId(1)).unwrap();
    let target = JsObj::create(&reg_a, "Counter", &[], Placement::OnPhys(NodeId(2)), None).unwrap();
    let caller = JsObj::create(&reg_b, "Counter", &[], Placement::OnPhys(NodeId(0)), None).unwrap();
    let v = caller
        .sinvoke("add_to", &[Value::Handle(target.handle()), Value::I64(13)])
        .unwrap();
    assert_eq!(v, Value::I64(13));
    assert_eq!(target.sinvoke("get", &[]).unwrap(), Value::I64(13));
    // Still correct after the target migrates.
    target
        .migrate(jsym_core::MigrateTarget::ToPhys(NodeId(1)), None)
        .unwrap();
    caller
        .sinvoke("add_to", &[Value::Handle(target.handle()), Value::I64(7)])
        .unwrap();
    assert_eq!(target.sinvoke("get", &[]).unwrap(), Value::I64(20));
    d.shutdown();
}

#[test]
fn free_with_invocations_in_flight_fails_them_cleanly() {
    // Queue a long method, free the object concurrently, then keep
    // invoking. Depending on the interleaving at the host, the in-flight
    // method either completes (it started before the free landed) or is
    // rejected — but it must never hang, and later invocations surface
    // NoSuchObject at the AppOA.
    let d = boot(2);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap();
    let h = obj.ainvoke("compute", &[Value::F64(5e8)]).unwrap(); // ~10 virt s
    obj.free().unwrap();
    match h.get_result() {
        Ok(_) => {}                         // started before the free
        Err(JsError::NoSuchObject(_)) => {} // dropped by the free
        Err(JsError::Timeout) => {}         // re-issue loop exhausted
        Err(other) => panic!("unexpected error: {other:?}"),
    }
    // New invocations are rejected locally: the table entry is gone.
    assert!(matches!(
        obj.sinvoke("get", &[]),
        Err(JsError::NoSuchObject(_))
    ));
    // And the host eventually drops the instance.
    let mut tries = 0;
    while d.node_stats(NodeId(1)).unwrap().objects_hosted > 0 {
        tries += 1;
        assert!(tries < 300, "instance never dropped after free");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    d.shutdown();
}
