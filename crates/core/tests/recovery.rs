//! Tests of checkpoint-based failure recovery (paper §7 future work):
//! objects on a failed node resurrect from their latest checkpoint on a
//! surviving machine, under their original handles.

use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};
use jsym_core::{Deployment, JsObj, Placement, Value};
use jsym_net::NodeId;
use std::time::Duration;

fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    for _ in 0..1000 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for: {what}");
}

/// A deployment with NAS failure detection and checkpointing enabled.
fn recovering_deployment(n: usize) -> Deployment {
    let d = shell_with_idle_machines(n)
        .time_scale(1e-4)
        .monitor_period(2.0)
        .failure_timeout(50.0)
        .checkpointing(10.0)
        .boot();
    register_test_classes(&d);
    d
}

#[test]
fn object_resurrects_from_checkpoint_after_node_failure() {
    let d = recovering_deployment(3);
    // An architecture is needed so the NAS monitors (and detects failures).
    let _cluster = d.vda().request_cluster(3, None).unwrap();
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(
        &reg,
        "Counter",
        &[Value::I64(0)],
        Placement::OnPhys(NodeId(2)),
        None,
    )
    .unwrap();
    obj.sinvoke("add", &[Value::I64(41)]).unwrap();

    // Wait until at least one checkpoint captured the value.
    wait_until(
        || d.store().keys().iter().any(|k| k.starts_with("__ckpt_")),
        "first checkpoint",
    );
    // Give the checkpointer one more round so the captured state is 41.
    std::thread::sleep(Duration::from_millis(30));

    d.kill_node(NodeId(2));
    // NAS detects, registry emits NodeFailed, recovery resurrects.
    wait_until(|| d.vda().is_failed(NodeId(2)), "failure detection");
    wait_until(
        || obj.get_location().map(|l| l != NodeId(2)).unwrap_or(false),
        "object recovery",
    );

    let new_home = obj.get_location().unwrap();
    assert_ne!(new_home, NodeId(2));
    // The same handle works and the checkpointed state survived.
    assert_eq!(obj.sinvoke("get", &[]).unwrap(), Value::I64(41));
    // Updates continue normally after recovery.
    assert_eq!(
        obj.sinvoke("add", &[Value::I64(1)]).unwrap(),
        Value::I64(42)
    );
    d.shutdown();
}

#[test]
fn uncheckpointed_objects_stay_lost() {
    // Without checkpointing enabled, failure behaviour is the paper's
    // §5.1 status quo: the object is simply gone.
    let d = shell_with_idle_machines(3)
        .time_scale(1e-4)
        .monitor_period(2.0)
        .failure_timeout(50.0)
        .boot();
    register_test_classes(&d);
    let _cluster = d.vda().request_cluster(3, None).unwrap();
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(2)), None).unwrap();
    d.kill_node(NodeId(2));
    wait_until(|| d.vda().is_failed(NodeId(2)), "failure detection");
    std::thread::sleep(Duration::from_millis(50));
    // Still on the dead node, still failing.
    assert_eq!(obj.get_location().unwrap(), NodeId(2));
    assert!(obj.sinvoke("get", &[]).is_err());
    d.shutdown();
}

#[test]
fn recovery_respects_selective_classloading() {
    // Blob's artifact lives only on nodes 1 and 2; when node 2 dies, the
    // recovered Blob must land on node 1 (node 0 cannot host it).
    let d = recovering_deployment(3);
    let _cluster = d.vda().request_cluster(3, None).unwrap();
    let reg = d.register_app().unwrap();
    let cb = reg.codebase();
    cb.add("blob.jar", 1000);
    cb.load_phys(NodeId(1)).unwrap();
    cb.load_phys(NodeId(2)).unwrap();
    let obj = JsObj::create(
        &reg,
        "Blob",
        &[Value::I64(256)],
        Placement::OnPhys(NodeId(2)),
        None,
    )
    .unwrap();
    wait_until(
        || d.store().keys().iter().any(|k| k.starts_with("__ckpt_")),
        "first checkpoint",
    );
    d.kill_node(NodeId(2));
    wait_until(|| d.vda().is_failed(NodeId(2)), "failure detection");
    wait_until(
        || obj.get_location().map(|l| l == NodeId(1)).unwrap_or(false),
        "recovery onto the only class-capable survivor",
    );
    assert_eq!(obj.sinvoke("size", &[]).unwrap(), Value::I64(256));
    d.shutdown();
}

#[test]
fn multiple_objects_recover_together() {
    let d = recovering_deployment(4);
    let _cluster = d.vda().request_cluster(4, None).unwrap();
    let reg = d.register_app().unwrap();
    let objs: Vec<JsObj> = (0..5)
        .map(|k| {
            JsObj::create(
                &reg,
                "Counter",
                &[Value::I64(k)],
                Placement::OnPhys(NodeId(3)),
                None,
            )
            .unwrap()
        })
        .collect();
    wait_until(
        || {
            d.store()
                .keys()
                .iter()
                .filter(|k| k.starts_with("__ckpt_"))
                .count()
                >= 5
        },
        "all five checkpointed",
    );
    d.kill_node(NodeId(3));
    wait_until(|| d.vda().is_failed(NodeId(3)), "failure detection");
    wait_until(
        || {
            objs.iter()
                .all(|o| o.get_location().map(|l| l != NodeId(3)).unwrap_or(false))
        },
        "all objects recovered",
    );
    for (k, o) in objs.iter().enumerate() {
        assert_eq!(o.sinvoke("get", &[]).unwrap(), Value::I64(k as i64));
    }
    d.shutdown();
}
