//! Differential property tests for the RMI coalescing stage.
//!
//! Batching is a pure transport optimisation: same-pair messages due inside
//! one flush window travel as a single wire transfer, but every member is
//! still delivered individually, in order, with the same charged bytes.
//! Nothing observable may change. These tests run the same random program
//! twice — coalescing armed and disabled — and require identical invocation
//! results (which encode the per-object execution order, since one-sided,
//! asynchronous and synchronous calls to the same object interleave),
//! identical charged wire bytes, and identical message counts.

use jsym_core::testkit::register_test_classes;
use jsym_core::{CostModel, JsObj, JsShell, MachineConfig, Placement, Value};
use jsym_net::NodeId;
use proptest::prelude::*;

/// One step of the random two-counter program. The counters live on the
/// *remote* node, so every call crosses the modeled link and is eligible
/// for coalescing. Synchronous and asynchronous adds return the running
/// value (order-sensitive); one-sided calls apply in issue order under the
/// per-pair FIFO guarantee.
#[derive(Clone, Debug)]
enum Op {
    SyncAdd(u8, i64),
    AsyncAdd(u8, i64),
    OneSidedAdd(u8, i64),
    OneSidedSet(u8, i64),
    SyncRead(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0u8..2), -100i64..100).prop_map(|(o, k)| Op::SyncAdd(o, k)),
        ((0u8..2), -100i64..100).prop_map(|(o, k)| Op::AsyncAdd(o, k)),
        ((0u8..2), -100i64..100).prop_map(|(o, k)| Op::OneSidedAdd(o, k)),
        ((0u8..2), -100i64..100).prop_map(|(o, k)| Op::OneSidedSet(o, k)),
        (0u8..2).prop_map(Op::SyncRead),
    ]
}

/// Everything observable about one run: every synchronous result in program
/// order, every asynchronous result in issue order, the final counter
/// values, and the network counters at quiescence.
#[derive(Debug, PartialEq)]
struct Outcome {
    sync_results: Vec<Value>,
    async_results: Vec<Value>,
    finals: Vec<Value>,
    msgs_sent: u64,
    bytes_sent: u64,
    msgs_delivered: u64,
    msgs_dropped: u64,
    msgs_rejected: u64,
}

fn run(ops: &[Op], batched: bool) -> Outcome {
    // Two machines, NA silenced so the counters contain application traffic
    // only. The flush window is generous (1 virtual second ≈ 10 µs real at
    // this time scale) so back-to-back sends genuinely share windows.
    let mut shell = JsShell::new()
        .add_machine(MachineConfig::idle("m0", 50.0))
        .add_machine(MachineConfig::idle("m1", 50.0))
        .time_scale(1e-5)
        .monitor_period(1e9)
        .failure_timeout(1e9)
        .cost_model(CostModel::free());
    if batched {
        shell = shell.rmi_batching(1.0, 64 * 1024);
    }
    let d = shell.boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let objs: Vec<JsObj> = (0..2)
        .map(|_| JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap())
        .collect();
    let mut sync_results = Vec::new();
    let mut handles = Vec::new();
    for op in ops {
        match *op {
            Op::SyncAdd(o, k) => {
                sync_results.push(objs[o as usize].sinvoke("add", &[Value::I64(k)]).unwrap());
            }
            Op::AsyncAdd(o, k) => {
                handles.push(objs[o as usize].ainvoke("add", &[Value::I64(k)]).unwrap());
            }
            Op::OneSidedAdd(o, k) => {
                objs[o as usize].oinvoke("add", &[Value::I64(k)]).unwrap();
            }
            Op::OneSidedSet(o, k) => {
                objs[o as usize].oinvoke("set", &[Value::I64(k)]).unwrap();
            }
            Op::SyncRead(o) => {
                sync_results.push(objs[o as usize].sinvoke("get", &[]).unwrap());
            }
        }
    }
    let async_results: Vec<Value> = handles
        .into_iter()
        .map(|h| h.get_result().unwrap())
        .collect();
    // A final synchronous read per object flushes every one-sided call
    // still in flight (per-pair FIFO ordering, batched or not): afterwards
    // the network is quiescent and the counters are exact.
    let finals: Vec<Value> = objs
        .iter()
        .map(|o| o.sinvoke("get", &[]).unwrap())
        .collect();
    let s = d.net_stats();
    let out = Outcome {
        sync_results,
        async_results,
        finals,
        msgs_sent: s.msgs_sent,
        bytes_sent: s.bytes_sent,
        msgs_delivered: s.msgs_delivered,
        msgs_dropped: s.msgs_dropped,
        msgs_rejected: s.msgs_rejected,
    };
    reg.unregister().unwrap();
    d.shutdown();
    out
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case boots two deployments; keep the count low
        .. ProptestConfig::default()
    })]

    /// The coalescing stage is observationally equivalent to the unbatched
    /// plane: identical results (hence identical per-object execution
    /// order), identical charged wire bytes and message counts, nothing
    /// lost or reordered.
    #[test]
    fn batching_is_observationally_equivalent(
        ops in proptest::collection::vec(arb_op(), 0..24)
    ) {
        let batched = run(&ops, true);
        let plain = run(&ops, false);
        prop_assert_eq!(&batched, &plain);
        prop_assert_eq!(batched.msgs_dropped, 0);
        prop_assert_eq!(batched.msgs_rejected, 0);
        // Quiescence reached: everything sent was delivered, including
        // every member of every coalesced batch.
        prop_assert_eq!(batched.msgs_sent, batched.msgs_delivered);
    }
}
