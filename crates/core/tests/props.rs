//! Property-based tests for the runtime's data model and live invariants.

use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};
use jsym_core::{JsObj, MigrateTarget, Placement, Value};
use jsym_net::NodeId;
use proptest::prelude::*;

// ------------------------------------------------------------- value model

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::I64),
        // Exactly-representable floats: JSON text round-trips of arbitrary
        // f64 are a serde_json concern, not a runtime one.
        any::<i32>().prop_map(|v| Value::F64(v as f64)),
        "[a-zA-Z0-9 ]{0,24}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
        proptest::collection::vec(-1e6f32..1e6, 0..64).prop_map(Value::floats),
    ];
    leaf.prop_recursive(3, 64, 8, |inner| {
        proptest::collection::vec(inner, 0..6).prop_map(Value::List)
    })
}

proptest! {
    /// Every value survives JSON round-tripping (the persistence format).
    #[test]
    fn value_serde_round_trip(v in arb_value()) {
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(v, back);
    }

    /// Wire size is positive and monotone under list extension.
    #[test]
    fn wire_size_positive_and_monotone(v in arb_value(), w in arb_value()) {
        prop_assert!(v.wire_size() >= 1);
        let small = Value::List(vec![v.clone()]);
        let big = Value::List(vec![v, w]);
        prop_assert!(big.wire_size() > small.wire_size());
    }

    /// Wire size of a float vector is linear in its length.
    #[test]
    fn f32vec_wire_size_linear(n in 0usize..4096) {
        let v = Value::floats(vec![0.0; n]);
        prop_assert_eq!(v.wire_size(), 5 + 4 * n);
    }
}

// ----------------------------------------------------- live runtime (slow)

/// Random sequences of object operations must preserve the counter's value
/// semantics regardless of placement and migration interleaving.
#[derive(Clone, Debug)]
enum Op {
    Add(i64),
    MigrateTo(u8),
    Store,
    SyncRead,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-100i64..100).prop_map(Op::Add),
        (0u8..3).prop_map(Op::MigrateTo),
        Just(Op::Store),
        Just(Op::SyncRead),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case boots a deployment; keep the count low
        .. ProptestConfig::default()
    })]

    #[test]
    fn object_semantics_invariant_under_ops(ops in proptest::collection::vec(arb_op(), 1..14)) {
        let d = shell_with_idle_machines(3).boot();
        register_test_classes(&d);
        let reg = d.register_app().unwrap();
        let obj = JsObj::create(&reg, "Counter", &[], Placement::Auto, None).unwrap();
        let mut model = 0i64;
        let mut stored: Vec<(String, i64)> = Vec::new();
        for op in &ops {
            match op {
                Op::Add(k) => {
                    let v = obj.sinvoke("add", &[Value::I64(*k)]).unwrap();
                    model += k;
                    prop_assert_eq!(v, Value::I64(model));
                }
                Op::MigrateTo(n) => {
                    obj.migrate(MigrateTarget::ToPhys(NodeId(*n as u32)), None).unwrap();
                    prop_assert_eq!(obj.get_location().unwrap(), NodeId(*n as u32));
                }
                Op::Store => {
                    let key = obj.store(None).unwrap();
                    stored.push((key, model));
                }
                Op::SyncRead => {
                    prop_assert_eq!(obj.sinvoke("get", &[]).unwrap(), Value::I64(model));
                }
            }
        }
        // Every stored snapshot resurrects with the value at store time.
        for (key, expect) in stored {
            let copy = reg.load_stored(&key, Placement::Auto, None).unwrap();
            prop_assert_eq!(copy.sinvoke("get", &[]).unwrap(), Value::I64(expect));
        }
        // Exactly one live object table entry per surviving object.
        let hosted: usize = d
            .machines()
            .iter()
            .map(|&m| d.node_stats(m).unwrap().objects_hosted)
            .sum();
        // obj + the resurrected copies.
        prop_assert!(hosted >= 1);
        reg.unregister().unwrap();
        d.shutdown();
    }

    /// Migration conservation: migrations_in == migrations_out across the
    /// deployment, and the object is hosted exactly once afterwards.
    #[test]
    fn migrations_conserve_objects(hops in proptest::collection::vec(0u8..4, 1..10)) {
        let d = shell_with_idle_machines(4).boot();
        register_test_classes(&d);
        let reg = d.register_app().unwrap();
        let obj = JsObj::create(&reg, "Counter", &[Value::I64(5)], Placement::OnPhys(NodeId(0)), None).unwrap();
        for &h in &hops {
            obj.migrate(MigrateTarget::ToPhys(NodeId(h as u32)), None).unwrap();
        }
        let stats: Vec<_> = d.machines().iter().map(|&m| d.node_stats(m).unwrap()).collect();
        let ins: u64 = stats.iter().map(|s| s.migrations_in).sum();
        let outs: u64 = stats.iter().map(|s| s.migrations_out).sum();
        prop_assert_eq!(ins, outs);
        let hosted: usize = stats.iter().map(|s| s.objects_hosted).sum();
        prop_assert_eq!(hosted, 1, "object must live exactly once");
        prop_assert_eq!(obj.sinvoke("get", &[]).unwrap(), Value::I64(5));
        d.shutdown();
    }
}
