//! Differential property tests for the loopback fast path.
//!
//! The fast path is a pure transport optimisation: a same-node send whose
//! modeled arrival is imminent is delivered inline on the caller's thread
//! instead of crossing the sharded delivery plane. Nothing observable may
//! change. These tests run the same random program twice — fast path on and
//! forced off — and require identical invocation results (which encode the
//! per-object execution order, since one-sided and synchronous calls to the
//! same object interleave), identical charged wire bytes, and identical
//! message counts.

use jsym_core::testkit::register_test_classes;
use jsym_core::{CostModel, JsObj, JsShell, MachineConfig, Placement, Value};
use jsym_net::NodeId;
use proptest::prelude::*;

/// One step of the random single-node program, acting on one of two
/// counters. Synchronous adds return the running value (order-sensitive);
/// one-sided adds and sets apply in issue order under the per-pair FIFO
/// guarantee, so the next synchronous result observes them.
#[derive(Clone, Debug)]
enum Op {
    SyncAdd(u8, i64),
    OneSidedAdd(u8, i64),
    OneSidedSet(u8, i64),
    SyncRead(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0u8..2), -100i64..100).prop_map(|(o, k)| Op::SyncAdd(o, k)),
        ((0u8..2), -100i64..100).prop_map(|(o, k)| Op::OneSidedAdd(o, k)),
        ((0u8..2), -100i64..100).prop_map(|(o, k)| Op::OneSidedSet(o, k)),
        (0u8..2).prop_map(Op::SyncRead),
    ]
}

/// Everything observable about one run: every synchronous result in program
/// order, the final counter values, and the network counters at quiescence.
#[derive(Debug, PartialEq)]
struct Outcome {
    sync_results: Vec<Value>,
    finals: Vec<Value>,
    msgs_sent: u64,
    bytes_sent: u64,
    msgs_delivered: u64,
    msgs_dropped: u64,
    msgs_rejected: u64,
}

fn run(ops: &[Op], fast_path: bool) -> Outcome {
    // One machine, NA silenced (a monitoring period far beyond the run) so
    // the network counters contain application traffic only.
    let d = JsShell::new()
        .add_machine(MachineConfig::idle("m0", 50.0))
        .time_scale(1e-5)
        .monitor_period(1e9)
        .failure_timeout(1e9)
        .cost_model(CostModel::free())
        .loopback_fast_path(fast_path)
        .boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let objs: Vec<JsObj> = (0..2)
        .map(|_| JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(0)), None).unwrap())
        .collect();
    let mut sync_results = Vec::new();
    for op in ops {
        match *op {
            Op::SyncAdd(o, k) => {
                sync_results.push(objs[o as usize].sinvoke("add", &[Value::I64(k)]).unwrap());
            }
            Op::OneSidedAdd(o, k) => {
                objs[o as usize].oinvoke("add", &[Value::I64(k)]).unwrap();
            }
            Op::OneSidedSet(o, k) => {
                objs[o as usize].oinvoke("set", &[Value::I64(k)]).unwrap();
            }
            Op::SyncRead(o) => {
                sync_results.push(objs[o as usize].sinvoke("get", &[]).unwrap());
            }
        }
    }
    // A final synchronous read per object flushes every one-sided call
    // still in flight (per-pair FIFO ordering): afterwards the network is
    // quiescent and the counters are exact.
    let finals: Vec<Value> = objs
        .iter()
        .map(|o| o.sinvoke("get", &[]).unwrap())
        .collect();
    let s = d.net_stats();
    let out = Outcome {
        sync_results,
        finals,
        msgs_sent: s.msgs_sent,
        bytes_sent: s.bytes_sent,
        msgs_delivered: s.msgs_delivered,
        msgs_dropped: s.msgs_dropped,
        msgs_rejected: s.msgs_rejected,
    };
    reg.unregister().unwrap();
    d.shutdown();
    out
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10, // each case boots two deployments; keep the count low
        .. ProptestConfig::default()
    })]

    /// The fast path is observationally equivalent to the slow path:
    /// identical results (hence identical per-object execution order),
    /// identical charged wire bytes and message counts, nothing lost.
    #[test]
    fn fast_path_is_observationally_equivalent(
        ops in proptest::collection::vec(arb_op(), 0..20)
    ) {
        let fast = run(&ops, true);
        let slow = run(&ops, false);
        prop_assert_eq!(&fast, &slow);
        prop_assert_eq!(fast.msgs_dropped, 0);
        prop_assert_eq!(fast.msgs_rejected, 0);
        // Quiescence reached: everything sent was delivered.
        prop_assert_eq!(fast.msgs_sent, fast.msgs_delivered);
    }
}
