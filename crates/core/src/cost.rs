//! The RMI/serialization cost model.
//!
//! JavaSymphony rides on Java/RMI under JDK 1.2.1, whose per-call and
//! serialization overheads were substantial (the Java Grande RMI papers the
//! paper cites, [20, 21], report milliseconds per call and a few MB/s of
//! serialization throughput on late-90s hardware). These costs are what make
//! "more than 10 nodes increases the execution time ... mostly due to a
//! larger number of RMIs" (paper §6), so they must be modeled, not ignored.
//!
//! Costs are expressed in *flops-equivalents* and executed on the
//! [`jsym_sysmon::SimMachine`] of the paying node: a slow SPARCstation pays
//! proportionally more wall time for the same marshalling work than a fast
//! Ultra, and marshalling contends with application compute — both true on
//! the real testbed.

use serde::{Deserialize, Serialize};

/// Cost parameters for runtime operations. All values are in flops
/// (machine-relative work), converted to time by the executing node.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed caller-side cost of issuing one RMI (proxy dispatch, socket
    /// write, protocol header).
    pub rmi_dispatch_flops: f64,
    /// Caller-side serialization cost per argument byte.
    pub marshal_flops_per_byte: f64,
    /// Callee-side fixed dispatch cost (thread hand-off, reflective lookup).
    pub serve_dispatch_flops: f64,
    /// Callee-side deserialization cost per argument byte (and, reversed,
    /// result marshalling).
    pub unmarshal_flops_per_byte: f64,
    /// Fixed cost of a remote object creation beyond the RMI itself.
    pub create_flops: f64,
    /// Fixed cost of a migration at each participating agent.
    pub migrate_flops: f64,
    /// Serialization cost per byte of migrated/persisted object state.
    pub state_flops_per_byte: f64,
}

impl CostModel {
    /// Caller-side cost of an invocation with `arg_bytes` of arguments.
    #[inline]
    pub fn invoke_caller(&self, arg_bytes: usize) -> f64 {
        self.rmi_dispatch_flops + self.marshal_flops_per_byte * arg_bytes as f64
    }

    /// Callee-side cost before executing a method.
    #[inline]
    pub fn invoke_callee(&self, arg_bytes: usize) -> f64 {
        self.serve_dispatch_flops + self.unmarshal_flops_per_byte * arg_bytes as f64
    }

    /// Cost of producing/consuming a result of `result_bytes`.
    #[inline]
    pub fn result_cost(&self, result_bytes: usize) -> f64 {
        self.unmarshal_flops_per_byte * result_bytes as f64
    }

    /// Cost of serializing or restoring `state_bytes` of object state.
    #[inline]
    pub fn state_cost(&self, state_bytes: usize) -> f64 {
        self.migrate_flops + self.state_flops_per_byte * state_bytes as f64
    }

    /// A cost model in which everything is free — useful for isolating
    /// algorithmic effects in tests.
    pub fn free() -> Self {
        CostModel {
            rmi_dispatch_flops: 0.0,
            marshal_flops_per_byte: 0.0,
            serve_dispatch_flops: 0.0,
            unmarshal_flops_per_byte: 0.0,
            create_flops: 0.0,
            migrate_flops: 0.0,
            state_flops_per_byte: 0.0,
        }
    }
}

impl Default for CostModel {
    /// Calibrated against JDK 1.2.1-era RMI measurements: a null RMI costs
    /// ~1 ms on a 25 Mflop/s Ultra (25 k flops dispatch), serialization
    /// throughput of ~2 MB/s on the same box (≈ 12 flops/byte), and object
    /// creation/migration adding a few ms of bookkeeping.
    fn default() -> Self {
        CostModel {
            rmi_dispatch_flops: 25_000.0,
            marshal_flops_per_byte: 12.0,
            serve_dispatch_flops: 15_000.0,
            unmarshal_flops_per_byte: 8.0,
            create_flops: 50_000.0,
            migrate_flops: 60_000.0,
            state_flops_per_byte: 14.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_scale_with_bytes() {
        let c = CostModel::default();
        assert!(c.invoke_caller(1000) > c.invoke_caller(0));
        assert!(c.invoke_callee(1000) > c.invoke_callee(0));
        assert_eq!(
            c.invoke_caller(100) - c.invoke_caller(0),
            100.0 * c.marshal_flops_per_byte
        );
    }

    #[test]
    fn null_rmi_is_about_a_millisecond_on_an_ultra() {
        // 25 k flops on a 25 Mflop/s machine = 1 ms — the era's null-RMI cost.
        let c = CostModel::default();
        let secs = c.invoke_caller(0) / 25e6;
        assert!((0.0005..0.002).contains(&secs), "null RMI = {secs}s");
    }

    #[test]
    fn free_model_is_zero() {
        let c = CostModel::free();
        assert_eq!(c.invoke_caller(1 << 20), 0.0);
        assert_eq!(c.state_cost(1 << 20), 0.0);
    }

    #[test]
    fn state_cost_includes_fixed_part() {
        let c = CostModel::default();
        assert_eq!(c.state_cost(0), c.migrate_flops);
        assert!(c.state_cost(1000) > c.state_cost(0));
    }
}
