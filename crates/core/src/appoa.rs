//! The application object agent (AppOA).
//!
//! One per registered application (paper §5.2): keeps the
//! *local-objects-table* mapping every object the application created to the
//! PubOA currently holding it, issues invocations, and orchestrates object
//! migration. The AppOA is the location authority for its objects — the
//! migration protocol always informs it (Figure 3), and remote PubOAs whose
//! invocations race with a migration come back here to re-resolve
//! (Figure 4).

use crate::calltable::{Reissue, Slot};
use crate::error::JsError;
use crate::ids::{AgentAddr, AgentKind, AppId, IdGen, ObjectHandle, ObjectId, ReqId};
use crate::intern::Sym;
use crate::msg::Msg;
use crate::runtime::{obs_now, NodeShared};
use crate::value::{args_wire_size, Value};
use crate::{Result, ResultHandle};
use jsym_net::NodeId;
use jsym_sysmon::{JsConstraints, SysParam};
use jsym_vda::{ResourcePool, VdaRegistry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

/// One row of the AppOA's local-objects-table.
#[derive(Clone, Debug)]
pub(crate) struct AppObjEntry {
    /// Node whose PubOA currently holds the object.
    pub location: NodeId,
    /// The object's class (diagnostics; location is the load-bearing field).
    #[allow(dead_code)]
    pub class: String,
}

/// Shared state of one application object agent.
pub(crate) struct AppShared {
    pub id: AppId,
    pub home: NodeId,
    /// The node runtime hosting this AppOA. Weak: the deployment owns the
    /// node runtimes; apps must not keep a dead deployment alive.
    pub node: Weak<NodeShared>,
    pub pool: ResourcePool,
    pub vda: VdaRegistry,
    /// The local-objects-table.
    pub objects: Mutex<HashMap<ObjectId, AppObjEntry>>,
    pub unregistered: AtomicBool,
}

impl AppShared {
    pub(crate) fn addr(&self) -> AgentAddr {
        AgentAddr::app_oa(self.home, self.id)
    }

    /// Write-through of a placement change to the replicated directory.
    ///
    /// Best-effort by design: the local-objects-table stays the origin
    /// authority and `resolve_location` falls back to it whenever the
    /// directory cannot answer, so a failed write-through (quorum loss)
    /// degrades to the legacy path instead of wedging the operation. The
    /// `dir.writethrough_errors` counter records the misses.
    fn dir_writethrough(&self, node: &NodeShared, cmd: jsym_dir::DirCommand) {
        let _ = crate::dir::propose(node, &cmd);
    }

    pub(crate) fn node_shared(&self) -> Result<Arc<NodeShared>> {
        self.node.upgrade().ok_or(JsError::ShuttingDown)
    }

    fn ensure_registered(&self) -> Result<()> {
        if self.unregistered.load(Ordering::Relaxed) {
            Err(JsError::AppUnregistered)
        } else {
            Ok(())
        }
    }

    /// Current location of one of this application's objects.
    pub(crate) fn location_of(&self, obj: ObjectId) -> Option<NodeId> {
        self.objects.lock().get(&obj).map(|e| e.location)
    }

    /// The first-order handle for one of this app's objects.
    pub(crate) fn handle_for(&self, obj: ObjectId) -> ObjectHandle {
        ObjectHandle {
            id: obj,
            origin: self.addr(),
        }
    }

    // ------------------------------------------------------------- creation

    /// Creates an object of `class` on `target`, entering it into the
    /// local-objects-table.
    pub(crate) fn create_object(
        self: &Arc<Self>,
        class: &str,
        args: &[Value],
        target: NodeId,
    ) -> Result<ObjectId> {
        self.ensure_registered()?;
        let node = self.node_shared()?;
        let obj = IdGen::object();
        let req = IdGen::req();
        node.machine
            .compute(node.cost.invoke_caller(args_wire_size(args)));
        let span = node
            .obs
            .tracer()
            .span("rmi.create", obs_now(&node))
            .node(self.home.0)
            .attr("class", class)
            .attr("target", target);
        node.call(
            AgentAddr::pub_oa(target),
            req,
            Msg::CreateObject {
                req,
                reply_to: self.addr(),
                obj,
                class: Sym::intern(class),
                args: args.to_vec(),
                origin: self.addr(),
            },
        )?;
        span.finish(obs_now(&node));
        self.objects.lock().insert(
            obj,
            AppObjEntry {
                location: target,
                class: class.to_owned(),
            },
        );
        self.dir_writethrough(
            &node,
            jsym_dir::DirCommand::SetLocation {
                object: obj.0,
                node: target.0,
            },
        );
        Ok(obj)
    }

    /// Re-creates a persistent object from stored state on `target`.
    pub(crate) fn create_from_state(
        self: &Arc<Self>,
        class: &str,
        state: Vec<u8>,
        target: NodeId,
    ) -> Result<ObjectId> {
        self.ensure_registered()?;
        let node = self.node_shared()?;
        let obj = IdGen::object();
        let req = IdGen::req();
        node.machine.compute(node.cost.state_cost(state.len()));
        node.call(
            AgentAddr::pub_oa(target),
            req,
            Msg::CreateFromState {
                req,
                reply_to: self.addr(),
                obj,
                class: Sym::intern(class),
                state,
                origin: self.addr(),
            },
        )?;
        self.objects.lock().insert(
            obj,
            AppObjEntry {
                location: target,
                class: class.to_owned(),
            },
        );
        self.dir_writethrough(
            &node,
            jsym_dir::DirCommand::SetLocation {
                object: obj.0,
                node: target.0,
            },
        );
        Ok(obj)
    }

    /// Re-creates an object *under its existing id* from checkpointed state
    /// (failure recovery): the instance is installed on `target` and the
    /// local-objects-table is repointed, so existing handles keep working.
    pub(crate) fn restore_object_at(
        self: &Arc<Self>,
        obj: ObjectId,
        class: &str,
        state: Vec<u8>,
        target: NodeId,
    ) -> Result<()> {
        self.ensure_registered()?;
        let node = self.node_shared()?;
        let req = IdGen::req();
        node.machine.compute(node.cost.state_cost(state.len()));
        node.call(
            AgentAddr::pub_oa(target),
            req,
            Msg::CreateFromState {
                req,
                reply_to: self.addr(),
                obj,
                class: Sym::intern(class),
                state,
                origin: self.addr(),
            },
        )?;
        {
            let mut objects = self.objects.lock();
            match objects.get_mut(&obj) {
                Some(entry) => entry.location = target,
                None => {
                    objects.insert(
                        obj,
                        AppObjEntry {
                            location: target,
                            class: class.to_owned(),
                        },
                    );
                }
            }
        }
        self.dir_writethrough(
            &node,
            jsym_dir::DirCommand::SetLocation {
                object: obj.0,
                node: target.0,
            },
        );
        Ok(())
    }

    // ----------------------------------------------------------- invocation

    /// Issues one invocation towards the currently known location, returning
    /// the pending slot. Used by all three invocation modes.
    fn issue(
        self: &Arc<Self>,
        obj: ObjectId,
        method: &str,
        args: &[Value],
        want_reply: bool,
    ) -> Result<(ReqId, Option<Slot>)> {
        self.ensure_registered()?;
        let node = self.node_shared()?;
        let loc = self.location_of(obj).ok_or(JsError::NoSuchObject(obj))?;
        let req = IdGen::req();
        // Caller-side dispatch + marshalling.
        node.machine
            .compute(node.cost.invoke_caller(args_wire_size(args)));
        let slot = want_reply.then(|| node.calls.register(req));
        let msg = Msg::Invoke {
            req,
            reply_to: want_reply.then(|| self.addr()),
            obj,
            method: Sym::intern(method),
            args: args.to_vec(),
        };
        if let Err(e) = node.send(AgentAddr::pub_oa(loc), msg) {
            node.calls.forget(req);
            return Err(e);
        }
        Ok((req, slot))
    }

    /// `ainvoke` — asynchronous invocation returning a [`ResultHandle`].
    pub(crate) fn ainvoke(
        self: &Arc<Self>,
        obj: ObjectId,
        method: &str,
        args: &[Value],
    ) -> Result<ResultHandle> {
        self.ainvoke_traced(obj, method, args, "ainvoke", "rmi.ainvoke")
    }

    /// Shared `sinvoke`/`ainvoke` body; `mode`/`span_name` only feed the
    /// instrumentation. The caller-side span covers issue → reply and is
    /// finished by the result handle's first successful read (a call that
    /// never completes records no span).
    fn ainvoke_traced(
        self: &Arc<Self>,
        obj: ObjectId,
        method: &str,
        args: &[Value],
        mode: &'static str,
        span_name: &'static str,
    ) -> Result<ResultHandle> {
        let node = self.node_shared()?;
        if node.obs.is_enabled() {
            node.obs.counter("rmi.calls", Some(self.home.0), mode).inc();
        }
        let span = node
            .obs
            .tracer()
            .span(span_name, obs_now(&node))
            .node(self.home.0)
            .attr("obj", obj)
            .attr("method", method);
        let (_, slot) = self.issue(obj, method, args, true)?;
        let slot = slot.expect("reply requested");
        let app = Arc::clone(self);
        let method_owned = method.to_owned();
        let args_owned = args.to_vec();
        let reissue: Arc<Reissue> = Arc::new(move || {
            // The object moved while the call was in flight; back off a
            // little, then re-issue against the (by now updated) table.
            if let Ok(n) = app.node_shared() {
                n.clock.sleep(n.config.retry_backoff);
            }
            let (_, slot) = app.issue(obj, &method_owned, &args_owned, true)?;
            Ok(slot.expect("reply requested"))
        });
        let machine = node.machine.clone();
        let cost = node.cost;
        let clock = node.clock.clone();
        let caller_hist = node.obs.histogram(
            "rmi.caller_seconds",
            Some(self.home.0),
            mode,
            jsym_obs::bounds::LATENCY_SECONDS,
        );
        let span_cell = Mutex::new(Some(span));
        Ok(ResultHandle::new(
            slot,
            reissue,
            node.config.call_timeout,
            Box::new(move |v: &Value| {
                // Caller-side result unmarshalling.
                machine.compute(cost.result_cost(Msg::reply_wire_size_ok(v)));
                if let Some(span) = span_cell.lock().take() {
                    match span.start_time() {
                        Some(start) => {
                            let now = clock.now();
                            caller_hist.observe(now - start);
                            span.finish(now);
                        }
                        None => span.finish(0.0),
                    }
                }
            }),
        ))
    }

    /// `sinvoke` — synchronous invocation (blocks for the result).
    pub(crate) fn sinvoke(
        self: &Arc<Self>,
        obj: ObjectId,
        method: &str,
        args: &[Value],
    ) -> Result<Value> {
        self.ainvoke_traced(obj, method, args, "sinvoke", "rmi.sinvoke")?
            .get_result()
    }

    /// `oinvoke` — one-sided invocation: no result, no completion wait.
    pub(crate) fn oinvoke(
        self: &Arc<Self>,
        obj: ObjectId,
        method: &str,
        args: &[Value],
    ) -> Result<()> {
        let node = self.node_shared()?;
        self.issue(obj, method, args, false)?;
        if node.obs.is_enabled() {
            node.obs
                .counter("rmi.calls", Some(self.home.0), "oinvoke")
                .inc();
            let now = node.clock.now();
            // Fire-and-forget: recorded as an instant span at issue time.
            node.obs
                .tracer()
                .span("rmi.oinvoke", now)
                .node(self.home.0)
                .attr("obj", obj)
                .attr("method", method)
                .finish(now);
        }
        Ok(())
    }

    /// Issues a static invocation to `class`'s static context on `node`.
    pub(crate) fn static_issue(
        self: &Arc<Self>,
        class: &str,
        target: NodeId,
        method: &str,
        args: &[Value],
        want_reply: bool,
    ) -> Result<Option<Slot>> {
        self.ensure_registered()?;
        let node = self.node_shared()?;
        let req = IdGen::req();
        node.machine
            .compute(node.cost.invoke_caller(args_wire_size(args)));
        let slot = want_reply.then(|| node.calls.register(req));
        let msg = Msg::StaticInvoke {
            req,
            reply_to: want_reply.then(|| self.addr()),
            class: Sym::intern(class),
            method: Sym::intern(method),
            args: args.to_vec(),
        };
        if let Err(e) = node.send(AgentAddr::pub_oa(target), msg) {
            node.calls.forget(req);
            return Err(e);
        }
        Ok(slot)
    }

    // ------------------------------------------------------------ migration

    /// Explicitly migrates `obj` to `dst` (paper Figure 3: this AppOA is
    /// `ao`). Blocks until the destination confirmed; updates the table.
    pub(crate) fn migrate_object(self: &Arc<Self>, obj: ObjectId, dst: NodeId) -> Result<()> {
        self.ensure_registered()?;
        let node = self.node_shared()?;
        // Root span of the migration; the remote protocol steps (request,
        // quiesce, transfer, install, confirm) nest under it via parent
        // links carried on the wire.
        let root = node
            .obs
            .tracer()
            .span("migrate", obs_now(&node))
            .node(self.home.0)
            .attr("obj", obj)
            .attr("dst", dst);
        let mut attempts = 0;
        loop {
            let loc = self.location_of(obj).ok_or(JsError::NoSuchObject(obj))?;
            if loc == dst {
                root.finish(obs_now(&node));
                return Ok(());
            }
            let req = IdGen::req();
            node.machine.compute(node.cost.migrate_flops);
            let step = node
                .obs
                .tracer()
                .span("migrate.request", obs_now(&node))
                .node(self.home.0)
                .parent(root.id())
                .attr("from", loc);
            let out = node.call(
                AgentAddr::pub_oa(loc),
                req,
                Msg::MigrateRequest {
                    req,
                    reply_to: self.addr(),
                    obj,
                    dst,
                    span: jsym_obs::SpanId::to_wire(step.id()),
                },
            );
            match out {
                Ok(v) => {
                    let new_loc = NodeId(v.as_i64().unwrap_or(dst.0 as i64) as u32);
                    if let Some(e) = self.objects.lock().get_mut(&obj) {
                        e.location = new_loc;
                    }
                    self.dir_writethrough(
                        &node,
                        jsym_dir::DirCommand::SetLocation {
                            object: obj.0,
                            node: new_loc.0,
                        },
                    );
                    let now = obs_now(&node);
                    step.finish(now);
                    // Table updated: the AppOA acknowledges the new location
                    // (Figure 3 step 4) — an instant span.
                    node.obs
                        .tracer()
                        .span("migrate.confirm", now)
                        .node(self.home.0)
                        .parent(root.id())
                        .attr("loc", new_loc)
                        .finish(now);
                    root.finish(now);
                    return Ok(());
                }
                // Someone else migrated it concurrently; re-read and retry.
                Err(JsError::ObjectMoved(_)) => {
                    step.finish(obs_now(&node));
                    attempts += 1;
                    if attempts > node.config.max_retries {
                        root.finish(obs_now(&node));
                        return Err(JsError::Timeout);
                    }
                    node.clock.sleep(node.config.retry_backoff);
                }
                Err(e) => {
                    step.finish(obs_now(&node));
                    root.finish(obs_now(&node));
                    return Err(e);
                }
            }
        }
    }

    // ---------------------------------------------------------- persistence

    /// Stores an object's state, returning its persistence key (§4.7).
    pub(crate) fn store_object(
        self: &Arc<Self>,
        obj: ObjectId,
        key: Option<&str>,
    ) -> Result<String> {
        self.ensure_registered()?;
        let node = self.node_shared()?;
        let loc = self.location_of(obj).ok_or(JsError::NoSuchObject(obj))?;
        let req = IdGen::req();
        let v = node.call(
            AgentAddr::pub_oa(loc),
            req,
            Msg::StoreObject {
                req,
                reply_to: self.addr(),
                obj,
                key: key.map(str::to_owned),
            },
        )?;
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsError::MethodFailed("bad store reply".into()))
    }

    // -------------------------------------------------------------- freeing

    /// Frees an object: removes it from the table and tells its host (§4.4).
    pub(crate) fn free_object(self: &Arc<Self>, obj: ObjectId) -> Result<()> {
        let node = self.node_shared()?;
        let entry = self
            .objects
            .lock()
            .remove(&obj)
            .ok_or(JsError::NoSuchObject(obj))?;
        // One-sided: freeing exists to reduce book-keeping, not to block.
        let _ = node.send(AgentAddr::pub_oa(entry.location), Msg::FreeObject { obj });
        self.dir_writethrough(
            &node,
            jsym_dir::DirCommand::RemoveLocation { object: obj.0 },
        );
        Ok(())
    }

    /// Objects currently located on `phys` (for automatic migration).
    pub(crate) fn objects_on(&self, phys: NodeId) -> Vec<ObjectId> {
        self.objects
            .lock()
            .iter()
            .filter(|(_, e)| e.location == phys)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Unregisters the application: the table is dropped and every hosted
    /// object freed (paper §4.1 — unregistration lets the runtime reduce
    /// book-keeping and reclaim memory).
    pub(crate) fn unregister(self: &Arc<Self>) -> Result<()> {
        if self.unregistered.swap(true, Ordering::Relaxed) {
            return Err(JsError::AppUnregistered);
        }
        let node = self.node_shared()?;
        let drained: Vec<(ObjectId, AppObjEntry)> = self.objects.lock().drain().collect();
        for (obj, entry) in drained {
            let _ = node.send(AgentAddr::pub_oa(entry.location), Msg::FreeObject { obj });
            self.dir_writethrough(
                &node,
                jsym_dir::DirCommand::RemoveLocation { object: obj.0 },
            );
        }
        node.apps.write().remove(&self.id);
        Ok(())
    }
}

/// Handles AppOA-addressed messages (runs inline on the receiver thread —
/// table lookups answer inline; directory-routed lookups move to a worker).
pub(crate) fn handle_app_msg(shared: &Arc<NodeShared>, app: AppId, msg: Msg) {
    let Some(app_shared) = shared.apps.read().get(&app).cloned() else {
        // Unknown app: the directory may still know the placement (e.g. the
        // origin restarted and lost its tables); otherwise answer with an
        // error so the caller unblocks.
        if let Msg::WhereIs { req, reply_to, obj } = msg {
            answer_where_is(shared, None, req, reply_to, obj);
        }
        return;
    };
    match msg {
        Msg::WhereIs { req, reply_to, obj } => {
            let table = app_shared.location_of(obj);
            answer_where_is(shared, table, req, reply_to, obj);
        }
        _ => {
            // AppOAs accept no other requests.
        }
    }
}

/// Answers a `WhereIs`: through the replicated directory when it is enabled
/// (a linearizable leader read), keeping the origin's local-objects-table as
/// the authority fallback whenever the directory cannot produce a location.
///
/// The directory-routed path runs on a worker thread — the read blocks on
/// consensus replies that the receiver thread (our caller) must keep
/// dispatching, so answering inline would deadlock the node.
fn answer_where_is(
    shared: &Arc<NodeShared>,
    table: Option<NodeId>,
    req: ReqId,
    reply_to: AgentAddr,
    obj: ObjectId,
) {
    let table_reply = move |loc: Option<NodeId>| {
        loc.map(|n| Value::I64(n.0 as i64))
            .ok_or(JsError::NoSuchObject(obj))
    };
    if shared.dir.is_none() {
        shared.send_reply(reply_to, req, table_reply(table));
        return;
    }
    let sh = Arc::clone(shared);
    crate::runtime::spawn_worker(shared, "where-is", move || {
        let (result, source) = match crate::dir::read_location(&sh, obj) {
            Ok(n) => (Ok(Value::I64(n.0 as i64)), "directory"),
            Err(_) => (table_reply(table), "origin"),
        };
        if sh.obs.is_enabled() {
            sh.obs.counter("dir.whereis", Some(sh.phys.0), source).inc();
        }
        sh.send_reply(reply_to, req, result);
    });
}

// ---------------------------------------------------------------- placement

/// Picks the least-loaded machine out of `candidates` that satisfies
/// `constraints` ("JRS chooses a node with the smallest system load and
/// reasonable resources available", §4.4).
pub(crate) fn pick_least_loaded(
    pool: &ResourcePool,
    candidates: &[NodeId],
    constraints: Option<&JsConstraints>,
) -> Result<NodeId> {
    let mut best: Option<(f64, NodeId)> = None;
    for &id in candidates {
        let Ok(snap) = pool.snapshot_of(id) else {
            continue;
        };
        if let Some(c) = constraints {
            if !c.holds(&snap) {
                continue;
            }
        }
        let load = snap.num(SysParam::CpuLoad1).unwrap_or(f64::MAX);
        if best.is_none_or(|(b, _)| load < b) {
            best = Some((load, id));
        }
    }
    best.map(|(_, id)| id).ok_or_else(|| {
        JsError::PlacementFailed("no candidate node satisfies the constraints".into())
    })
}

/// Resolves [`AgentKind`] display for diagnostics.
#[allow(dead_code)]
pub(crate) fn agent_kind_label(kind: AgentKind) -> String {
    match kind {
        AgentKind::Pub => "pub".to_owned(),
        AgentKind::App(a) => format!("{a}"),
        AgentKind::Dir => "dir".to_owned(),
    }
}
