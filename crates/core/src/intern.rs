//! Symbol interning for class and method names.
//!
//! The runtime's messages used to carry freshly allocated `String` class and
//! method names on every hop; dispatch then re-hashed those strings in the
//! registry and statics tables. Class and method names form a small, finite
//! vocabulary fixed at class-registration time, so we intern them once into
//! [`Sym`]s — a `u32` id plus a leaked `&'static str` — and pass those around
//! by copy. Comparison and hashing touch only the id; `as_str` is a stored
//! pointer, not a table lookup.
//!
//! The interner is process-global, which models the paper's node-local
//! name tables kept in sync at class-registration time (every node learns a
//! class's name before it can host or call it — the same registration
//! broadcast that ships the class id ships the symbol). Leaking is deliberate
//! and bounded: only registered class names and invoked method names ever
//! enter the table.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::OnceLock;

/// An interned class or method name. Copyable; equality and hashing use the
/// `u32` id only.
#[derive(Clone, Copy)]
pub(crate) struct Sym {
    id: u32,
    s: &'static str,
}

static INTERNER: OnceLock<RwLock<HashMap<&'static str, u32>>> = OnceLock::new();

fn table() -> &'static RwLock<HashMap<&'static str, u32>> {
    INTERNER.get_or_init(|| RwLock::new(HashMap::new()))
}

impl Sym {
    /// Interns `s`, returning its symbol. Idempotent; the common case (name
    /// already known) is a single read-locked hash lookup.
    pub(crate) fn intern(s: &str) -> Sym {
        let t = table();
        if let Some((&k, &id)) = t.read().get_key_value(s) {
            return Sym { id, s: k };
        }
        let mut map = t.write();
        if let Some((&k, &id)) = map.get_key_value(s) {
            return Sym { id, s: k };
        }
        let id = u32::try_from(map.len()).expect("interner overflow");
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        map.insert(leaked, id);
        Sym { id, s: leaked }
    }

    /// The interned text. Free: the symbol carries the pointer.
    pub(crate) fn as_str(self) -> &'static str {
        self.s
    }
}

impl PartialEq for Sym {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl Eq for Sym {}

impl Hash for Sym {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u32(self.id);
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.s)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(sym: Sym) -> u64 {
        let mut h = DefaultHasher::new();
        sym.hash(&mut h);
        h.finish()
    }

    #[test]
    fn interning_is_idempotent_and_pointer_stable() {
        let a = Sym::intern("Counter");
        let b = Sym::intern(&String::from("Counter"));
        assert_eq!(a, b);
        assert_eq!(hash_of(a), hash_of(b));
        // Same leaked storage, not merely equal text.
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
        assert_eq!(a.as_str(), "Counter");
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        let a = Sym::intern("intern-test-a");
        let b = Sym::intern("intern-test-b");
        assert_ne!(a, b);
        assert_eq!(a.to_string(), "intern-test-a");
        assert_eq!(format!("{b:?}"), "\"intern-test-b\"");
    }

    #[test]
    fn wire_size_parity_with_raw_strings() {
        // The cost model charges name bytes via as_str().len(); interning
        // must not change the analytic wire size.
        for name in ["m", "add_to", "a much longer method name"] {
            assert_eq!(Sym::intern(name).as_str().len(), name.len());
        }
    }
}
