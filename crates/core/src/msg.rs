//! The agent wire protocol.
//!
//! Every message between agents travels as a [`Packet`] inside a
//! [`jsym_net::Payload`], addressed to an agent on the destination node. The
//! declared wire size feeds the network delay model; it approximates what
//! Java serialization of the same message would occupy.

use crate::error::JsError;
use crate::ids::{AgentAddr, AgentKind, ObjectId, ReqId};
use crate::intern::Sym;
use crate::value::{args_wire_size, Args, Value};
use jsym_net::NodeId;
use jsym_sysmon::SysSnapshot;

/// A message plus the agent it is addressed to.
#[derive(Debug)]
pub(crate) struct Packet {
    pub to: AgentKind,
    pub msg: Msg,
}

/// Aggregation level of a monitoring report (paper §5.1). Carried on the
/// wire for protocol completeness; receivers key aggregates by label.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(dead_code)]
pub(crate) enum ReportLevel {
    Node,
    Cluster,
    Site,
    Domain,
}

/// Protocol messages between AppOAs, PubOAs and NAs.
#[derive(Debug)]
pub(crate) enum Msg {
    // ---------------------------------------------------------------- OAS
    /// Create an object instance of `class` on the receiving PubOA.
    ///
    /// Class and method names travel as interned [`Sym`]s: a `u32` symbol id
    /// on the (modeled) wire, resolved against the node-local name table
    /// synced at class-registration time. The cost model still charges the
    /// full name bytes — Java RMI serializes the string — via
    /// [`Sym::as_str`].
    CreateObject {
        req: ReqId,
        reply_to: AgentAddr,
        obj: ObjectId,
        class: Sym,
        args: Args,
        origin: AgentAddr,
    },
    /// Re-create an object from serialized state (persistent load).
    CreateFromState {
        req: ReqId,
        reply_to: AgentAddr,
        obj: ObjectId,
        class: Sym,
        state: Vec<u8>,
        origin: AgentAddr,
    },
    /// Release an object (one-sided; no reply).
    FreeObject { obj: ObjectId },
    /// Invoke `method` on `obj`. `reply_to: None` marks a one-sided
    /// invocation (`oinvoke`) — no result, no completion message.
    Invoke {
        req: ReqId,
        reply_to: Option<AgentAddr>,
        obj: ObjectId,
        method: Sym,
        args: Args,
    },
    /// Completion of a request.
    Reply {
        req: ReqId,
        result: Result<Value, JsError>,
    },
    /// Ask an origin AppOA where one of its objects currently lives
    /// (paper Figure 4). Replies `I64(node)`.
    WhereIs {
        req: ReqId,
        reply_to: AgentAddr,
        obj: ObjectId,
    },
    /// Ask the PubOA holding `obj` to migrate it to `dst`
    /// (paper Figure 3, step 1). Replies `I64(dst)` once confirmed.
    MigrateRequest {
        req: ReqId,
        reply_to: AgentAddr,
        obj: ObjectId,
        dst: NodeId,
        /// Wire-encoded tracing span of the requesting operation
        /// ([`jsym_obs::SpanId::to_wire`]; `0` = untraced). Framing only —
        /// not charged as payload bytes.
        span: u64,
    },
    /// Transfer of the serialized object to the destination PubOA
    /// (Figure 3, step 2). The reply is the confirmation (step 3).
    MigrateTransfer {
        req: ReqId,
        reply_to: AgentAddr,
        obj: ObjectId,
        class: Sym,
        state: Vec<u8>,
        origin: AgentAddr,
        /// Wire-encoded tracing span of the sender's transfer step, parent
        /// for the receiver's install span (`0` = untraced).
        span: u64,
    },
    /// Store the object's state under a persistence key. Replies
    /// `Str(key)`.
    StoreObject {
        req: ReqId,
        reply_to: AgentAddr,
        obj: ObjectId,
        key: Option<String>,
    },
    /// Ship a codebase artifact to the receiving node (selective
    /// classloading, §4.3). Replies `Null`.
    LoadArtifact {
        req: ReqId,
        reply_to: AgentAddr,
        name: String,
        bytes: usize,
    },
    /// Remove a previously loaded artifact (one-sided). Carries the size so
    /// the node can release the accounted memory.
    UnloadArtifact { name: String, bytes: usize },
    // ---------------------------------------------------------------- NAS
    /// Periodic monitoring report to a manager.
    SysReport {
        from: NodeId,
        #[allow(dead_code)]
        level: ReportLevel,
        label: String,
        snapshot: SysSnapshot,
    },
    /// Liveness heartbeat.
    Heartbeat { from: NodeId },
    /// Invoke a *static* method of `class` on the receiving node's static
    /// context (paper §7 future work: "extending JavaSymphony to handle
    /// static methods and variables").
    StaticInvoke {
        req: ReqId,
        reply_to: Option<AgentAddr>,
        class: Sym,
        method: Sym,
        args: Args,
    },
    // ---------------------------------------------------------- DIRECTORY
    /// Replica-to-replica consensus traffic: one encoded
    /// [`jsym_dir::DirMsg`] (votes, appends, snapshots). One-sided — acks
    /// travel as further `DirConsensus` packets, not `Reply`s.
    DirConsensus { data: Vec<u8> },
    /// Client proposal of an encoded [`jsym_dir::DirCommand`] to a replica.
    /// Replies `Null` once majority-committed, or `DirRedirect`.
    DirPropose {
        req: ReqId,
        reply_to: AgentAddr,
        cmd: Vec<u8>,
    },
    /// Client read of an object's placement from the directory leader
    /// (read-index read). Replies `I64(node)`, `NoSuchObject`, or
    /// `DirRedirect`.
    DirRead {
        req: ReqId,
        reply_to: AgentAddr,
        object: u64,
    },
}

impl Msg {
    /// Approximate serialized size in bytes, for the network cost model.
    pub(crate) fn wire_size(&self) -> usize {
        const HDR: usize = 48; // addressing, ids, protocol framing
        match self {
            Msg::CreateObject { class, args, .. } => {
                HDR + 32 + class.as_str().len() + args_wire_size(args)
            }
            Msg::CreateFromState { class, state, .. } => {
                HDR + 32 + class.as_str().len() + state.len()
            }
            Msg::FreeObject { .. } => HDR,
            Msg::Invoke { method, args, .. } => {
                HDR + 16 + method.as_str().len() + args_wire_size(args)
            }
            Msg::Reply { result, .. } => {
                HDR + match result {
                    Ok(v) => v.wire_size(),
                    Err(_) => 64,
                }
            }
            Msg::WhereIs { .. } => HDR + 8,
            Msg::MigrateRequest { .. } => HDR + 16,
            Msg::MigrateTransfer { class, state, .. } => {
                HDR + 32 + class.as_str().len() + state.len()
            }
            Msg::StoreObject { key, .. } => HDR + 8 + key.as_deref().map_or(0, str::len),
            Msg::LoadArtifact { name, bytes, .. } => HDR + name.len() + bytes,
            Msg::UnloadArtifact { name, .. } => HDR + name.len(),
            // A full snapshot is ~44 parameters; Java-serialized ≈ 800 B.
            Msg::SysReport { label, .. } => HDR + 800 + label.len(),
            Msg::Heartbeat { .. } => HDR,
            Msg::StaticInvoke {
                class,
                method,
                args,
                ..
            } => HDR + 16 + class.as_str().len() + method.as_str().len() + args_wire_size(args),
            Msg::DirConsensus { data } => HDR + data.len(),
            Msg::DirPropose { cmd, .. } => HDR + cmd.len(),
            Msg::DirRead { .. } => HDR + 8,
        }
    }

    /// The reply-size of `result` as it will travel back (used by callers to
    /// pre-charge unmarshalling).
    pub(crate) fn reply_wire_size(result: &Result<Value, JsError>) -> usize {
        48 + match result {
            Ok(v) => v.wire_size(),
            Err(_) => 64,
        }
    }

    /// [`Msg::reply_wire_size`] for a borrowed success value, so the
    /// pre-charge on every synchronous RMI reply does not clone the `Value`
    /// just to size it.
    pub(crate) fn reply_wire_size_ok(v: &Value) -> usize {
        48 + v.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IdGen;

    fn addr() -> AgentAddr {
        AgentAddr::pub_oa(NodeId(0))
    }

    #[test]
    fn invoke_size_tracks_args() {
        let small = Msg::Invoke {
            req: IdGen::req(),
            reply_to: Some(addr()),
            obj: ObjectId(1),
            method: Sym::intern("m"),
            args: vec![],
        };
        let big = Msg::Invoke {
            req: IdGen::req(),
            reply_to: Some(addr()),
            obj: ObjectId(1),
            method: Sym::intern("m"),
            args: vec![Value::floats(vec![0.0; 1000])],
        };
        assert!(big.wire_size() > small.wire_size() + 3900);
    }

    #[test]
    fn transfer_size_tracks_state() {
        let m = Msg::MigrateTransfer {
            req: IdGen::req(),
            reply_to: addr(),
            obj: ObjectId(1),
            class: Sym::intern("C"),
            state: vec![0; 5000],
            origin: addr(),
            span: 0,
        };
        assert!(m.wire_size() >= 5000);
    }

    #[test]
    fn artifact_load_pays_its_bytes() {
        let m = Msg::LoadArtifact {
            req: IdGen::req(),
            reply_to: addr(),
            name: "classes.jar".into(),
            bytes: 300_000,
        };
        assert!(m.wire_size() >= 300_000);
        // Unload is control-plane only.
        let u = Msg::UnloadArtifact {
            name: "classes.jar".into(),
            bytes: 300_000,
        };
        assert!(u.wire_size() < 100);
    }

    #[test]
    fn heartbeat_is_small_and_report_is_substantial() {
        let hb = Msg::Heartbeat { from: NodeId(2) };
        assert!(hb.wire_size() < 64);
        let report = Msg::SysReport {
            from: NodeId(2),
            level: ReportLevel::Node,
            label: "vc0".into(),
            snapshot: SysSnapshot::empty(0.0),
        };
        assert!(report.wire_size() > 500);
    }

    #[test]
    fn reply_size_covers_result_value() {
        let ok: Result<Value, JsError> = Ok(Value::floats(vec![0.0; 100]));
        assert!(Msg::reply_wire_size(&ok) > 400);
        let err: Result<Value, JsError> = Err(JsError::Timeout);
        assert_eq!(Msg::reply_wire_size(&err), 48 + 64);
    }
}
