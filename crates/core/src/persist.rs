//! Persistent object storage (paper §4.7).
//!
//! "JavaSymphony provides facilities to make objects persistent by saving
//! and loading them to/from external storage. ... If no string is specified
//! then JRS will generate and return a unique string for the object just
//! stored." The store is deployment-global (the paper's external storage is
//! reachable from every node) and can optionally spill to a directory.

use crate::error::JsError;
use crate::Result;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One stored object: class name + serialized state.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredObject {
    /// The object's class (needed to restore it).
    pub class: String,
    /// Serialized state.
    pub state: Vec<u8>,
}

struct StoreInner {
    map: Mutex<HashMap<String, StoredObject>>,
    next_key: AtomicU64,
    dir: Option<PathBuf>,
}

/// The external object store. Cloning shares the store.
#[derive(Clone)]
pub struct ObjectStore {
    inner: Arc<StoreInner>,
}

impl ObjectStore {
    /// An in-memory store.
    pub fn in_memory() -> Self {
        ObjectStore {
            inner: Arc::new(StoreInner {
                map: Mutex::new(HashMap::new()),
                next_key: AtomicU64::new(1),
                dir: None,
            }),
        }
    }

    /// A store that also spills every object to `dir` as JSON-state files,
    /// so persistence survives the process in the way the paper intends.
    pub fn on_disk(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ObjectStore {
            inner: Arc::new(StoreInner {
                map: Mutex::new(HashMap::new()),
                next_key: AtomicU64::new(1),
                dir: Some(dir),
            }),
        })
    }

    /// Stores `state` under `key` (or a generated unique key), returning the
    /// key actually used.
    pub fn put(&self, key: Option<String>, class: &str, state: Vec<u8>) -> String {
        let key = key.unwrap_or_else(|| {
            format!(
                "jsobj-{}",
                self.inner.next_key.fetch_add(1, Ordering::Relaxed)
            )
        });
        if let Some(dir) = &self.inner.dir {
            let path = dir.join(format!("{key}.{class}.state"));
            let _ = std::fs::write(path, &state);
        }
        self.inner.map.lock().insert(
            key.clone(),
            StoredObject {
                class: class.to_owned(),
                state,
            },
        );
        key
    }

    /// Loads the stored object under `key`.
    pub fn get(&self, key: &str) -> Result<StoredObject> {
        self.inner
            .map
            .lock()
            .get(key)
            .cloned()
            .ok_or_else(|| JsError::NoSuchStoredObject(key.to_owned()))
    }

    /// Removes a stored object, returning whether it existed.
    pub fn remove(&self, key: &str) -> bool {
        self.inner.map.lock().remove(key).is_some()
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.inner.map.lock().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.map.lock().is_empty()
    }

    /// All stored keys (sorted).
    pub fn keys(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.map.lock().keys().cloned().collect();
        v.sort();
        v
    }
}

impl Default for ObjectStore {
    fn default() -> Self {
        ObjectStore::in_memory()
    }
}

impl std::fmt::Debug for ObjectStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectStore")
            .field("objects", &self.len())
            .field("dir", &self.inner.dir)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_with_explicit_key_round_trips() {
        let store = ObjectStore::in_memory();
        let key = store.put(Some("mine".into()), "Counter", vec![1, 2, 3]);
        assert_eq!(key, "mine");
        let got = store.get("mine").unwrap();
        assert_eq!(got.class, "Counter");
        assert_eq!(got.state, vec![1, 2, 3]);
    }

    #[test]
    fn generated_keys_are_unique() {
        let store = ObjectStore::in_memory();
        let a = store.put(None, "C", vec![]);
        let b = store.put(None, "C", vec![]);
        assert_ne!(a, b);
        assert_eq!(store.len(), 2);
        let mut keys = store.keys();
        keys.sort();
        assert_eq!(keys.len(), 2);
    }

    #[test]
    fn missing_key_errors() {
        let store = ObjectStore::in_memory();
        assert!(matches!(
            store.get("ghost"),
            Err(JsError::NoSuchStoredObject(_))
        ));
        assert!(!store.remove("ghost"));
    }

    #[test]
    fn overwrite_replaces_state() {
        let store = ObjectStore::in_memory();
        store.put(Some("k".into()), "C", vec![1]);
        store.put(Some("k".into()), "C", vec![2]);
        assert_eq!(store.get("k").unwrap().state, vec![2]);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn disk_store_writes_files() {
        let dir = std::env::temp_dir().join(format!("jsym-store-test-{}", std::process::id()));
        let store = ObjectStore::on_disk(&dir).unwrap();
        store.put(Some("k".into()), "C", vec![b'x']);
        let file = dir.join("k.C.state");
        assert_eq!(std::fs::read(&file).unwrap(), vec![b'x']);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
