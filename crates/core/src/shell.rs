//! The JS-Shell and deployments.
//!
//! Paper §5: "The nodes on which JRS is installed are configured by using
//! the JS-Shell. The set of nodes can be changed by adding or removing nodes
//! dynamically ... The performance measurement and collection periods can be
//! controlled under the JS-Shell ... it is possible to enable/disable
//! automatic migration under the JS-Shell."
//!
//! [`JsShell`] is the configuration builder; [`JsShell::boot`] brings up a
//! [`Deployment`]: one node runtime (receiver thread + NA thread) per
//! machine, a simulated network wired from each machine's link class, the
//! virtual-architecture registry, the class registry and the object store.

use crate::appoa::AppShared;
use crate::class::ClassRegistry;
use crate::cost::CostModel;
use crate::error::JsError;
use crate::ids::{AppId, IdGen};
use crate::na::{self, NaConfig, NaState};
use crate::persist::ObjectStore;
use crate::registration::JsRegistration;
use crate::runtime::{self, NodeShared, RuntimeConfig, StatCounters};
use crate::Result;
use crate::{automigrate, recovery};
use jsym_net::{LinkClass, Network, NodeId, SimClock, TimeScale, Topology};
use jsym_sysmon::{LoadModel, LoadProfile, MachineSpec, SimMachine, SysSnapshot};
use jsym_vda::{ResourcePool, VdaRegistry};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One machine to bring up: spec, background-load model and network
/// attachment.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Static machine description.
    pub spec: MachineSpec,
    /// Background (other-user) load model.
    pub load: LoadModel,
    /// Network attachment class.
    pub link: LinkClass,
}

impl MachineConfig {
    /// An idle machine on fast Ethernet — the common test fixture.
    pub fn idle(name: &str, peak_mflops: f64) -> Self {
        MachineConfig {
            spec: MachineSpec::generic(name, peak_mflops, 256.0),
            load: LoadModel::new(LoadProfile::Idle, 0),
            link: LinkClass::Lan100,
        }
    }
}

/// Configuration of the affinity plane (DESIGN.md §14): decayed
/// caller→object traffic counters feeding affinity-guided re-placement,
/// plus lease-based local reads in the replicated directory.
///
/// Everything defaults to **off**, in which state the runtime is
/// byte-identical to a deployment without the plane — the differential
/// oracle the affinity proptests compare against.
#[derive(Clone, Copy, Debug)]
pub struct AffinityConfig {
    /// Migrate hot objects toward their dominant callers during
    /// automigrate supervisor rounds (also enables traffic recording).
    pub placement: bool,
    /// Grant directory read leases so `resolve_location` on the leader is
    /// served locally without a read-index heartbeat round (requires
    /// [`JsShell::directory_replicas`] > 0 to have any effect).
    pub leases: bool,
    /// Traffic-counter half-life in virtual seconds.
    pub half_life: f64,
    /// Minimum dominant-caller share of an object's call mass before it is
    /// migrated (hysteresis against ping-pong under mixed traffic).
    pub min_share: f64,
    /// Minimum decayed call mass before an object counts as hot.
    pub min_calls: f64,
    /// Virtual seconds an object is ineligible after an affinity migration.
    pub cooldown: f64,
}

impl Default for AffinityConfig {
    fn default() -> Self {
        AffinityConfig {
            placement: false,
            leases: false,
            half_life: 20.0,
            min_share: 0.6,
            min_calls: 8.0,
            cooldown: 30.0,
        }
    }
}

impl AffinityConfig {
    /// Placement and leases both on, default thresholds.
    pub fn enabled() -> Self {
        AffinityConfig {
            placement: true,
            leases: true,
            ..AffinityConfig::default()
        }
    }
}

/// The JS-Shell: deployment configuration builder.
#[derive(Clone, Debug)]
pub struct JsShell {
    machines: Vec<MachineConfig>,
    time_scale: TimeScale,
    monitor_period: f64,
    failure_timeout: f64,
    automigration: bool,
    automigrate_period: f64,
    checkpointing: Option<f64>,
    cost: CostModel,
    call_timeout: Duration,
    store: Option<ObjectStore>,
    shared_segments: Vec<LinkClass>,
    observability: bool,
    loopback_fast_path: bool,
    delivery_shards: usize,
    param_plane: bool,
    automigrate_dirty_set: bool,
    directory_replicas: u32,
    rmi_batching: Option<jsym_net::BatchConfig>,
    executor_threads: usize,
    executor_legacy_injector: bool,
    net_state_shards: usize,
    net_endpoint_cache: bool,
    pub(crate) affinity: AffinityConfig,
}

impl JsShell {
    /// A shell with no machines and default tunables (1 virtual s = 1 real
    /// ms, 2 s monitoring period, 10 s failure timeout, auto-migration off).
    pub fn new() -> Self {
        JsShell {
            machines: Vec::new(),
            time_scale: TimeScale::default(),
            monitor_period: NaConfig::default().monitor_period,
            failure_timeout: NaConfig::default().failure_timeout,
            automigration: false,
            automigrate_period: 4.0,
            checkpointing: None,
            cost: CostModel::default(),
            call_timeout: Duration::from_secs(120),
            store: None,
            shared_segments: Vec::new(),
            observability: true,
            loopback_fast_path: jsym_net::NetworkConfig::default().loopback_fast_path,
            delivery_shards: jsym_net::NetworkConfig::default().delivery_shards,
            param_plane: true,
            automigrate_dirty_set: true,
            directory_replicas: 0,
            rmi_batching: None,
            executor_threads: 0,
            executor_legacy_injector: false,
            net_state_shards: jsym_net::NetworkConfig::default().state_shards,
            net_endpoint_cache: jsym_net::NetworkConfig::default().endpoint_cache,
            affinity: AffinityConfig::default(),
        }
    }

    /// Adds a machine to the configuration.
    pub fn add_machine(mut self, machine: MachineConfig) -> Self {
        self.machines.push(machine);
        self
    }

    /// Adds several machines.
    pub fn add_machines(mut self, machines: impl IntoIterator<Item = MachineConfig>) -> Self {
        self.machines.extend(machines);
        self
    }

    /// Sets the virtual-to-real time scale.
    pub fn time_scale(mut self, real_per_virt: f64) -> Self {
        self.time_scale = TimeScale::new(real_per_virt);
        self
    }

    /// Sets the monitoring period (virtual seconds).
    pub fn monitor_period(mut self, secs: f64) -> Self {
        self.monitor_period = secs;
        self
    }

    /// Sets the failure timeout (virtual seconds of silence).
    pub fn failure_timeout(mut self, secs: f64) -> Self {
        self.failure_timeout = secs;
        self
    }

    /// Enables automatic migration with the given check period (virtual
    /// seconds).
    pub fn automigration(mut self, enabled: bool, period: f64) -> Self {
        self.automigration = enabled;
        self.automigrate_period = period;
        self
    }

    /// Enables periodic object checkpointing and failure recovery (paper §7
    /// future work): every `period` virtual seconds each application object
    /// is persisted; when the NAS declares a node failed, its objects are
    /// re-created from their latest checkpoints on surviving machines.
    pub fn checkpointing(mut self, period: f64) -> Self {
        self.checkpointing = Some(period);
        self
    }

    /// Overrides the RMI/serialization cost model.
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the real-time budget for one request/reply exchange.
    pub fn call_timeout(mut self, timeout: Duration) -> Self {
        self.call_timeout = timeout;
        self
    }

    /// Uses a specific object store (e.g. an on-disk one).
    pub fn object_store(mut self, store: ObjectStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Models a link class as a *shared medium* (one transmission at a time
    /// across the whole segment) — the paper's 10 Mbit/s Ethernet was a
    /// shared segment, not a switch.
    pub fn shared_segment(mut self, class: LinkClass) -> Self {
        self.shared_segments.push(class);
        self
    }

    /// Enables or disables the observability subsystem (metrics + span
    /// tracing). On by default; when disabled every instrumentation point
    /// collapses to a single branch and no clock reads or allocations occur.
    pub fn observability(mut self, enabled: bool) -> Self {
        self.observability = enabled;
        self
    }

    /// Enables or disables the loopback fast path: same-node sends whose
    /// modeled arrival is imminent are delivered inline on the caller's
    /// thread instead of crossing the delivery plane. On by default;
    /// disable to force every send through the shared delivery heaps
    /// (useful for differential testing — results and charged wire bytes
    /// are identical either way).
    pub fn loopback_fast_path(mut self, enabled: bool) -> Self {
        self.loopback_fast_path = enabled;
        self
    }

    /// Sets the number of delivery-plane shards (per-destination heaps
    /// served by dedicated threads). Clamped to at least 1.
    pub fn delivery_shards(mut self, shards: usize) -> Self {
        self.delivery_shards = shards.max(1);
        self
    }

    /// Enables or disables the parameter aggregation plane: cached samples
    /// (TTL = monitoring period), incremental component rollups and the
    /// indexed placement heap. On by default; disable to force every
    /// allocation and component query onto the recompute-from-scratch slow
    /// path (the two produce identical placement decisions given the same
    /// samples — see `DESIGN.md` §9).
    pub fn param_plane(mut self, enabled: bool) -> Self {
        self.param_plane = enabled;
        self
    }

    /// Enables or disables dirty-set automigrate rounds: only nodes whose
    /// cached sample changed past a threshold (plus currently-violating
    /// ones) are re-evaluated, with a periodic full scan as a safety net.
    /// On by default; requires the parameter aggregation plane.
    pub fn automigrate_dirty_set(mut self, enabled: bool) -> Self {
        self.automigrate_dirty_set = enabled;
        self
    }

    /// Hosts the replicated object/manager directory on the first `n`
    /// machines (`0` — the default — keeps the legacy single-authority
    /// resolution through each object's origin AppOA).
    ///
    /// With replication on, placement changes are written through to a
    /// leader-based replicated log with majority commit, and location
    /// resolution reads from the directory leader; the directory survives
    /// any minority of replica failures (DESIGN.md §10). Use an odd `n`
    /// (3 or 5) so a majority exists after failures.
    pub fn directory_replicas(mut self, n: u32) -> Self {
        self.directory_replicas = n;
        self
    }

    /// Enables RMI batching: cross-node messages with the same source and
    /// destination that fall inside one `flush_window` (virtual seconds) are
    /// coalesced into a single transfer paying the link latency once plus
    /// the summed payload bytes, flushed early when the batch reaches
    /// `max_bytes`. Per-message delivery semantics, ordering and `NetStats`
    /// attribution are preserved exactly (DESIGN.md §12); node-local traffic
    /// keeps the loopback fast path. Off by default.
    pub fn rmi_batching(mut self, flush_window: f64, max_bytes: usize) -> Self {
        self.rmi_batching = Some(jsym_net::BatchConfig {
            flush_window: flush_window.max(0.0),
            max_bytes: max_bytes.max(1),
            ..jsym_net::BatchConfig::default()
        });
        self
    }

    /// RMI batching with an adaptive flush window: each source/destination
    /// pair tracks an EWMA of its inter-send gaps and flushes after about
    /// two expected gaps, clamped to `[flush_window / 16, flush_window]`.
    /// Chatty pairs stop paying the full window of added latency; sparse
    /// pairs keep the configured ceiling. Semantics are otherwise identical
    /// to [`JsShell::rmi_batching`].
    pub fn rmi_batching_adaptive(mut self, flush_window: f64, max_bytes: usize) -> Self {
        self.rmi_batching = Some(jsym_net::BatchConfig {
            flush_window: flush_window.max(0.0),
            max_bytes: max_bytes.max(1),
            adaptive: true,
            ..jsym_net::BatchConfig::default()
        });
        self
    }

    /// Sets the modeled compression ratio for multi-message RMI batches
    /// (see [`jsym_net::BatchConfig::compression`]): coalesced batches are
    /// charged `ceil(bytes × ratio)` wire bytes for transfer time and the
    /// `max_bytes` overflow check, reflecting how well the shared headers
    /// and similar small payloads of coalesced RMIs compress. `1.0`
    /// disables compression (byte-identical accounting); applies on top of
    /// [`JsShell::rmi_batching`] / [`JsShell::rmi_batching_adaptive`], or
    /// enables batching with default tunables if neither was called.
    pub fn rmi_batching_compression(mut self, ratio: f64) -> Self {
        let ratio = ratio.clamp(0.01, 1.0);
        match &mut self.rmi_batching {
            Some(c) => c.compression = ratio,
            None => {
                self.rmi_batching = Some(jsym_net::BatchConfig {
                    compression: ratio,
                    ..jsym_net::BatchConfig::default()
                })
            }
        }
        self
    }

    /// Runs every node on a deployment-wide work-stealing executor with
    /// `threads` workers instead of spawning receiver/NA/worker threads per
    /// node (`0` — the default — keeps the thread-per-node model). Node
    /// mailboxes become delivery-hook tasks, NA monitor rounds and
    /// directory replica ticks become self-re-arming timer tasks, and
    /// blocking waits hand their worker to a spare, so one process can
    /// simulate tens of thousands of nodes (DESIGN.md §13). Semantics are
    /// identical to the threaded runtime.
    pub fn executor(mut self, threads: usize) -> Self {
        self.executor_threads = threads;
        self
    }

    /// Routes executor spawns through the legacy single global inject queue
    /// and global sleep condvar instead of the default per-worker striped
    /// inject queues with targeted parker wakeups. Scheduling semantics are
    /// identical (the two are differential-tested against each other); kept
    /// as the contention oracle for `ablate_contention`.
    pub fn executor_legacy_injector(mut self, legacy: bool) -> Self {
        self.executor_legacy_injector = legacy;
        self
    }

    /// Sets the lock-stripe count for the delivery plane's per-pair hot-path
    /// state (`pair_last`, and the batching stage's `pending`/`gaps` maps).
    /// Rounded up to a power of two; `1` collapses to the legacy
    /// single-lock layout, kept as the differential oracle (DESIGN.md §15).
    pub fn net_state_shards(mut self, shards: usize) -> Self {
        self.net_state_shards = shards.max(1);
        self
    }

    /// Enables or disables the per-thread endpoint-directory cache that lets
    /// fault-free sends resolve their destination without any global
    /// `RwLock` read (on by default; `false` is the legacy lookup path).
    pub fn net_endpoint_cache(mut self, enabled: bool) -> Self {
        self.net_endpoint_cache = enabled;
        self
    }

    /// Configures the affinity plane: decayed caller→object traffic
    /// counters drive affinity-guided re-placement during automigrate
    /// supervisor rounds, and the replicated directory serves leader-local
    /// lease reads (DESIGN.md §14). Off by default; with every
    /// [`AffinityConfig`] toggle off the runtime is byte-identical to one
    /// without the plane.
    pub fn affinity(mut self, config: AffinityConfig) -> Self {
        self.affinity = config;
        self
    }

    /// Boots the deployment: spawns every node runtime and the NAS.
    pub fn boot(self) -> Deployment {
        let clock = SimClock::new(self.time_scale);
        let obs = if self.observability {
            jsym_obs::ObsRegistry::new()
        } else {
            jsym_obs::ObsRegistry::disabled()
        };
        let exec = if self.executor_threads > 0 {
            Some(jsym_exec::Executor::with_config(
                self.executor_threads,
                obs.clone(),
                jsym_exec::ExecConfig {
                    legacy_injector: self.executor_legacy_injector,
                },
            ))
        } else {
            None
        };
        let mut topo = Topology::new();
        let network = {
            // Machines get ids 0..n in order; set link classes up front.
            for (i, m) in self.machines.iter().enumerate() {
                topo.set_node_class(NodeId(i as u32), m.link);
            }
            // In executor mode the delivery plane runs as executor timer
            // tasks and every delivery is hook-routed into the destination
            // runtime (mailboxes have no receiver threads to drain them).
            let spawner: Option<jsym_net::SpawnAt> = exec.as_ref().map(|e| {
                let e = Arc::clone(e);
                Arc::new(
                    move |at: std::time::Instant, job: Box<dyn FnOnce() + Send + 'static>| {
                        e.spawn_at(at, job)
                    },
                ) as jsym_net::SpawnAt
            });
            Network::with_obs_and_spawner(
                clock.clone(),
                topo,
                jsym_net::NetworkConfig {
                    shared_segments: self.shared_segments.clone(),
                    loopback_fast_path: self.loopback_fast_path,
                    delivery_shards: self.delivery_shards,
                    batching: self.rmi_batching.clone(),
                    deliver_via_hook: exec.is_some(),
                    state_shards: self.net_state_shards,
                    endpoint_cache: self.net_endpoint_cache,
                    ..jsym_net::NetworkConfig::default()
                },
                obs.clone(),
                spawner,
            )
        };
        let pool = ResourcePool::new();
        let vda = VdaRegistry::with_obs(pool.clone(), obs.clone());
        vda.set_plane_config(jsym_vda::PlaneConfig {
            enabled: self.param_plane,
            ttl: self.monitor_period,
            ..jsym_vda::PlaneConfig::default()
        });
        let classes = ClassRegistry::new();
        let store = self.store.clone().unwrap_or_default();
        let events = crate::EventLog::with_tracer(4096, obs.tracer().clone());

        // The replicated directory lives on the first n machines (machines
        // get ids 0..n in boot order). Clamped: every replica needs a host.
        let dir = match self.directory_replicas.min(self.machines.len() as u32) {
            0 => None,
            n => Some(Arc::new(crate::dir::DirCluster::new(
                (0..n).map(NodeId).collect(),
            ))),
        };

        let affinity = Arc::new(jsym_net::AffinityTracker::new(self.affinity.half_life));
        affinity.set_enabled(self.affinity.placement);

        let inner = Arc::new(DeploymentInner {
            clock: clock.clone(),
            network: network.clone(),
            pool: pool.clone(),
            vda: vda.clone(),
            classes,
            store,
            events,
            obs,
            cost: self.cost,
            config: self.clone(),
            nodes: RwLock::new(HashMap::new()),
            apps: RwLock::new(HashMap::new()),
            automigration: AtomicBool::new(self.automigration),
            automigrate_dirty: AtomicBool::new(self.automigrate_dirty_set),
            automigrate_rounds: AtomicU64::new(0),
            affinity,
            affinity_placement: AtomicBool::new(self.affinity.placement),
            affinity_migrations: AtomicU64::new(0),
            affinity_rounds: AtomicU64::new(0),
            dir,
            exec,
            shutdown: AtomicBool::new(false),
            threads: Mutex::new(Vec::new()),
        });

        for m in &self.machines {
            Deployment::spawn_node(&inner, m.clone());
        }

        // The auto-migration supervisor (enabled/disabled via the shell).
        {
            let weak = Arc::downgrade(&inner);
            let period = self.automigrate_period;
            let handle = std::thread::Builder::new()
                .name("jsym-automigrate".into())
                .spawn(move || automigrate::run(weak, period))
                .expect("spawn automigrate thread");
            inner.threads.lock().push(handle);
        }

        // Mirror vda manager-role transitions into the replicated directory:
        // every `ManagerChanged` (including backup takeover on failure)
        // becomes a majority-committed `SetRole`, so role assignments are a
        // directory transition visible to any surviving replica.
        if inner.dir.is_some() {
            let weak = Arc::downgrade(&inner);
            let rx = vda.subscribe();
            let handle = std::thread::Builder::new()
                .name("jsym-dir-roles".into())
                .spawn(move || run_role_mirror(weak, rx))
                .expect("spawn dir role mirror");
            inner.threads.lock().push(handle);
        }

        // Checkpointing + failure recovery (paper §7 future work).
        if let Some(period) = self.checkpointing {
            let weak = Arc::downgrade(&inner);
            let handle = std::thread::Builder::new()
                .name("jsym-checkpoint".into())
                .spawn(move || recovery::run_checkpointer(weak, period))
                .expect("spawn checkpoint thread");
            inner.threads.lock().push(handle);
            let weak = Arc::downgrade(&inner);
            let handle = std::thread::Builder::new()
                .name("jsym-recovery".into())
                .spawn(move || recovery::run_recovery(weak))
                .expect("spawn recovery thread");
            inner.threads.lock().push(handle);
        }

        Deployment { inner }
    }
}

impl Default for JsShell {
    fn default() -> Self {
        JsShell::new()
    }
}

pub(crate) struct NodeRuntimeHandle {
    pub shared: Arc<NodeShared>,
    pub threads: Vec<JoinHandle<()>>,
}

pub(crate) struct DeploymentInner {
    pub clock: SimClock,
    pub network: Network,
    pub pool: ResourcePool,
    pub vda: VdaRegistry,
    pub classes: ClassRegistry,
    pub store: ObjectStore,
    pub events: crate::EventLog,
    pub obs: jsym_obs::ObsRegistry,
    pub cost: CostModel,
    pub config: JsShell,
    pub nodes: RwLock<HashMap<NodeId, NodeRuntimeHandle>>,
    pub apps: RwLock<HashMap<AppId, Arc<AppShared>>>,
    pub automigration: AtomicBool,
    pub automigrate_dirty: AtomicBool,
    pub automigrate_rounds: AtomicU64,
    /// Decayed caller→object traffic counters (recording gated internally).
    pub affinity: Arc<jsym_net::AffinityTracker>,
    /// Whether affinity-guided re-placement rounds run.
    pub affinity_placement: AtomicBool,
    /// Objects moved toward a dominant caller by the affinity loop.
    pub affinity_migrations: AtomicU64,
    /// Affinity placement rounds completed.
    pub affinity_rounds: AtomicU64,
    /// Client view of the replicated directory (`None` = legacy resolution).
    pub dir: Option<Arc<crate::dir::DirCluster>>,
    /// The deployment-wide work-stealing executor (`None` = threaded mode).
    pub exec: Option<Arc<jsym_exec::Executor>>,
    pub shutdown: AtomicBool,
    pub threads: Mutex<Vec<JoinHandle<()>>>,
}

/// A running JavaSymphony deployment.
///
/// Cloning shares the deployment. Dropping the last clone shuts it down.
#[derive(Clone)]
pub struct Deployment {
    inner: Arc<DeploymentInner>,
}

/// Point-in-time affinity-plane statistics (shell `affinity` command).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AffinityStats {
    /// Whether affinity-guided re-placement (and traffic recording) is on.
    pub placement: bool,
    /// Whether the directory grants read leases (boot-time choice).
    pub leases: bool,
    /// Traffic-counter half-life in virtual seconds.
    pub half_life: f64,
    /// Objects with live traffic counters.
    pub objects: usize,
    /// `(caller, object)` pairs with live traffic counters.
    pub pairs: usize,
    /// Affinity placement rounds completed.
    pub rounds: u64,
    /// Objects moved toward a dominant caller by the affinity loop.
    pub migrations: u64,
}

/// Point-in-time runtime counters of one node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Methods executed by this node's PubOA.
    pub invocations: u64,
    /// Objects created here.
    pub creations: u64,
    /// Migrations that arrived here.
    pub migrations_in: u64,
    /// Migrations that left here.
    pub migrations_out: u64,
    /// Codebase bytes ever loaded here.
    pub artifact_bytes: u64,
    /// Objects persisted from here.
    pub stores: u64,
    /// Objects currently hosted.
    pub objects_hosted: usize,
    /// Monitoring rounds completed by the NA.
    pub monitor_rounds: u64,
    /// Transient worker threads spawned because the resident pool was full.
    pub transient_workers: u64,
}

impl Deployment {
    fn spawn_node(inner: &Arc<DeploymentInner>, config: MachineConfig) -> NodeId {
        let machine = SimMachine::new(config.spec, config.load, inner.clock.clone());
        let phys = inner.pool.add_machine(machine.clone());
        inner
            .network
            .topology()
            .write()
            .set_node_class(phys, config.link);
        let dir = inner.dir.clone();
        let dir_host = match &dir {
            Some(c) if c.replicas.contains(&phys) => Some(Arc::new(crate::dir::DirHost::new(
                phys,
                &c.replicas,
                inner.clock.scale(),
                inner.config.affinity.leases,
                inner.clock.now(),
            ))),
            _ => None,
        };
        let shared = Arc::new(NodeShared {
            phys,
            machine,
            clock: inner.clock.clone(),
            net: inner.network.clone(),
            classes: inner.classes.clone(),
            cost: inner.cost,
            config: RuntimeConfig {
                call_timeout: inner.config.call_timeout,
                ..RuntimeConfig::default()
            },
            store: inner.store.clone(),
            calls: crate::calltable::CallTable::new(),
            objects: Mutex::new(HashMap::new()),
            statics: Mutex::new(HashMap::new()),
            loaded: Mutex::new(std::collections::HashSet::new()),
            apps: RwLock::new(HashMap::new()),
            location_cache: Mutex::new(HashMap::new()),
            affinity: Arc::clone(&inner.affinity),
            na: NaState::new(NaConfig {
                monitor_period: inner.config.monitor_period,
                failure_timeout: inner.config.failure_timeout,
                history: 16,
            }),
            stats: StatCounters::default(),
            events: inner.events.clone(),
            obs: inner.obs.clone(),
            workers: match &inner.exec {
                Some(e) => runtime::Workers::Exec(Arc::clone(e)),
                None => runtime::Workers::Pool(runtime::WorkerPool::new(&format!("{phys}"), 3)),
            },
            dir,
            dir_host,
            shutdown: AtomicBool::new(false),
        });
        // Local deliveries (loopback fast path and same-node slow path)
        // bypass the mailbox and dispatch straight into the runtime. The
        // hook holds the node weakly: shutdown drops the runtime even if
        // the network outlives it, and a hook firing during teardown is a
        // no-op.
        {
            let weak = Arc::downgrade(&shared);
            inner.network.set_local_hook(
                phys,
                Arc::new(move |env| {
                    if let Some(sh) = weak.upgrade() {
                        if !sh.shutdown.load(Ordering::Relaxed) {
                            runtime::dispatch(&sh, env);
                        }
                    }
                }),
            );
        }
        // Register only after the hook is installed: in executor mode every
        // delivery is hook-routed and the mailbox has no receiver thread, so
        // nothing must ever be able to land in it.
        let rx = inner.network.register(phys);
        let mut threads = Vec::new();
        if let Some(exec) = &inner.exec {
            // No per-node threads: deliveries dispatch through the hook on
            // delivery-plane tasks; NA rounds and directory ticks are
            // self-re-arming timer tasks on the shared executor.
            drop(rx);
            na::schedule_monitor(Arc::clone(&shared), inner.vda.clone(), Arc::clone(exec));
            if shared.dir_host.is_some() {
                crate::dir::schedule_dir_ticker(Arc::clone(&shared), Arc::clone(exec));
            }
        } else {
            {
                let sh = Arc::clone(&shared);
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("jsym-{phys}-recv"))
                        .spawn(move || runtime::run_receiver(sh, rx))
                        .expect("spawn receiver"),
                );
            }
            {
                let sh = Arc::clone(&shared);
                let vda = inner.vda.clone();
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("jsym-{phys}-na"))
                        .spawn(move || na::run_na(sh, vda))
                        .expect("spawn NA"),
                );
            }
            if shared.dir_host.is_some() {
                let sh = Arc::clone(&shared);
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("jsym-{phys}-dir"))
                        .spawn(move || crate::dir::run_dir_ticker(sh))
                        .expect("spawn dir ticker"),
                );
            }
        }
        inner
            .nodes
            .write()
            .insert(phys, NodeRuntimeHandle { shared, threads });
        phys
    }

    // ------------------------------------------------------------ accessors

    /// The deployment's virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    /// The simulated network.
    pub fn network(&self) -> &Network {
        &self.inner.network
    }

    /// The physical machine pool.
    pub fn pool(&self) -> &ResourcePool {
        &self.inner.pool
    }

    /// The virtual-architecture registry.
    pub fn vda(&self) -> &VdaRegistry {
        &self.inner.vda
    }

    /// The class registry — register application classes here.
    pub fn classes(&self) -> &ClassRegistry {
        &self.inner.classes
    }

    /// The external object store.
    pub fn store(&self) -> &ObjectStore {
        &self.inner.store
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> CostModel {
        self.inner.cost
    }

    /// Machines currently part of the deployment (ascending ids).
    pub fn machines(&self) -> Vec<NodeId> {
        self.inner.pool.ids()
    }

    // --------------------------------------------------------- applications

    /// Registers an application, homing its AppOA on the lowest-id machine.
    pub fn register_app(&self) -> Result<JsRegistration> {
        let home = self
            .machines()
            .into_iter()
            .next()
            .ok_or_else(|| JsError::PlacementFailed("deployment has no machines".into()))?;
        self.register_app_on(home)
    }

    /// Registers an application homed on a specific machine.
    pub fn register_app_on(&self, home: NodeId) -> Result<JsRegistration> {
        if self.inner.shutdown.load(Ordering::Relaxed) {
            return Err(JsError::ShuttingDown);
        }
        let nodes = self.inner.nodes.read();
        let node = nodes.get(&home).ok_or(JsError::NodeUnreachable(home))?;
        let app = Arc::new(AppShared {
            id: IdGen::app(),
            home,
            node: Arc::downgrade(&node.shared),
            pool: self.inner.pool.clone(),
            vda: self.inner.vda.clone(),
            objects: Mutex::new(HashMap::new()),
            unregistered: AtomicBool::new(false),
        });
        node.shared.apps.write().insert(app.id, Arc::clone(&app));
        self.inner.apps.write().insert(app.id, Arc::clone(&app));
        Ok(JsRegistration::new(app))
    }

    // -------------------------------------------------------- shell actions

    /// Adds a machine at runtime (JS-Shell grow).
    pub fn add_machine(&self, config: MachineConfig) -> NodeId {
        Deployment::spawn_node(&self.inner, config)
    }

    /// Gracefully removes a machine (JS-Shell shrink, paper §5: "The set of
    /// nodes can be changed by adding or removing nodes dynamically").
    ///
    /// Refuses while the machine still hosts objects or backs a live
    /// virtual node — drain it first (migrate/free, release architectures).
    pub fn remove_machine(&self, phys: NodeId) -> Result<()> {
        {
            let nodes = self.inner.nodes.read();
            let handle = nodes.get(&phys).ok_or(JsError::NodeUnreachable(phys))?;
            let hosted = handle.shared.objects.lock().len();
            if hosted > 0 {
                return Err(JsError::PlacementFailed(format!(
                    "{phys} still hosts {hosted} object(s); migrate or free them first"
                )));
            }
        }
        // Any live virtual node backed by this machine blocks removal.
        let backing = self.inner.vda.allocation_count(phys);
        if backing > 0 {
            return Err(JsError::PlacementFailed(format!(
                "{phys} backs {backing} live virtual node(s); free the architecture first"
            )));
        }
        let handle = {
            let mut nodes = self.inner.nodes.write();
            nodes.remove(&phys)
        };
        if let Some(handle) = handle {
            handle.shared.shutdown.store(true, Ordering::Relaxed);
            handle.shared.calls.fail_all(JsError::ShuttingDown);
            self.inner.network.unregister(phys);
            for t in handle.threads {
                let _ = t.join();
            }
        }
        self.inner.pool.remove_machine(phys);
        Ok(())
    }

    /// Kills a machine: its endpoint drops off the network and its runtime
    /// threads stop. Failure *detection* is left to the NAS heartbeats.
    pub fn kill_node(&self, phys: NodeId) {
        self.inner.network.kill_node(phys);
        if let Some(handle) = self.inner.nodes.read().get(&phys) {
            handle.shared.shutdown.store(true, Ordering::Relaxed);
            handle.shared.calls.fail_all(JsError::NodeUnreachable(phys));
        }
    }

    /// Changes the NAS monitoring period at runtime (JS-Shell, §5.1: "The
    /// performance measurement and collection periods can be controlled
    /// under the JS-Shell").
    pub fn set_monitor_period(&self, secs: f64) {
        for handle in self.inner.nodes.read().values() {
            handle.shared.na.knobs.set_monitor_period(secs);
        }
        // The aggregation plane's sample TTL tracks the monitoring period.
        self.inner.vda.set_plane_ttl(secs);
        // Executor mode: each node's monitor chain is an already-armed timer
        // task that would only pick up the new period after its old deadline
        // fires. Re-arm with the new period now; bumping the generation
        // counter first makes the superseded chain die at its next firing
        // instead of running duplicate rounds alongside the new chain.
        if let Some(exec) = &self.inner.exec {
            for handle in self.inner.nodes.read().values() {
                handle.shared.na.timer_gen.fetch_add(1, Ordering::Relaxed);
                na::schedule_monitor(
                    Arc::clone(&handle.shared),
                    self.inner.vda.clone(),
                    Arc::clone(exec),
                );
            }
        }
    }

    /// Changes the NAS failure timeout at runtime (JS-Shell, §5.1: the
    /// no-response period is "changeable under JS-Shell").
    pub fn set_failure_timeout(&self, secs: f64) {
        for handle in self.inner.nodes.read().values() {
            handle.shared.na.knobs.set_failure_timeout(secs);
        }
    }

    /// Enables/disables automatic object migration (JS-Shell toggle, §5.2).
    pub fn set_automigration(&self, enabled: bool) {
        self.inner.automigration.store(enabled, Ordering::Relaxed);
    }

    /// Whether automatic migration is currently enabled.
    pub fn automigration_enabled(&self) -> bool {
        self.inner.automigration.load(Ordering::Relaxed)
    }

    /// Switches automigrate rounds between dirty-set scans (re-evaluate only
    /// nodes whose cached sample changed) and full scans (JS-Shell toggle).
    pub fn set_automigrate_dirty(&self, enabled: bool) {
        self.inner
            .automigrate_dirty
            .store(enabled, Ordering::Relaxed);
    }

    /// Whether automigrate rounds use dirty-set scans.
    pub fn automigrate_dirty_enabled(&self) -> bool {
        self.inner.automigrate_dirty.load(Ordering::Relaxed)
    }

    /// Statistics of the parameter aggregation plane (cache hits/misses,
    /// dirty-set and placement-index sizes).
    pub fn plane_stats(&self) -> jsym_vda::PlaneStats {
        self.inner.vda.plane_stats()
    }

    /// Enables/disables affinity-guided re-placement at runtime: toggles
    /// both traffic recording and the placement rounds of the automigrate
    /// supervisor. Directory read leases are a boot-time choice
    /// ([`AffinityConfig::leases`]) and are unaffected.
    pub fn set_affinity(&self, enabled: bool) {
        self.inner.affinity.set_enabled(enabled);
        self.inner
            .affinity_placement
            .store(enabled, Ordering::Relaxed);
    }

    /// Whether affinity-guided re-placement is currently enabled.
    pub fn affinity_enabled(&self) -> bool {
        self.inner.affinity_placement.load(Ordering::Relaxed)
    }

    /// Point-in-time affinity-plane statistics.
    pub fn affinity_stats(&self) -> AffinityStats {
        let t = self.inner.affinity.stats();
        AffinityStats {
            placement: self.affinity_enabled(),
            leases: self.inner.config.affinity.leases,
            half_life: self.inner.affinity.half_life(),
            objects: t.objects,
            pairs: t.pairs,
            rounds: self.inner.affinity_rounds.load(Ordering::Relaxed),
            migrations: self.inner.affinity_migrations.load(Ordering::Relaxed),
        }
    }

    /// Whether this deployment runs the replicated directory.
    pub fn directory_enabled(&self) -> bool {
        self.inner.dir.is_some()
    }

    /// Point-in-time status of every live directory replica, ascending by
    /// node id. Empty when the directory is disabled; killed replicas are
    /// omitted (their runtime is gone).
    pub fn directory_status(&self) -> Vec<crate::DirectoryStatus> {
        let nodes = self.inner.nodes.read();
        let mut out: Vec<crate::DirectoryStatus> = nodes
            .values()
            .filter(|h| !h.shared.shutdown.load(Ordering::Relaxed))
            .filter_map(|h| h.shared.dir_host.as_ref().map(|host| host.status()))
            .collect();
        out.sort_by_key(|s| s.node);
        out
    }

    // ------------------------------------------------------------ telemetry

    /// Runtime counters of one node.
    pub fn node_stats(&self, phys: NodeId) -> Option<NodeStats> {
        let nodes = self.inner.nodes.read();
        let h = nodes.get(&phys)?;
        let s = &h.shared.stats;
        let objects_hosted = h.shared.objects.lock().len();
        Some(NodeStats {
            invocations: s.invocations.load(Ordering::Relaxed),
            creations: s.creations.load(Ordering::Relaxed),
            migrations_in: s.migrations_in.load(Ordering::Relaxed),
            migrations_out: s.migrations_out.load(Ordering::Relaxed),
            artifact_bytes: s.artifact_bytes.load(Ordering::Relaxed),
            stores: s.stores.load(Ordering::Relaxed),
            objects_hosted,
            monitor_rounds: h.shared.na.rounds.load(Ordering::Relaxed),
            transient_workers: h.shared.workers.transient_spawns(),
        })
    }

    /// The latest NA snapshot of a node (None before the first round).
    pub fn latest_snapshot(&self, phys: NodeId) -> Option<SysSnapshot> {
        self.inner
            .nodes
            .read()
            .get(&phys)?
            .shared
            .na
            .latest
            .lock()
            .clone()
    }

    /// A manager-side aggregate computed by the NAS, by component label
    /// (e.g. `"vc0"` for the first cluster).
    pub fn aggregated_snapshot(&self, manager: NodeId, label: &str) -> Option<SysSnapshot> {
        self.inner
            .nodes
            .read()
            .get(&manager)?
            .shared
            .na
            .aggregated
            .lock()
            .get(label)
            .cloned()
    }

    /// Artifacts currently loaded on a node.
    pub fn loaded_artifacts(&self, phys: NodeId) -> Vec<String> {
        self.inner
            .nodes
            .read()
            .get(&phys)
            .map(|h| {
                let mut v: Vec<String> = h.shared.loaded.lock().iter().cloned().collect();
                v.sort();
                v
            })
            .unwrap_or_default()
    }

    /// Network traffic counters.
    pub fn net_stats(&self) -> jsym_net::NetStatsSnapshot {
        self.inner.network.stats()
    }

    /// Delivery-plane hot-path contention counters (stripe-lock waits,
    /// endpoint-cache hit/miss) — see [`jsym_net::NetHotStats`].
    pub fn net_hot_stats(&self) -> jsym_net::NetHotStats {
        self.inner.network.hot_stats()
    }

    /// The deployment's structural event log (creations, migrations,
    /// classloading, persistence, failures, recovery).
    pub fn events(&self) -> &crate::EventLog {
        &self.inner.events
    }

    /// The deployment-scoped observability registry: metrics and span
    /// tracer for every node, the network and the protocol machinery.
    pub fn obs(&self) -> &jsym_obs::ObsRegistry {
        &self.inner.obs
    }

    /// Per-endpoint network traffic counters (sent/delivered/dropped/
    /// rejected), ascending by node id.
    pub fn endpoint_stats(&self) -> Vec<jsym_net::EndpointStatsSnapshot> {
        self.inner.network.endpoint_stats()
    }

    #[allow(dead_code)]
    pub(crate) fn inner(&self) -> &Arc<DeploymentInner> {
        &self.inner
    }

    /// Stops every runtime thread and the network. Idempotent; also runs on
    /// drop of the last clone.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        for handle in self.inner.nodes.read().values() {
            handle.shared.shutdown.store(true, Ordering::Relaxed);
            handle.shared.calls.fail_all(JsError::ShuttingDown);
        }
        // Join node threads.
        let mut nodes = std::mem::take(&mut *self.inner.nodes.write());
        for (_, handle) in nodes.drain() {
            for t in handle.threads {
                let _ = t.join();
            }
        }
        let mut threads = std::mem::take(&mut *self.inner.threads.lock());
        for t in threads.drain(..) {
            let _ = t.join();
        }
        self.inner.network.shutdown();
        // Last: the executor joins its workers and drops every pending
        // task (each holds an `Arc<NodeShared>` keeping its runtime alive).
        if let Some(e) = &self.inner.exec {
            e.shutdown();
        }
    }

    /// Worker threads of the work-stealing executor (`0` = threaded mode).
    pub fn executor_threads(&self) -> usize {
        self.inner.exec.as_ref().map(|e| e.threads()).unwrap_or(0)
    }

    /// Point-in-time executor counters (`None` in threaded mode).
    pub fn exec_stats(&self) -> Option<jsym_exec::ExecStats> {
        self.inner.exec.as_ref().map(|e| e.stats())
    }
}

/// Body of the `jsym-dir-roles` thread: forwards every vda manager change
/// to the directory as a `SetRole` proposal through any live node runtime.
fn run_role_mirror(
    weak: std::sync::Weak<DeploymentInner>,
    rx: crossbeam::channel::Receiver<jsym_vda::VdaEvent>,
) {
    use crossbeam::channel::RecvTimeoutError;
    loop {
        let ev = match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(ev) => ev,
            Err(RecvTimeoutError::Timeout) => {
                match weak.upgrade() {
                    Some(inner) if !inner.shutdown.load(Ordering::Relaxed) => continue,
                    _ => return,
                };
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let jsym_vda::VdaEvent::ManagerChanged {
            scope, new_manager, ..
        } = ev
        else {
            continue;
        };
        let Some(inner) = weak.upgrade() else { return };
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let manager = new_manager.map(|nk| inner.vda.node_handle(nk).phys().0);
        let cmd = jsym_dir::DirCommand::SetRole {
            scope: crate::dir::scope_key(scope),
            manager,
            backup: None,
        };
        // Propose through any node runtime that is still up; a directory
        // quorum behind it handles replica deaths.
        let shared = inner
            .nodes
            .read()
            .values()
            .filter(|h| !h.shared.shutdown.load(Ordering::Relaxed))
            .map(|h| Arc::clone(&h.shared))
            .min_by_key(|s| s.phys);
        drop(inner);
        if let Some(s) = shared {
            let _ = crate::dir::propose(&s, &cmd);
        }
    }
}

impl Drop for DeploymentInner {
    fn drop(&mut self) {
        // Last clone gone without an explicit shutdown: stop threads without
        // joining (joining from drop of the map they reference is fine here
        // because we own everything now).
        self.shutdown.store(true, Ordering::SeqCst);
        for handle in self.nodes.read().values() {
            handle.shared.shutdown.store(true, Ordering::Relaxed);
        }
        self.network.shutdown();
        if let Some(e) = &self.exec {
            e.shutdown();
        }
    }
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("machines", &self.inner.pool.len())
            .field("apps", &self.inner.apps.read().len())
            .finish()
    }
}
