//! `JSObj` — the programmer-facing distributed object (paper §4.4–§4.7).

use crate::appoa::{pick_least_loaded, AppShared};
use crate::error::JsError;
use crate::ids::{ObjectHandle, ObjectId};
use crate::registration::JsRegistration;
use crate::value::Value;
use crate::{Result, ResultHandle};
use jsym_net::NodeId;
use jsym_sysmon::JsConstraints;
use std::sync::Arc;

/// Where to create an object (the optional second parameter of the paper's
/// `new JSObj(...)`).
#[derive(Clone, Copy, Debug, Default)]
pub enum Placement<'a> {
    /// Let the runtime pick a node with the smallest system load.
    #[default]
    Auto,
    /// On the node where the application executes (`JS.getLocalNode()`).
    Local,
    /// On a specific physical machine.
    OnPhys(NodeId),
    /// On a specific virtual node.
    OnNode(&'a jsym_vda::Node),
    /// On a node of this cluster chosen by the runtime (or constraints).
    InCluster(&'a jsym_vda::Cluster),
    /// On a node of this site chosen by the runtime (or constraints).
    InSite(&'a jsym_vda::Site),
    /// On a node of this domain chosen by the runtime (or constraints).
    InDomain(&'a jsym_vda::Domain),
    /// On the same node where another object currently resides
    /// (`new JSObj("C", obj2.getNode())`).
    WithObject(&'a JsObj),
}

/// Where to migrate an object (paper §4.6).
#[derive(Clone, Copy, Debug)]
pub enum MigrateTarget<'a> {
    /// Let the runtime pick the least-loaded other node.
    Auto,
    /// A specific physical machine.
    ToPhys(NodeId),
    /// A specific virtual node.
    ToNode(&'a jsym_vda::Node),
    /// A node of this cluster chosen by the runtime.
    ToCluster(&'a jsym_vda::Cluster),
    /// A node of this site chosen by the runtime.
    ToSite(&'a jsym_vda::Site),
    /// A node of this domain chosen by the runtime.
    ToDomain(&'a jsym_vda::Domain),
}

/// The architecture component an object was placed into at creation —
/// what the paper's `obj.getNode()/getCluster()/getSite()/getDomain()`
/// return for co-location purposes.
#[derive(Clone, Debug)]
pub enum PlacedIn {
    /// Placed on a specific machine (Auto/Local/OnPhys/OnNode/WithObject).
    Node(NodeId),
    /// Placed somewhere inside this cluster.
    Cluster(jsym_vda::Cluster),
    /// Placed somewhere inside this site.
    Site(jsym_vda::Site),
    /// Placed somewhere inside this domain.
    Domain(jsym_vda::Domain),
}

/// A handle to a distributed object created by this application.
///
/// Cloning shares the same remote object.
#[derive(Clone)]
pub struct JsObj {
    app: Arc<AppShared>,
    id: ObjectId,
    class: String,
    placed_in: PlacedIn,
}

impl JsObj {
    /// `new JSObj(class [, placement] [, constraints])` — creates an object
    /// of `class` (whose code must be available on the target node, §4.3).
    pub fn create(
        reg: &JsRegistration,
        class: &str,
        args: &[Value],
        placement: Placement<'_>,
        constraints: Option<&JsConstraints>,
    ) -> Result<JsObj> {
        let app = reg.app();
        let target = resolve_placement(&app, placement, constraints)?;
        let placed_in = match placement {
            Placement::InCluster(c) => PlacedIn::Cluster((*c).clone()),
            Placement::InSite(s) => PlacedIn::Site((*s).clone()),
            Placement::InDomain(d) => PlacedIn::Domain((*d).clone()),
            Placement::WithObject(o) => o.placed_in.clone(),
            _ => PlacedIn::Node(target),
        };
        let id = app.create_object(class, args, target)?;
        Ok(JsObj {
            app,
            id,
            class: class.to_owned(),
            placed_in,
        })
    }

    pub(crate) fn from_parts_at(
        app: Arc<AppShared>,
        id: ObjectId,
        class: String,
        node: NodeId,
    ) -> JsObj {
        JsObj {
            app,
            id,
            class,
            placed_in: PlacedIn::Node(node),
        }
    }

    /// This object's id.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The class this object was created from.
    pub fn class_name(&self) -> &str {
        &self.class
    }

    /// The first-order handle, passable to other objects' methods as
    /// [`Value::Handle`].
    pub fn handle(&self) -> ObjectHandle {
        self.app.handle_for(self.id)
    }

    /// The component this object was placed into at creation — the paper's
    /// `obj.getNode()/getCluster()/getSite()/getDomain()`, used to create
    /// further objects close to this one at a chosen granularity:
    ///
    /// ```ignore
    /// // new JSObj("class_name", obj2.getCluster()):
    /// if let PlacedIn::Cluster(c) = obj2.placed_in() {
    ///     JsObj::create(&reg, "class_name", &[], Placement::InCluster(&c), None)?;
    /// }
    /// ```
    pub fn placed_in(&self) -> PlacedIn {
        self.placed_in.clone()
    }

    /// The machine the object currently lives on.
    pub fn get_location(&self) -> Result<NodeId> {
        self.app
            .location_of(self.id)
            .ok_or(JsError::NoSuchObject(self.id))
    }

    /// Host name of the machine the object currently lives on.
    pub fn get_node_name(&self) -> Result<String> {
        let loc = self.get_location()?;
        Ok(self.app.pool.machine(loc)?.spec().name.clone())
    }

    /// `sinvoke` — synchronous (blocking) method invocation (§4.5).
    pub fn sinvoke(&self, method: &str, args: &[Value]) -> Result<Value> {
        self.app.sinvoke(self.id, method, args)
    }

    /// `ainvoke` — asynchronous invocation; returns a handle whose
    /// `is_ready`/`get_result` mirror the paper's API.
    pub fn ainvoke(&self, method: &str, args: &[Value]) -> Result<ResultHandle> {
        self.app.ainvoke(self.id, method, args)
    }

    /// `oinvoke` — one-sided invocation: no result, no completion wait.
    pub fn oinvoke(&self, method: &str, args: &[Value]) -> Result<()> {
        self.app.oinvoke(self.id, method, args)
    }

    /// `migrate()` / `migrate(constr)` / `migrate(node|cluster|site|domain
    /// [, constr])` — moves the object (§4.6). Blocks until the migration
    /// protocol confirms; returns the destination machine.
    pub fn migrate(
        &self,
        target: MigrateTarget<'_>,
        constraints: Option<&JsConstraints>,
    ) -> Result<NodeId> {
        let current = self.get_location()?;
        let dst = resolve_migrate_target(&self.app, current, target, constraints)?;
        self.app.migrate_object(self.id, dst)?;
        Ok(dst)
    }

    /// `obj.store([key])` — persists the object's state; returns the key
    /// (§4.7). The object keeps running afterwards.
    pub fn store(&self, key: Option<&str>) -> Result<String> {
        self.app.store_object(self.id, key)
    }

    /// `obj.free()` — releases the object (§4.4).
    pub fn free(&self) -> Result<()> {
        self.app.free_object(self.id)
    }
}

impl std::fmt::Debug for JsObj {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JsObj({} : {})", self.id, self.class)
    }
}

impl PartialEq for JsObj {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl Eq for JsObj {}

/// Resolves a placement to a physical machine.
pub(crate) fn resolve_placement(
    app: &Arc<AppShared>,
    placement: Placement<'_>,
    constraints: Option<&JsConstraints>,
) -> Result<NodeId> {
    let candidates: Vec<NodeId> = match placement {
        Placement::Auto => app
            .pool
            .ids()
            .into_iter()
            .filter(|&id| !app.vda.is_failed(id))
            .collect(),
        Placement::Local => return check_fixed(app, app.home, constraints),
        Placement::OnPhys(n) => return check_fixed(app, n, constraints),
        Placement::OnNode(n) => return check_fixed(app, n.phys(), constraints),
        Placement::InCluster(c) => c.machines(),
        Placement::InSite(s) => s.machines(),
        Placement::InDomain(d) => d.machines(),
        Placement::WithObject(o) => return o.get_location(),
    };
    if candidates.is_empty() {
        return Err(JsError::PlacementFailed("component has no nodes".into()));
    }
    pick_least_loaded(&app.pool, &candidates, constraints)
}

fn check_fixed(
    app: &Arc<AppShared>,
    node: NodeId,
    constraints: Option<&JsConstraints>,
) -> Result<NodeId> {
    if let Some(c) = constraints {
        let snap = app.pool.snapshot_of(node)?;
        if !c.holds(&snap) {
            return Err(JsError::PlacementFailed(format!(
                "node {node} does not satisfy the constraints"
            )));
        }
    }
    Ok(node)
}

fn resolve_migrate_target(
    app: &Arc<AppShared>,
    current: NodeId,
    target: MigrateTarget<'_>,
    constraints: Option<&JsConstraints>,
) -> Result<NodeId> {
    let candidates: Vec<NodeId> = match target {
        MigrateTarget::Auto => app
            .pool
            .ids()
            .into_iter()
            .filter(|&id| id != current && !app.vda.is_failed(id))
            .collect(),
        MigrateTarget::ToPhys(n) => return Ok(n),
        MigrateTarget::ToNode(n) => return Ok(n.phys()),
        MigrateTarget::ToCluster(c) => c.machines(),
        MigrateTarget::ToSite(s) => s.machines(),
        MigrateTarget::ToDomain(d) => d.machines(),
    };
    // Prefer moving off the current node when the component has others.
    let filtered: Vec<NodeId> = candidates
        .iter()
        .copied()
        .filter(|&n| n != current)
        .collect();
    let pool = if filtered.is_empty() {
        candidates
    } else {
        filtered
    };
    if pool.is_empty() {
        return Err(JsError::PlacementFailed("no migration target".into()));
    }
    pick_least_loaded(&app.pool, &pool, constraints)
}
