//! Runtime event log.
//!
//! The paper's JS-Shell is the administrator's window into the running
//! system; this log gives it (and tests, and downstream users) a time-stamped
//! record of the runtime's *structural* events — object lifecycle, migration,
//! classloading, persistence, failures and recovery. Per-invocation traffic
//! is deliberately not logged (it is counted in [`crate::NodeStats`]); the
//! log captures the events one would grep for when debugging placement.

use crate::ids::ObjectId;
use jsym_net::{NodeId, VirtTime};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// A structural runtime event.
#[derive(Clone, Debug, PartialEq)]
pub enum RuntimeEvent {
    /// An object was created on a node.
    ObjectCreated {
        /// The object.
        obj: ObjectId,
        /// Its class.
        class: String,
        /// Hosting node.
        node: NodeId,
    },
    /// An object was freed.
    ObjectFreed {
        /// The object.
        obj: ObjectId,
        /// The node it was freed on.
        node: NodeId,
    },
    /// An object migrated between nodes.
    Migrated {
        /// The object.
        obj: ObjectId,
        /// Source node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
        /// Serialized state size in bytes.
        state_bytes: usize,
    },
    /// A codebase artifact was installed on a node.
    ArtifactLoaded {
        /// Artifact name.
        name: String,
        /// The node.
        node: NodeId,
        /// Size in bytes.
        bytes: usize,
    },
    /// An object was persisted.
    ObjectStored {
        /// The object.
        obj: ObjectId,
        /// Its persistence key.
        key: String,
    },
    /// An object was re-created from stored state.
    ObjectRestored {
        /// The (new or original) object id.
        obj: ObjectId,
        /// The node it was restored on.
        node: NodeId,
    },
    /// The NAS declared a node failed.
    NodeFailed {
        /// The failed node.
        node: NodeId,
    },
    /// Failure recovery resurrected an object from its checkpoint.
    Recovered {
        /// The object.
        obj: ObjectId,
        /// The dead node it lived on.
        from: NodeId,
        /// The surviving node it was restored to.
        to: NodeId,
    },
    /// An automatic-migration round moved objects off violating nodes.
    AutoMigrationRound {
        /// Number of objects moved.
        migrated: usize,
    },
}

impl RuntimeEvent {
    /// Stable span name for this event kind (`event.*` taxonomy).
    pub fn kind(&self) -> &'static str {
        match self {
            RuntimeEvent::ObjectCreated { .. } => "event.object_created",
            RuntimeEvent::ObjectFreed { .. } => "event.object_freed",
            RuntimeEvent::Migrated { .. } => "event.migrated",
            RuntimeEvent::ArtifactLoaded { .. } => "event.artifact_loaded",
            RuntimeEvent::ObjectStored { .. } => "event.object_stored",
            RuntimeEvent::ObjectRestored { .. } => "event.object_restored",
            RuntimeEvent::NodeFailed { .. } => "event.node_failed",
            RuntimeEvent::Recovered { .. } => "event.recovered",
            RuntimeEvent::AutoMigrationRound { .. } => "event.automigration_round",
        }
    }

    /// The node this event is attributed to, if any.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            RuntimeEvent::ObjectCreated { node, .. }
            | RuntimeEvent::ObjectFreed { node, .. }
            | RuntimeEvent::ArtifactLoaded { node, .. }
            | RuntimeEvent::ObjectRestored { node, .. }
            | RuntimeEvent::NodeFailed { node } => Some(*node),
            RuntimeEvent::Migrated { from, .. } => Some(*from),
            RuntimeEvent::Recovered { to, .. } => Some(*to),
            RuntimeEvent::ObjectStored { .. } | RuntimeEvent::AutoMigrationRound { .. } => None,
        }
    }
}

impl fmt::Display for RuntimeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeEvent::ObjectCreated { obj, class, node } => {
                write!(f, "created {obj} ({class}) on {node}")
            }
            RuntimeEvent::ObjectFreed { obj, node } => write!(f, "freed {obj} on {node}"),
            RuntimeEvent::Migrated {
                obj,
                from,
                to,
                state_bytes,
            } => write!(f, "migrated {obj} {from} -> {to} ({state_bytes} B)"),
            RuntimeEvent::ArtifactLoaded { name, node, bytes } => {
                write!(f, "loaded {name} ({bytes} B) on {node}")
            }
            RuntimeEvent::ObjectStored { obj, key } => write!(f, "stored {obj} as {key:?}"),
            RuntimeEvent::ObjectRestored { obj, node } => {
                write!(f, "restored {obj} on {node}")
            }
            RuntimeEvent::NodeFailed { node } => write!(f, "node {node} FAILED"),
            RuntimeEvent::Recovered { obj, from, to } => {
                write!(f, "recovered {obj} from dead {from} onto {to}")
            }
            RuntimeEvent::AutoMigrationRound { migrated } => {
                write!(f, "auto-migration moved {migrated} object(s)")
            }
        }
    }
}

/// Bounded, shared event log. Cloning shares the log.
///
/// When built with [`EventLog::with_tracer`], every recorded event is
/// mirrored into the span tracer as an instant `event.*` span, so the
/// structured trace subsumes this log.
#[derive(Clone)]
pub struct EventLog {
    inner: Arc<Mutex<VecDeque<(VirtTime, RuntimeEvent)>>>,
    capacity: usize,
    tracer: jsym_obs::Tracer,
}

impl EventLog {
    /// A log keeping the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self::with_tracer(capacity, jsym_obs::Tracer::disabled())
    }

    /// A log that additionally mirrors every event into `tracer` as an
    /// instant span named by [`RuntimeEvent::kind`].
    pub fn with_tracer(capacity: usize, tracer: jsym_obs::Tracer) -> Self {
        EventLog {
            inner: Arc::new(Mutex::new(VecDeque::with_capacity(capacity.min(1024)))),
            capacity: capacity.max(1),
            tracer,
        }
    }

    /// Appends an event at virtual time `at`.
    pub fn record(&self, at: VirtTime, event: RuntimeEvent) {
        if self.tracer.is_enabled() {
            let mut span = self.tracer.span(event.kind(), at).attr("detail", &event);
            if let Some(node) = event.node() {
                span = span.node(node.0);
            }
            span.finish(at);
        }
        let mut q = self.inner.lock();
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back((at, event));
    }

    /// The most recent `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<(VirtTime, RuntimeEvent)> {
        let q = self.inner.lock();
        q.iter().rev().take(n).rev().cloned().collect()
    }

    /// All events, oldest first.
    pub fn all(&self) -> Vec<(VirtTime, RuntimeEvent)> {
        self.inner.lock().iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Drops all retained events.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }
}

impl Default for EventLog {
    /// Keeps the latest 4096 events.
    fn default() -> Self {
        EventLog::new(4096)
    }
}

impl fmt::Debug for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EventLog({} events)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_tails_in_order() {
        let log = EventLog::new(10);
        for i in 0..5 {
            log.record(i as f64, RuntimeEvent::NodeFailed { node: NodeId(i) });
        }
        let tail = log.tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].0, 3.0);
        assert_eq!(tail[1].0, 4.0);
        assert_eq!(log.all().len(), 5);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let log = EventLog::new(3);
        for i in 0..7u32 {
            log.record(
                i as f64,
                RuntimeEvent::ObjectFreed {
                    obj: ObjectId(i as u64),
                    node: NodeId(0),
                },
            );
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.all()[0].0, 4.0);
    }

    #[test]
    fn display_is_readable() {
        let e = RuntimeEvent::Migrated {
            obj: ObjectId(7),
            from: NodeId(1),
            to: NodeId(2),
            state_bytes: 1024,
        };
        assert_eq!(e.to_string(), "migrated obj7 n1 -> n2 (1024 B)");
        assert_eq!(
            RuntimeEvent::NodeFailed { node: NodeId(3) }.to_string(),
            "node n3 FAILED"
        );
    }

    #[test]
    fn clear_empties() {
        let log = EventLog::default();
        log.record(0.0, RuntimeEvent::NodeFailed { node: NodeId(0) });
        assert!(!log.is_empty());
        log.clear();
        assert!(log.is_empty());
    }
}
