//! Runtime errors.

use crate::ids::ObjectId;
use jsym_net::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors surfaced by the JavaSymphony runtime.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum JsError {
    /// The class is not registered with the class registry.
    UnknownClass(String),
    /// The class's code has not been loaded onto the target node — the
    /// selective-classloading precondition (paper §4.3) was violated.
    ClassNotLoaded {
        /// The class being instantiated or restored.
        class: String,
        /// The node missing the code.
        node: NodeId,
    },
    /// The object does not exist (never created, or already freed).
    NoSuchObject(ObjectId),
    /// The object is not (or no longer) on the node the message reached;
    /// carries the authoritative location if the replier knows it.
    ObjectMoved(ObjectId),
    /// The invoked method does not exist on the object.
    NoSuchMethod {
        /// The object's class.
        class: String,
        /// The missing method.
        method: String,
    },
    /// A method was called with the wrong arguments.
    BadArguments(String),
    /// A method implementation failed.
    MethodFailed(String),
    /// The target node is dead or unreachable.
    NodeUnreachable(NodeId),
    /// A request timed out waiting for its reply.
    Timeout,
    /// The result of this handle was already consumed.
    ResultConsumed,
    /// Object state (de)serialization failed.
    Serialization(String),
    /// No stored object under this persistence key.
    NoSuchStoredObject(String),
    /// A virtual-architecture operation failed.
    Vda(String),
    /// The application has unregistered; its agent no longer accepts work.
    AppUnregistered,
    /// No node satisfied the placement request (constraints, empty component).
    PlacementFailed(String),
    /// The deployment is shutting down.
    ShuttingDown,
    /// The directory replica addressed is not the leader; carries the
    /// replica's best guess at who is.
    DirRedirect {
        /// Physical id of the suspected leader, if the replica knows one.
        hint: Option<u32>,
    },
}

impl fmt::Display for JsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsError::UnknownClass(c) => write!(f, "class {c:?} is not registered"),
            JsError::ClassNotLoaded { class, node } => {
                write!(f, "class {class:?} is not loaded on node {node}")
            }
            JsError::NoSuchObject(id) => write!(f, "object {id} does not exist"),
            JsError::ObjectMoved(id) => write!(f, "object {id} has moved"),
            JsError::NoSuchMethod { class, method } => {
                write!(f, "class {class:?} has no method {method:?}")
            }
            JsError::BadArguments(m) => write!(f, "bad arguments: {m}"),
            JsError::MethodFailed(m) => write!(f, "method failed: {m}"),
            JsError::NodeUnreachable(n) => write!(f, "node {n} is unreachable"),
            JsError::Timeout => write!(f, "request timed out"),
            JsError::ResultConsumed => write!(f, "result already consumed"),
            JsError::Serialization(m) => write!(f, "serialization failed: {m}"),
            JsError::NoSuchStoredObject(k) => write!(f, "no stored object under key {k:?}"),
            JsError::Vda(m) => write!(f, "virtual architecture error: {m}"),
            JsError::AppUnregistered => write!(f, "application has unregistered"),
            JsError::PlacementFailed(m) => write!(f, "placement failed: {m}"),
            JsError::ShuttingDown => write!(f, "deployment is shutting down"),
            JsError::DirRedirect { hint: Some(n) } => {
                write!(f, "not the directory leader (try node {n})")
            }
            JsError::DirRedirect { hint: None } => {
                write!(f, "not the directory leader (leader unknown)")
            }
        }
    }
}

impl std::error::Error for JsError {}

impl From<jsym_vda::VdaError> for JsError {
    fn from(e: jsym_vda::VdaError) -> Self {
        JsError::Vda(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_interesting_cases() {
        assert_eq!(
            JsError::UnknownClass("Matrix".into()).to_string(),
            "class \"Matrix\" is not registered"
        );
        assert_eq!(
            JsError::ClassNotLoaded {
                class: "Matrix".into(),
                node: NodeId(2)
            }
            .to_string(),
            "class \"Matrix\" is not loaded on node n2"
        );
        assert_eq!(
            JsError::NoSuchObject(ObjectId(7)).to_string(),
            "object obj7 does not exist"
        );
    }

    #[test]
    fn vda_errors_convert() {
        let e: JsError = jsym_vda::VdaError::ConstraintsUnsatisfied.into();
        assert!(matches!(e, JsError::Vda(_)));
    }
}
