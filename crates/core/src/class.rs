//! Distributed classes and the class registry.
//!
//! Java loads byte-code at runtime; Rust cannot. The observable behaviour of
//! JavaSymphony's class machinery is (a) objects are instantiated *by class
//! name* on remote nodes, (b) instantiation requires the class's code to be
//! present there (selective classloading, §4.3), and (c) object state can be
//! serialized for migration and persistence. All three are reproduced by the
//! [`ClassRegistry`]: classes register a constructor and a restore function,
//! plus the name of the codebase artifact that carries their "byte-code".

use crate::error::JsError;
use crate::ids::ObjectHandle;
use crate::intern::Sym;
use crate::value::Value;
use crate::Result;
use jsym_net::{NodeId, VirtTime};
use jsym_sysmon::SimMachine;
use parking_lot::RwLock;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;

/// Ability to invoke methods on remote objects from inside a method body
/// (nested RMI). Implemented by the node runtime.
pub trait ObjectCaller: Send + Sync {
    /// Synchronously invokes `method` on the object behind `handle`.
    fn call(&self, handle: ObjectHandle, method: &str, args: &[Value]) -> Result<Value>;
}

/// A caller that rejects nested invocations; used in unit tests and during
/// restore paths where no runtime is attached.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) struct NoCaller;

impl ObjectCaller for NoCaller {
    fn call(&self, handle: ObjectHandle, _method: &str, _args: &[Value]) -> Result<Value> {
        Err(JsError::NoSuchObject(handle.id))
    }
}

/// Execution context handed to every method invocation.
///
/// Methods express computational cost through [`InvokeCtx::compute`]; the
/// simulated machine turns it into (scaled) time at the node's effective
/// speed, including background load and CPU contention.
pub struct InvokeCtx<'a> {
    machine: &'a SimMachine,
    node: NodeId,
    caller: &'a dyn ObjectCaller,
}

impl<'a> InvokeCtx<'a> {
    pub(crate) fn new(machine: &'a SimMachine, node: NodeId, caller: &'a dyn ObjectCaller) -> Self {
        InvokeCtx {
            machine,
            node,
            caller,
        }
    }

    /// Executes `flops` of modeled work on the hosting node.
    ///
    /// Modeled work sleeps real time (scaled); on the work-stealing
    /// executor that would pin a worker, so it is declared blocking and the
    /// pool compensates with a spare. Plain-thread mode is a passthrough.
    pub fn compute(&self, flops: f64) {
        jsym_exec::blocking(|| self.machine.compute(flops));
    }

    /// The node this method executes on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Host name of the executing node.
    pub fn node_name(&self) -> &str {
        &self.machine.spec().name
    }

    /// Current virtual time.
    pub fn now(&self) -> VirtTime {
        self.machine.clock().now()
    }

    /// The simulated machine executing this method.
    pub fn machine(&self) -> &SimMachine {
        self.machine
    }

    /// Nested synchronous invocation on another object (handles are
    /// first-order and may point anywhere in the system).
    pub fn invoke(&self, handle: ObjectHandle, method: &str, args: &[Value]) -> Result<Value> {
        self.caller.call(handle, method, args)
    }
}

/// A distributed object implementation — the Rust analogue of a Java class
/// whose instances JavaSymphony creates remotely.
///
/// Implementations must be `Send` (instances move between executor threads
/// and nodes) and should be serializable; [`ClassRegistry::register_class`]
/// wires serde-based snapshot/restore automatically.
pub trait JsClass: Send {
    /// The class name this instance was registered under.
    fn class_name(&self) -> &str;

    /// Dispatches a method by name (the paper's reflective `sinvoke`
    /// target). Implementations should call `ctx.compute(..)` to account for
    /// their computational cost.
    fn invoke(&mut self, method: &str, args: &[Value], ctx: &mut InvokeCtx<'_>) -> Result<Value>;

    /// Serializes the object's state for migration and persistence.
    fn snapshot(&self) -> Result<Vec<u8>>;
}

type Ctor = dyn Fn(&[Value]) -> Result<Box<dyn JsClass>> + Send + Sync;
type Restore = dyn Fn(&[u8]) -> Result<Box<dyn JsClass>> + Send + Sync;
type StaticCtor = dyn Fn() -> Result<Box<dyn JsClass>> + Send + Sync;

#[derive(Clone)]
struct ClassDef {
    artifact: Option<String>,
    ctor: Arc<Ctor>,
    restore: Arc<Restore>,
    /// Constructor of the class's *static context* — one instance per node,
    /// holding the class's static variables (paper §7 future work,
    /// implemented here).
    static_ctor: Option<Arc<StaticCtor>>,
}

/// The deployment-wide registry of distributed classes.
///
/// Cloning shares the registry. Internally keyed by interned [`Sym`]s: the
/// public `&str` API interns once on entry (class registration and
/// app-facing lookups), while the dispatch hot path in the PubOA uses the
/// `*_sym` variants and never hashes a string.
#[derive(Clone)]
pub struct ClassRegistry {
    map: Arc<RwLock<HashMap<Sym, ClassDef>>>,
}

impl ClassRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ClassRegistry {
            map: Arc::new(RwLock::new(HashMap::new())),
        }
    }

    fn def(&self, class: Sym) -> Result<ClassDef> {
        self.map
            .read()
            .get(&class)
            .cloned()
            .ok_or_else(|| JsError::UnknownClass(class.as_str().to_owned()))
    }

    /// Registers a class with explicit constructor and restore functions.
    ///
    /// `artifact` names the codebase artifact carrying this class's
    /// byte-code; `None` marks a system class that is preloaded everywhere.
    /// Registration is where the class name enters the symbol table (the
    /// paper's registration broadcast syncing node-local name tables).
    pub fn register_raw(
        &self,
        name: &str,
        artifact: Option<&str>,
        ctor: impl Fn(&[Value]) -> Result<Box<dyn JsClass>> + Send + Sync + 'static,
        restore: impl Fn(&[u8]) -> Result<Box<dyn JsClass>> + Send + Sync + 'static,
    ) {
        self.map.write().insert(
            Sym::intern(name),
            ClassDef {
                artifact: artifact.map(str::to_owned),
                ctor: Arc::new(ctor),
                restore: Arc::new(restore),
                static_ctor: None,
            },
        );
    }

    /// Declares the class's static context: a per-node singleton holding the
    /// class's static variables and answering its static methods. The class
    /// must already be registered.
    pub fn set_static<F>(&self, name: &str, ctor: F) -> Result<()>
    where
        F: Fn() -> Result<Box<dyn JsClass>> + Send + Sync + 'static,
    {
        let mut map = self.map.write();
        let def = map
            .get_mut(&Sym::intern(name))
            .ok_or_else(|| JsError::UnknownClass(name.to_owned()))?;
        def.static_ctor = Some(Arc::new(ctor));
        Ok(())
    }

    /// Instantiates the class's static context (one per node, created
    /// lazily by the PubOA on first static invocation).
    pub fn create_static(&self, name: &str) -> Result<Box<dyn JsClass>> {
        self.create_static_sym(Sym::intern(name))
    }

    pub(crate) fn create_static_sym(&self, class: Sym) -> Result<Box<dyn JsClass>> {
        match self.def(class)?.static_ctor {
            Some(ctor) => ctor(),
            None => Err(JsError::NoSuchMethod {
                class: class.as_str().to_owned(),
                method: "<static context>".to_owned(),
            }),
        }
    }

    /// Whether the class declares a static context.
    pub fn has_static(&self, name: &str) -> bool {
        self.has_static_sym(Sym::intern(name))
    }

    pub(crate) fn has_static_sym(&self, class: Sym) -> bool {
        self.map
            .read()
            .get(&class)
            .is_some_and(|d| d.static_ctor.is_some())
    }

    /// Registers a serde-serializable class: `ctor` builds an instance from
    /// constructor arguments; restore is derived from `Deserialize`.
    pub fn register_class<T, C>(&self, name: &str, artifact: Option<&str>, ctor: C)
    where
        T: JsClass + Serialize + DeserializeOwned + 'static,
        C: Fn(&[Value]) -> Result<T> + Send + Sync + 'static,
    {
        self.register_raw(
            name,
            artifact,
            move |args| Ok(Box::new(ctor(args)?) as Box<dyn JsClass>),
            |bytes| {
                let v: T = serde_json::from_slice(bytes)
                    .map_err(|e| JsError::Serialization(e.to_string()))?;
                Ok(Box::new(v) as Box<dyn JsClass>)
            },
        );
    }

    /// Instantiates a class from constructor arguments.
    pub fn create(&self, name: &str, args: &[Value]) -> Result<Box<dyn JsClass>> {
        self.create_sym(Sym::intern(name), args)
    }

    pub(crate) fn create_sym(&self, class: Sym, args: &[Value]) -> Result<Box<dyn JsClass>> {
        (self.def(class)?.ctor)(args)
    }

    /// Reconstructs an instance from a state snapshot (migration arrival,
    /// persistent load).
    pub fn restore(&self, name: &str, bytes: &[u8]) -> Result<Box<dyn JsClass>> {
        self.restore_sym(Sym::intern(name), bytes)
    }

    pub(crate) fn restore_sym(&self, class: Sym, bytes: &[u8]) -> Result<Box<dyn JsClass>> {
        (self.def(class)?.restore)(bytes)
    }

    /// The artifact carrying this class, or `None` for preloaded classes.
    pub fn artifact_of(&self, name: &str) -> Result<Option<String>> {
        self.artifact_of_sym(Sym::intern(name))
    }

    pub(crate) fn artifact_of_sym(&self, class: Sym) -> Result<Option<String>> {
        self.map
            .read()
            .get(&class)
            .map(|d| d.artifact.clone())
            .ok_or_else(|| JsError::UnknownClass(class.as_str().to_owned()))
    }

    /// Whether the class is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.contains_sym(Sym::intern(name))
    }

    pub(crate) fn contains_sym(&self, class: Sym) -> bool {
        self.map.read().contains_key(&class)
    }

    /// Names of all registered classes (sorted; for diagnostics).
    pub fn class_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .map
            .read()
            .keys()
            .map(|s| s.as_str().to_owned())
            .collect();
        v.sort();
        v
    }
}

impl Default for ClassRegistry {
    fn default() -> Self {
        ClassRegistry::new()
    }
}

impl std::fmt::Debug for ClassRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassRegistry")
            .field("classes", &self.map.read().len())
            .finish()
    }
}

/// Serializes a `Serialize` state for [`JsClass::snapshot`] implementations.
pub fn snapshot_state<T: Serialize>(state: &T) -> Result<Vec<u8>> {
    serde_json::to_vec(state).map_err(|e| JsError::Serialization(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{test_ctx_machine, Counter};

    fn registry() -> ClassRegistry {
        let reg = ClassRegistry::new();
        reg.register_class::<Counter, _>("Counter", Some("test.jar"), |args| {
            Ok(Counter::from_args(args))
        });
        reg
    }

    #[test]
    fn create_and_invoke() {
        let reg = registry();
        let mut obj = reg.create("Counter", &[Value::I64(10)]).unwrap();
        assert_eq!(obj.class_name(), "Counter");
        let machine = test_ctx_machine();
        let caller = NoCaller;
        let mut ctx = InvokeCtx::new(&machine, NodeId(0), &caller);
        let v = obj.invoke("add", &[Value::I64(5)], &mut ctx).unwrap();
        assert_eq!(v, Value::I64(15));
        assert_eq!(obj.invoke("get", &[], &mut ctx).unwrap(), Value::I64(15));
    }

    #[test]
    fn unknown_class_and_method() {
        let reg = registry();
        assert!(matches!(
            reg.create("Ghost", &[]),
            Err(JsError::UnknownClass(_))
        ));
        let mut obj = reg.create("Counter", &[]).unwrap();
        let machine = test_ctx_machine();
        let caller = NoCaller;
        let mut ctx = InvokeCtx::new(&machine, NodeId(0), &caller);
        assert!(matches!(
            obj.invoke("fly", &[], &mut ctx),
            Err(JsError::NoSuchMethod { .. })
        ));
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let reg = registry();
        let mut obj = reg.create("Counter", &[Value::I64(3)]).unwrap();
        let machine = test_ctx_machine();
        let caller = NoCaller;
        let mut ctx = InvokeCtx::new(&machine, NodeId(0), &caller);
        obj.invoke("add", &[Value::I64(4)], &mut ctx).unwrap();
        let state = obj.snapshot().unwrap();
        let mut back = reg.restore("Counter", &state).unwrap();
        assert_eq!(back.invoke("get", &[], &mut ctx).unwrap(), Value::I64(7));
    }

    #[test]
    fn restore_garbage_fails_cleanly() {
        let reg = registry();
        assert!(matches!(
            reg.restore("Counter", b"not json"),
            Err(JsError::Serialization(_))
        ));
    }

    #[test]
    fn artifact_mapping() {
        let reg = registry();
        assert_eq!(
            reg.artifact_of("Counter").unwrap().as_deref(),
            Some("test.jar")
        );
        assert!(reg.artifact_of("Ghost").is_err());
        assert!(reg.contains("Counter"));
        assert_eq!(reg.class_names(), vec!["Counter".to_owned()]);
    }

    #[test]
    fn ctx_exposes_node_identity_and_time() {
        let machine = test_ctx_machine();
        let caller = NoCaller;
        let ctx = InvokeCtx::new(&machine, NodeId(4), &caller);
        assert_eq!(ctx.node(), NodeId(4));
        assert_eq!(ctx.node_name(), machine.spec().name);
        assert!(ctx.now() >= 0.0);
    }
}
