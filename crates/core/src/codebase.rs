//! Selective remote classloading (paper §4.3).
//!
//! "Instead of replicating all Java classes to all nodes executing an
//! application, classes may be considered to be loaded only to the nodes
//! that actually need them." A [`JsCodebase`] collects artifacts (the
//! paper's Java archive / class files) and ships them to chosen components
//! of a virtual architecture; object creation on a node fails unless the
//! class's artifact is present there, and per-node memory accounting tracks
//! the footprint — the two observable effects of the Java feature a static
//! language can reproduce.

use crate::appoa::AppShared;
use crate::error::JsError;
use crate::ids::{AgentAddr, IdGen};
use crate::msg::Msg;
use crate::Result;
use jsym_net::NodeId;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;

/// One codebase artifact: a named blob of "byte-code" with a size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Artifact {
    /// Artifact name (e.g. `"classes.jar"`).
    pub name: String,
    /// Size in bytes — what the network transfer and the node's memory
    /// accounting are charged.
    pub bytes: usize,
}

/// A codebase: a set of artifacts that can be loaded onto nodes, clusters,
/// sites or domains.
pub struct JsCodebase {
    app: Arc<AppShared>,
    artifacts: Mutex<Vec<Artifact>>,
    /// (artifact name, node, bytes) successfully loaded, for `free()`.
    loaded_to: Mutex<HashSet<(String, NodeId)>>,
}

impl JsCodebase {
    pub(crate) fn new(app: Arc<AppShared>) -> Self {
        JsCodebase {
            app,
            artifacts: Mutex::new(Vec::new()),
            loaded_to: Mutex::new(HashSet::new()),
        }
    }

    /// Adds an artifact by name and size (`codebase.add("../classes.jar")` —
    /// since there is no real byte-code to read, the size is declared).
    pub fn add(&self, name: &str, bytes: usize) -> &Self {
        self.artifacts.push_artifact(name, bytes);
        self
    }

    /// Adds an artifact fetched from a URL (simulated: the name is the last
    /// path segment, the size is declared).
    pub fn add_url(&self, url: &str, bytes: usize) -> &Self {
        let name = url.rsplit('/').next().unwrap_or(url);
        self.artifacts.push_artifact(name, bytes);
        self
    }

    /// The artifacts currently in the codebase.
    pub fn artifacts(&self) -> Vec<Artifact> {
        self.artifacts.lock().clone()
    }

    /// Total size of the codebase in bytes.
    pub fn total_bytes(&self) -> usize {
        self.artifacts.lock().iter().map(|a| a.bytes).sum()
    }

    /// Loads the codebase onto one physical node.
    pub fn load_phys(&self, node: NodeId) -> Result<()> {
        let arts = self.artifacts();
        for a in arts {
            self.ship(node, &a)?;
        }
        Ok(())
    }

    /// `codebase.load(node)` — onto a virtual node.
    pub fn load_node(&self, node: &jsym_vda::Node) -> Result<()> {
        self.load_phys(node.phys())
    }

    /// `codebase.load(cluster)` — onto every node of a cluster.
    pub fn load_cluster(&self, cluster: &jsym_vda::Cluster) -> Result<()> {
        self.load_many(cluster.machines())
    }

    /// `codebase.load(site)` — onto every node of a site.
    pub fn load_site(&self, site: &jsym_vda::Site) -> Result<()> {
        self.load_many(site.machines())
    }

    /// `codebase.load(domain)` — onto every node of a domain.
    pub fn load_domain(&self, domain: &jsym_vda::Domain) -> Result<()> {
        self.load_many(domain.machines())
    }

    fn load_many(&self, machines: Vec<NodeId>) -> Result<()> {
        for m in machines {
            self.load_phys(m)?;
        }
        Ok(())
    }

    fn ship(&self, node: NodeId, artifact: &Artifact) -> Result<()> {
        if self
            .loaded_to
            .lock()
            .contains(&(artifact.name.clone(), node))
        {
            return Ok(()); // already there
        }
        let shared = self.app.node_shared()?;
        let span = shared
            .obs
            .tracer()
            .span("codebase.load", crate::runtime::obs_now(&shared))
            .node(node.0)
            .attr("artifact", &artifact.name)
            .attr("bytes", artifact.bytes);
        let req = IdGen::req();
        shared.call(
            AgentAddr::pub_oa(node),
            req,
            Msg::LoadArtifact {
                req,
                reply_to: self.app.addr(),
                name: artifact.name.clone(),
                bytes: artifact.bytes,
            },
        )?;
        span.finish(crate::runtime::obs_now(&shared));
        self.loaded_to.lock().insert((artifact.name.clone(), node));
        Ok(())
    }

    /// Nodes a given artifact has been loaded onto.
    pub fn loaded_nodes(&self, artifact: &str) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .loaded_to
            .lock()
            .iter()
            .filter(|(name, _)| name == artifact)
            .map(|&(_, node)| node)
            .collect();
        v.sort();
        v
    }

    /// `codebase.free()` — unloads every shipped artifact and releases the
    /// associated memory on each node.
    pub fn free(&self) -> Result<()> {
        let shared = self.app.node_shared()?;
        let sizes: std::collections::HashMap<String, usize> = self
            .artifacts
            .lock()
            .iter()
            .map(|a| (a.name.clone(), a.bytes))
            .collect();
        let drained: Vec<(String, NodeId)> = self.loaded_to.lock().drain().collect();
        for (name, node) in drained {
            let bytes = sizes.get(&name).copied().unwrap_or(0);
            let _ = shared.send(AgentAddr::pub_oa(node), Msg::UnloadArtifact { name, bytes });
        }
        Ok(())
    }
}

impl std::fmt::Debug for JsCodebase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsCodebase")
            .field("artifacts", &self.artifacts.lock().len())
            .field("placements", &self.loaded_to.lock().len())
            .finish()
    }
}

trait PushArtifact {
    fn push_artifact(&self, name: &str, bytes: usize);
}

impl PushArtifact for Mutex<Vec<Artifact>> {
    fn push_artifact(&self, name: &str, bytes: usize) {
        let mut v = self.lock();
        if let Some(existing) = v.iter_mut().find(|a| a.name == name) {
            existing.bytes = existing.bytes.max(bytes);
            return;
        }
        v.push(Artifact {
            name: name.to_owned(),
            bytes,
        });
    }
}

/// Validation helper: an artifact name must be usable as a map key.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn validate_artifact_name(name: &str) -> Result<()> {
    if name.is_empty() {
        Err(JsError::BadArguments("empty artifact name".into()))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_names_validate() {
        assert!(validate_artifact_name("classes.jar").is_ok());
        assert!(validate_artifact_name("").is_err());
    }
}
