//! Static methods and variables (paper §7 future work, implemented).
//!
//! "Moreover, we are extending JavaSymphony to handle static methods and
//! variables." In Java, static members live once per JVM — i.e. once per
//! *node*. The Rust counterpart: a class may register a **static context**
//! (see [`crate::ClassRegistry::set_static`]), a per-node singleton that the
//! PubOA creates lazily on first use and that answers the class's static
//! methods. A [`JsStaticRef`] addresses the static context of one class on
//! one node, with the same three invocation modes as instance methods.
//!
//! Static contexts do not migrate (a JVM's statics don't either) and obey
//! selective classloading: invoking a static method on a node without the
//! class's artifact fails with `ClassNotLoaded`.

use crate::appoa::AppShared;
use crate::calltable::Reissue;
use crate::jsobj::{resolve_placement, Placement};
use crate::msg::Msg;
use crate::registration::JsRegistration;
use crate::value::Value;
use crate::{Result, ResultHandle};
use jsym_net::NodeId;
use jsym_sysmon::JsConstraints;
use std::sync::Arc;

/// A reference to the static context of `class` on a specific node.
#[derive(Clone)]
pub struct JsStaticRef {
    app: Arc<AppShared>,
    class: String,
    node: NodeId,
}

impl JsStaticRef {
    /// Resolves a static reference: `placement` picks the node whose static
    /// context will be addressed (statics are per-node, so the choice is
    /// visible to the application — that is the point).
    pub fn new(
        reg: &JsRegistration,
        class: &str,
        placement: Placement<'_>,
        constraints: Option<&JsConstraints>,
    ) -> Result<JsStaticRef> {
        let app = reg.app();
        let node = resolve_placement(&app, placement, constraints)?;
        Ok(JsStaticRef {
            app,
            class: class.to_owned(),
            node,
        })
    }

    /// The class whose statics this reference addresses.
    pub fn class_name(&self) -> &str {
        &self.class
    }

    /// The node hosting this static context.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Synchronous static invocation.
    pub fn sinvoke(&self, method: &str, args: &[Value]) -> Result<Value> {
        self.ainvoke(method, args)?.get_result()
    }

    /// Asynchronous static invocation.
    pub fn ainvoke(&self, method: &str, args: &[Value]) -> Result<ResultHandle> {
        let slot = self
            .app
            .static_issue(&self.class, self.node, method, args, true)?
            .expect("reply requested");
        let node = self.app.node_shared()?;
        // Statics never migrate; a re-issue simply repeats the call.
        let app = Arc::clone(&self.app);
        let class = self.class.clone();
        let target = self.node;
        let method_owned = method.to_owned();
        let args_owned = args.to_vec();
        let reissue: Arc<Reissue> = Arc::new(move || {
            Ok(app
                .static_issue(&class, target, &method_owned, &args_owned, true)?
                .expect("reply requested"))
        });
        let machine = node.machine.clone();
        let cost = node.cost;
        Ok(ResultHandle::new(
            slot,
            reissue,
            node.config.call_timeout,
            Box::new(move |v: &Value| {
                machine.compute(cost.result_cost(Msg::reply_wire_size_ok(v)));
            }),
        ))
    }

    /// One-sided static invocation.
    pub fn oinvoke(&self, method: &str, args: &[Value]) -> Result<()> {
        self.app
            .static_issue(&self.class, self.node, method, args, false)?;
        Ok(())
    }
}

impl std::fmt::Debug for JsStaticRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JsStaticRef({}::static @ {})", self.class, self.node)
    }
}
