//! # jsym-core — the JavaSymphony runtime system (JRS) in Rust
//!
//! This crate is the paper's primary contribution: an agent-based runtime
//! that lets applications control *where* objects and code live on a
//! heterogeneous distributed system, while the runtime handles the low-level
//! mechanics (remote creation, three invocation modes, migration,
//! persistence, monitoring, failure handling).
//!
//! Architecture (paper §5, Figure 2):
//!
//! * every node runs a **network agent** (NA — monitoring, heartbeats,
//!   failure detection) and a **public object agent** (PubOA — hosts object
//!   instances, executes methods) inside one *node runtime* (the paper's
//!   per-node JVM);
//! * every application gets an **application object agent** (AppOA) on its
//!   home node, which tracks the objects it created (the
//!   *local-objects-table*), issues invocations and orchestrates migration;
//! * the **JS-Shell** ([`JsShell`]) configures the node set, monitoring
//!   periods, failure timeouts and automatic migration, and boots a
//!   [`Deployment`].
//!
//! Programming model (paper §4):
//!
//! ```
//! use jsym_core::{Deployment, JsShell, JsObj, Placement, Value};
//! use jsym_core::testkit::{register_test_classes, three_node_shell};
//!
//! let deployment = three_node_shell().boot();
//! register_test_classes(&deployment);
//!
//! // Register the application with the JRS.
//! let reg = deployment.register_app().unwrap();
//!
//! // Create an object somewhere cheap, invoke it three ways.
//! let obj = JsObj::create(&reg, "Counter", &[], Placement::Auto, None).unwrap();
//! obj.oinvoke("add", &[Value::I64(5)]).unwrap();                  // one-sided
//! let h = obj.ainvoke("add", &[Value::I64(2)]).unwrap();          // asynchronous
//! let _ = h.get_result().unwrap();
//! let v = obj.sinvoke("get", &[]).unwrap();                       // synchronous
//! assert_eq!(v, Value::I64(7));
//!
//! obj.free().unwrap();
//! reg.unregister().unwrap();
//! ```

#![warn(missing_docs)]

mod appoa;
mod automigrate;
mod calltable;
mod class;
mod codebase;
mod cost;
mod dir;
mod error;
mod events;
mod ids;
mod intern;
mod jsobj;
mod msg;
mod na;
mod persist;
mod puboa;
mod recovery;
mod registration;
mod runtime;
mod shell;
mod statics;
pub mod testkit;
mod value;

pub use calltable::ResultHandle;
pub use class::{snapshot_state, ClassRegistry, InvokeCtx, JsClass};
pub use codebase::JsCodebase;
pub use cost::CostModel;
pub use dir::DirectoryStatus;
pub use error::JsError;
pub use events::{EventLog, RuntimeEvent};
pub use ids::{AgentAddr, AgentKind, AppId, ObjectHandle, ObjectId};
pub use jsobj::{JsObj, MigrateTarget, PlacedIn, Placement};
pub use persist::ObjectStore;
pub use registration::JsRegistration;
pub use shell::{AffinityConfig, AffinityStats, Deployment, JsShell, MachineConfig, NodeStats};
pub use statics::JsStaticRef;
pub use value::{Args, Value};

/// Observability subsystem (re-exported from `jsym-obs`): metrics registry,
/// span tracer, snapshots, JSON export.
pub use jsym_exec::ExecStats;
pub use jsym_obs as obs;

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, JsError>;
