//! Per-node runtime: the paper's "single JVM" hosting the node's public
//! object agent and network agent, plus the receiver thread that routes
//! incoming messages to the right agent.

use crate::calltable::{CallTable, Slot};
use crate::class::{ClassRegistry, ObjectCaller};
use crate::cost::CostModel;
use crate::error::JsError;
use crate::ids::{AgentAddr, AgentKind, IdGen, ObjectHandle, ObjectId, ReqId};
use crate::intern::Sym;
use crate::msg::{Msg, Packet};
use crate::na::NaState;
use crate::persist::ObjectStore;
use crate::value::{args_wire_size, Value};
use crate::{appoa, puboa, Result};
use crossbeam::channel::{Receiver, RecvTimeoutError};
use jsym_net::{Envelope, Network, NodeId, Payload, SimClock};
use jsym_sysmon::SimMachine;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// An object instance hosted by a PubOA (one row of the paper's
/// remote-objects-table).
#[derive(Clone)]
pub(crate) struct ObjEntry {
    pub class: Sym,
    /// The AppOA this object originates from — the location authority.
    pub origin: AgentAddr,
    /// The instance; the mutex serializes method execution per object and is
    /// what migration/persistence wait on to quiesce the object.
    pub instance: Arc<Mutex<Box<dyn crate::JsClass>>>,
    /// Per-object invocation queue: methods execute in message-arrival
    /// order, like RMI calls draining off one connection.
    pub exec: Arc<ObjExecutor>,
}

impl ObjEntry {
    pub(crate) fn new(class: Sym, origin: AgentAddr, instance: Box<dyn crate::JsClass>) -> Self {
        ObjEntry {
            class,
            origin,
            instance: Arc::new(Mutex::new(instance)),
            exec: Arc::new(ObjExecutor::default()),
        }
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct ExecState {
    queue: std::collections::VecDeque<Job>,
    running: bool,
}

/// Serializes the invocations of one object in arrival order.
///
/// The receiver thread enqueues; at most one drain task runs at a time on
/// the node's worker pool, so an `init` delivered before a `multiply` is
/// guaranteed to execute before it — matching RMI calls arriving over one
/// serialized connection.
#[derive(Default)]
pub(crate) struct ObjExecutor {
    state: Mutex<ExecState>,
}

/// How many queued invocations one cooperative drain task executes before
/// re-submitting itself, so a hot object cannot monopolize an executor
/// worker while thousands of sibling tasks wait.
const DRAIN_YIELD_BATCH: usize = 64;

impl ObjExecutor {
    /// Enqueues a job, starting a drain task if none is running.
    pub(crate) fn submit(self: &Arc<Self>, shared: &Arc<NodeShared>, job: Job) {
        let start_drain = {
            let mut st = self.state.lock();
            st.queue.push_back(job);
            if st.running {
                false
            } else {
                st.running = true;
                true
            }
        };
        if start_drain {
            let exec = Arc::clone(self);
            let sh = Arc::clone(shared);
            spawn_worker(shared, "obj-exec", move || exec.drain(&sh));
        }
    }

    fn drain(self: &Arc<Self>, shared: &Arc<NodeShared>) {
        if !shared.workers.cooperative() {
            // Threaded mode: the drain owns a (transient) thread, run dry.
            self.drain_all();
            return;
        }
        // Executor mode: the drain is one task among up to a million; yield
        // the worker back after a bounded batch. `running` stays true across
        // the yield, so submission order is preserved and no second drain
        // can start.
        let mut done = 0usize;
        loop {
            let job = {
                let mut st = self.state.lock();
                match st.queue.pop_front() {
                    Some(j) => j,
                    None => {
                        st.running = false;
                        return;
                    }
                }
            };
            job();
            done += 1;
            if done >= DRAIN_YIELD_BATCH {
                let exec = Arc::clone(self);
                let sh = Arc::clone(shared);
                spawn_worker(shared, "obj-exec", move || exec.drain(&sh));
                return;
            }
        }
    }

    fn drain_all(&self) {
        loop {
            let job = {
                let mut st = self.state.lock();
                match st.queue.pop_front() {
                    Some(j) => j,
                    None => {
                        st.running = false;
                        return;
                    }
                }
            };
            job();
        }
    }
}

/// Counters exposed as [`crate::NodeStats`].
#[derive(Default)]
pub(crate) struct StatCounters {
    pub invocations: AtomicU64,
    pub creations: AtomicU64,
    pub migrations_in: AtomicU64,
    pub migrations_out: AtomicU64,
    pub artifact_bytes: AtomicU64,
    pub stores: AtomicU64,
}

/// Runtime tunables shared by all agents on a node.
#[derive(Clone, Debug)]
pub(crate) struct RuntimeConfig {
    /// Real-time budget for one request/reply exchange.
    pub call_timeout: Duration,
    /// Virtual-seconds pause between retries after `ObjectMoved`.
    pub retry_backoff: f64,
    /// Maximum `ObjectMoved` retries before giving up.
    pub max_retries: u32,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            call_timeout: Duration::from_secs(120),
            retry_backoff: 0.02,
            max_retries: 200,
        }
    }
}

/// All state shared between the threads of one node runtime.
pub(crate) struct NodeShared {
    pub phys: NodeId,
    pub machine: SimMachine,
    pub clock: SimClock,
    pub net: Network,
    pub classes: ClassRegistry,
    pub cost: CostModel,
    pub config: RuntimeConfig,
    pub store: ObjectStore,
    /// Pending request/reply slots for every local caller.
    pub calls: CallTable,
    /// The PubOA's remote-objects-table.
    pub objects: Mutex<HashMap<ObjectId, ObjEntry>>,
    /// Per-class static contexts hosted on this node (lazily created).
    pub statics: Mutex<HashMap<Sym, ObjEntry>>,
    /// Codebase artifacts present on this node (selective classloading).
    pub loaded: Mutex<HashSet<String>>,
    /// AppOAs homed on this node.
    pub apps: RwLock<HashMap<crate::AppId, Arc<appoa::AppShared>>>,
    /// Location cache for foreign object handles used in nested calls.
    pub location_cache: Mutex<HashMap<ObjectId, NodeId>>,
    /// Deployment-wide caller→object traffic counters (affinity plane).
    pub affinity: Arc<jsym_net::AffinityTracker>,
    /// Network-agent state (monitoring, heartbeats, failure detection).
    pub na: NaState,
    pub stats: StatCounters,
    pub workers: Workers,
    /// Deployment-wide structural event log.
    pub events: crate::EventLog,
    /// Deployment-wide observability scope (metrics + span tracer).
    pub obs: jsym_obs::ObsRegistry,
    /// Client view of the replicated directory (`None` = legacy
    /// single-authority resolution).
    pub dir: Option<Arc<crate::dir::DirCluster>>,
    /// The directory replica hosted on this node, if it is one of the first
    /// `directory_replicas` machines.
    pub dir_host: Option<Arc<crate::dir::DirHost>>,
    pub shutdown: AtomicBool,
}

impl NodeShared {
    /// Sends `msg` to an agent, declaring its wire size. Errors are mapped
    /// to `NodeUnreachable`.
    pub fn send(&self, to: AgentAddr, msg: Msg) -> Result<()> {
        let size = msg.wire_size();
        let tag = msg_tag(&msg);
        let dst = to.node;
        if self.obs.is_enabled() {
            self.obs.counter("msg.sent", Some(self.phys.0), tag).inc();
        }
        self.net
            .send(
                self.phys,
                dst,
                Payload::new(tag, size, Packet { to: to.agent, msg }),
            )
            .map_err(|_| JsError::NodeUnreachable(dst))
    }

    /// Sends a reply for `req` to `to`, charging result-marshalling cost.
    pub fn send_reply(&self, to: AgentAddr, req: ReqId, result: Result<Value>) {
        let bytes = Msg::reply_wire_size(&result);
        self.machine.compute(self.cost.result_cost(bytes));
        let _ = self.send(to, Msg::Reply { req, result });
    }

    /// Issues a request and blocks for its reply: the synchronous RMI
    /// primitive every higher-level operation is built on. Caller-side
    /// marshalling must already have been charged by the caller.
    ///
    /// Waits in slices so a node/deployment shutdown unblocks the caller
    /// promptly even if the request was registered after the shutdown's
    /// `fail_all` sweep (its reply would otherwise never come).
    pub fn call(&self, to: AgentAddr, req: ReqId, msg: Msg) -> Result<Value> {
        if self.shutdown.load(Ordering::Relaxed) {
            return Err(JsError::ShuttingDown);
        }
        let slot = self.calls.register(req);
        if let Err(e) = self.send(to, msg) {
            self.calls.forget(req);
            return Err(e);
        }
        let deadline = std::time::Instant::now() + self.config.call_timeout;
        const SLICE: Duration = Duration::from_millis(50);
        let out = loop {
            let remaining = deadline
                .checked_duration_since(std::time::Instant::now())
                .unwrap_or(Duration::ZERO);
            match slot.wait(remaining.min(SLICE)) {
                Err(JsError::Timeout) => {
                    if self.shutdown.load(Ordering::Relaxed) {
                        break Err(JsError::ShuttingDown);
                    }
                    if remaining <= SLICE {
                        break Err(JsError::Timeout);
                    }
                }
                other => break other,
            }
        };
        if out.is_err() {
            self.calls.forget(req);
        }
        out
    }

    /// Resolves the current location of a foreign handle, consulting the
    /// replicated directory (when enabled) or the origin AppOA when the
    /// cache has no answer (paper Figure 4).
    pub fn resolve_location(&self, handle: ObjectHandle) -> Result<NodeId> {
        // Hosted right here?
        if self.objects.lock().contains_key(&handle.id) {
            return Ok(self.phys);
        }
        if let Some(&loc) = self.location_cache.lock().get(&handle.id) {
            return Ok(loc);
        }
        // Replicated directory first: a linearizable leader read. Only a
        // successful hit is authoritative — the write-through is
        // best-effort, so a missing entry may just mean the placement never
        // landed (e.g. quorum was down at create/migrate time). Any miss or
        // failure — NoSuchObject, election in progress, quorum loss — falls
        // back to the legacy origin-authority path.
        if self.dir.is_some() {
            if let Ok(loc) = crate::dir::read_location(self, handle.id) {
                self.location_cache.lock().insert(handle.id, loc);
                return Ok(loc);
            }
        }
        // Ask the origin AppOA. If it is homed on this very node, answer
        // from its table directly (AppOA↔PubOA on one node interact by
        // local method invocation in the paper).
        if handle.origin.node == self.phys {
            if let AgentKind::App(app) = handle.origin.agent {
                if let Some(app_shared) = self.apps.read().get(&app).cloned() {
                    let loc = app_shared
                        .location_of(handle.id)
                        .ok_or(JsError::NoSuchObject(handle.id))?;
                    self.location_cache.lock().insert(handle.id, loc);
                    return Ok(loc);
                }
            }
            return Err(JsError::NoSuchObject(handle.id));
        }
        let req = IdGen::req();
        let reply_to = AgentAddr::pub_oa(self.phys);
        let v = self.call(
            handle.origin,
            req,
            Msg::WhereIs {
                req,
                reply_to,
                obj: handle.id,
            },
        )?;
        let loc = NodeId(
            v.as_i64()
                .ok_or_else(|| JsError::MethodFailed("bad WhereIs reply".into()))?
                as u32,
        );
        self.location_cache.lock().insert(handle.id, loc);
        Ok(loc)
    }

    /// Synchronous invocation of `method` on the object at `loc`, paying
    /// caller-side costs. Returns `ObjectMoved` untranslated so callers can
    /// re-resolve.
    pub fn invoke_at(
        &self,
        loc: NodeId,
        obj: ObjectId,
        method: &str,
        args: &[Value],
    ) -> Result<Value> {
        let req = IdGen::req();
        self.machine
            .compute(self.cost.invoke_caller(args_wire_size(args)));
        let result = self.call(
            AgentAddr::pub_oa(loc),
            req,
            Msg::Invoke {
                req,
                reply_to: Some(AgentAddr::pub_oa(self.phys)),
                obj,
                method: Sym::intern(method),
                args: args.to_vec(),
            },
        )?;
        // Caller-side result unmarshalling.
        self.machine
            .compute(self.cost.result_cost(Msg::reply_wire_size_ok(&result)));
        Ok(result)
    }

    /// Full nested-call path with migration retries, used by methods
    /// invoking other objects' methods.
    pub fn call_object(&self, handle: ObjectHandle, method: &str, args: &[Value]) -> Result<Value> {
        let mut attempts = 0;
        loop {
            let loc = self.resolve_location(handle)?;
            match self.invoke_at(loc, handle.id, method, args) {
                Err(JsError::ObjectMoved(_)) => {
                    self.location_cache.lock().remove(&handle.id);
                    attempts += 1;
                    if attempts > self.config.max_retries {
                        return Err(JsError::Timeout);
                    }
                    self.clock.sleep(self.config.retry_backoff);
                }
                Err(JsError::NodeUnreachable(n)) if n == loc => {
                    // The location may be a stale cache entry pointing at a
                    // failed node while the directory/AppOA already knows
                    // the failover placement. Drop the entry; retry only if
                    // it actually was cached — a fresh resolution pointing
                    // at a dead node means the object really is unreachable
                    // right now (recovery, if any, re-resolves next call).
                    let was_cached = self.location_cache.lock().remove(&handle.id).is_some();
                    attempts += 1;
                    if !was_cached || attempts > self.config.max_retries {
                        return Err(JsError::NodeUnreachable(n));
                    }
                    self.clock.sleep(self.config.retry_backoff);
                }
                other => return other,
            }
        }
    }
}

/// [`ObjectCaller`] backed by a node runtime (for nested invocations from
/// inside method bodies).
pub(crate) struct NodeClient {
    pub shared: Arc<NodeShared>,
}

impl ObjectCaller for NodeClient {
    fn call(&self, handle: ObjectHandle, method: &str, args: &[Value]) -> Result<Value> {
        self.shared.call_object(handle, method, args)
    }
}

/// Virtual timestamp for instrumentation: reads the clock only when the
/// observability scope is enabled, so disabled deployments pay nothing.
pub(crate) fn obs_now(shared: &NodeShared) -> f64 {
    if shared.obs.is_enabled() {
        shared.clock.now()
    } else {
        0.0
    }
}

fn msg_tag(msg: &Msg) -> &'static str {
    match msg {
        Msg::CreateObject { .. } => "create",
        Msg::CreateFromState { .. } => "create-from-state",
        Msg::FreeObject { .. } => "free",
        Msg::Invoke { .. } => "invoke",
        Msg::Reply { .. } => "reply",
        Msg::WhereIs { .. } => "where-is",
        Msg::MigrateRequest { .. } => "migrate-req",
        Msg::MigrateTransfer { .. } => "migrate-xfer",
        Msg::StoreObject { .. } => "store",
        Msg::LoadArtifact { .. } => "load-artifact",
        Msg::UnloadArtifact { .. } => "unload-artifact",
        Msg::SysReport { .. } => "sys-report",
        Msg::Heartbeat { .. } => "heartbeat",
        Msg::StaticInvoke { .. } => "static-invoke",
        Msg::DirConsensus { .. } => "dir-consensus",
        Msg::DirPropose { .. } => "dir-propose",
        Msg::DirRead { .. } => "dir-read",
    }
}

/// The receiver thread: routes every incoming envelope to the right agent.
pub(crate) fn run_receiver(shared: Arc<NodeShared>, rx: Receiver<Envelope>) {
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        let env = match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(env) => env,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        dispatch(&shared, env);
    }
    // Nothing will ever complete the pending calls now.
    shared.calls.fail_all(JsError::ShuttingDown);
}

pub(crate) fn dispatch(shared: &Arc<NodeShared>, env: Envelope) {
    let src = env.src;
    let packet = match env.payload.downcast::<Packet>() {
        Ok(p) => *p,
        Err(_) => return, // foreign payload; drop
    };
    // Any traffic proves liveness of the sender.
    shared.na.heard(src, shared.clock.now());

    match packet.msg {
        // Replies complete pending calls regardless of the addressed agent:
        // the call table is shared by all local callers.
        Msg::Reply { req, result } => {
            shared.calls.complete(req, result);
        }
        msg => match packet.to {
            AgentKind::Pub => puboa::handle(shared, src, msg),
            AgentKind::App(app) => appoa::handle_app_msg(shared, app, msg),
            AgentKind::Dir => {
                if let Some(host) = shared.dir_host.clone() {
                    host.handle(shared, src, msg);
                }
                // Directory traffic to a non-replica node is dropped; the
                // client treats the ensuing timeout as "try another replica".
            }
        },
    }
}

/// Hands a potentially long-running handler to the node's worker pool.
pub(crate) fn spawn_worker(
    shared: &Arc<NodeShared>,
    name: &str,
    f: impl FnOnce() + Send + 'static,
) {
    shared.workers.submit(name, Box::new(f));
}

/// How a node runtime executes its potentially-blocking handler jobs:
/// either a private per-node [`WorkerPool`] (the legacy thread-per-node
/// model) or the deployment-wide work-stealing [`jsym_exec::Executor`]
/// shared by every node (`JsShell::executor`).
pub(crate) enum Workers {
    Pool(WorkerPool),
    Exec(Arc<jsym_exec::Executor>),
}

impl Workers {
    pub(crate) fn submit(&self, name: &str, job: Job) {
        match self {
            Workers::Pool(p) => p.submit(name, job),
            Workers::Exec(e) => e.spawn(job),
        }
    }

    /// Whether jobs share a bounded worker set and must yield cooperatively.
    pub(crate) fn cooperative(&self) -> bool {
        matches!(self, Workers::Exec(_))
    }

    pub(crate) fn transient_spawns(&self) -> u64 {
        match self {
            Workers::Pool(p) => p.transient_spawns(),
            Workers::Exec(_) => 0,
        }
    }

    pub(crate) fn overflow_active(&self) -> u32 {
        match self {
            Workers::Pool(p) => p.overflow_active(),
            Workers::Exec(_) => 0,
        }
    }
}

/// A small persistent thread pool per node runtime.
///
/// Spawning an OS thread costs ~100 µs of real time; at the simulation's
/// time scales that would leak whole virtual seconds into every RMI. The
/// pool keeps a few resident workers (enough for the common case of a
/// handful of concurrent method executions per node) and falls back to
/// transient threads when every resident worker is blocked — e.g. deep
/// nested-invocation chains — so the runtime can never deadlock on pool
/// exhaustion.
pub(crate) struct WorkerPool {
    label: String,
    tx: crossbeam::channel::Sender<Job>,
    rx: crossbeam::channel::Receiver<Job>,
    resident: u32,
    active: Arc<AtomicU32>,
    /// Transient-thread fallbacks taken because every resident worker was
    /// busy; exposed via [`crate::NodeStats`] so bench runs can detect pool
    /// exhaustion.
    transient_spawns: AtomicU64,
    /// Transient threads currently alive. Bounded by `max_overflow`:
    /// submissions past the cap queue instead of spawning, so a burst of
    /// blocked handlers cannot fork an unbounded thread herd.
    overflow_active: Arc<AtomicU32>,
    max_overflow: u32,
}

/// Default ceiling on concurrent transient threads per pool. Deep nested
/// chains in the tests use a few tens; anything past this indicates the
/// workload wants the executor, not more threads.
const MAX_OVERFLOW: u32 = 128;

impl WorkerPool {
    pub(crate) fn new(label: &str, resident: u32) -> Self {
        Self::with_caps(label, resident, MAX_OVERFLOW)
    }

    pub(crate) fn with_caps(label: &str, resident: u32, max_overflow: u32) -> Self {
        let (tx, rx) = crossbeam::channel::unbounded::<Job>();
        let active = Arc::new(AtomicU32::new(0));
        for i in 0..resident {
            let rx = rx.clone();
            let active = Arc::clone(&active);
            let _ = std::thread::Builder::new()
                .name(format!("jsym-{label}-w{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        active.fetch_add(1, Ordering::Relaxed);
                        job();
                        active.fetch_sub(1, Ordering::Relaxed);
                    }
                })
                .expect("spawn pool worker");
        }
        WorkerPool {
            label: label.to_owned(),
            tx,
            rx,
            resident,
            active,
            transient_spawns: AtomicU64::new(0),
            overflow_active: Arc::new(AtomicU32::new(0)),
            max_overflow,
        }
    }

    pub(crate) fn submit(&self, name: &str, job: Job) {
        // All resident workers busy (likely blocked on nested calls or long
        // computations): overflow to a transient thread so progress is
        // never gated on pool capacity. The transient thread carries the
        // pool's label so `ps`/profilers can attribute it to its node.
        if self.active.load(Ordering::Relaxed) >= self.resident && self.claim_overflow_slot() {
            self.transient_spawns.fetch_add(1, Ordering::Relaxed);
            let ovf = Arc::clone(&self.overflow_active);
            let rx = self.rx.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("jsym-{}-ovf-{name}", self.label))
                .spawn(move || {
                    job();
                    // Past-the-cap submissions queued instead of spawning;
                    // drain them before retiring so they cannot starve
                    // behind blocked residents.
                    while let Ok(j) = rx.try_recv() {
                        j();
                    }
                    ovf.fetch_sub(1, Ordering::Relaxed);
                });
            if spawned.is_err() {
                self.overflow_active.fetch_sub(1, Ordering::Relaxed);
            }
            return;
        }
        if let Err(e) = self.tx.send(job) {
            // Pool torn down mid-shutdown: run nothing.
            drop(e);
        }
    }

    /// Atomically reserves an overflow-thread slot; `false` at the cap.
    fn claim_overflow_slot(&self) -> bool {
        let mut cur = self.overflow_active.load(Ordering::Relaxed);
        loop {
            if cur >= self.max_overflow {
                return false;
            }
            match self.overflow_active.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// How often submissions overflowed to a transient thread.
    pub(crate) fn transient_spawns(&self) -> u64 {
        self.transient_spawns.load(Ordering::Relaxed)
    }

    /// Transient threads currently alive (`pool.overflow.active` gauge).
    pub(crate) fn overflow_active(&self) -> u32 {
        self.overflow_active.load(Ordering::Relaxed)
    }
}

/// Creates a completed slot — used when an operation can be answered
/// without any network traffic.
#[allow(dead_code)]
pub(crate) fn ready_slot(result: Result<Value>) -> Slot {
    let s = Slot::new();
    s.complete(result);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PlMutex;
    use std::time::Duration;

    #[test]
    fn worker_pool_runs_jobs_and_overflows() {
        let pool = WorkerPool::new("t", 2);
        let done = Arc::new(AtomicU32::new(0));
        // Saturate the two residents with blocking jobs, then submit more:
        // the overflow path must still make progress.
        let gate = Arc::new(std::sync::Barrier::new(3));
        for _ in 0..2 {
            let gate = Arc::clone(&gate);
            let done = Arc::clone(&done);
            pool.submit(
                "blocker",
                Box::new(move || {
                    gate.wait();
                    done.fetch_add(1, Ordering::SeqCst);
                }),
            );
        }
        // Give the residents a moment to pick the blockers up.
        std::thread::sleep(Duration::from_millis(20));
        let done2 = Arc::clone(&done);
        pool.submit(
            "overflow",
            Box::new(move || {
                done2.fetch_add(1, Ordering::SeqCst);
            }),
        );
        // The overflow job completes even though both residents are blocked.
        for _ in 0..200 {
            if done.load(Ordering::SeqCst) >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(done.load(Ordering::SeqCst) >= 1, "overflow job never ran");
        gate.wait(); // release the blockers
        for _ in 0..200 {
            if done.load(Ordering::SeqCst) == 3 {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("not all jobs completed: {}", done.load(Ordering::SeqCst));
    }

    #[test]
    fn transient_overflow_threads_carry_pool_label_and_are_counted() {
        let pool = WorkerPool::new("t9", 1);
        assert_eq!(pool.transient_spawns(), 0);
        let gate = Arc::new(std::sync::Barrier::new(2));
        let g = Arc::clone(&gate);
        pool.submit(
            "blocker",
            Box::new(move || {
                g.wait();
            }),
        );
        std::thread::sleep(Duration::from_millis(20));
        let (name_tx, name_rx) = crossbeam::channel::bounded::<String>(1);
        pool.submit(
            "probe",
            Box::new(move || {
                let name = std::thread::current().name().unwrap_or("").to_owned();
                let _ = name_tx.send(name);
            }),
        );
        let name = name_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(name, "jsym-t9-ovf-probe");
        assert_eq!(pool.transient_spawns(), 1);
        gate.wait();
    }

    #[test]
    fn overflow_threads_are_capped_and_excess_jobs_queue() {
        let pool = WorkerPool::with_caps("tcap", 1, 1);
        // Block the single resident.
        let resident_gate = Arc::new(std::sync::Barrier::new(2));
        let g = Arc::clone(&resident_gate);
        pool.submit(
            "blocker",
            Box::new(move || {
                g.wait();
            }),
        );
        std::thread::sleep(Duration::from_millis(20));
        // First overflow submission takes the one transient slot and blocks.
        let ovf_gate = Arc::new(std::sync::Barrier::new(2));
        let g = Arc::clone(&ovf_gate);
        pool.submit(
            "ovf",
            Box::new(move || {
                g.wait();
            }),
        );
        for _ in 0..200 {
            if pool.overflow_active() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.overflow_active(), 1);
        assert_eq!(pool.transient_spawns(), 1);
        // Past the cap: this job queues instead of spawning another thread.
        let done = Arc::new(AtomicU32::new(0));
        let d = Arc::clone(&done);
        pool.submit(
            "queued",
            Box::new(move || drop(d.fetch_add(1, Ordering::SeqCst))),
        );
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(pool.transient_spawns(), 1, "no thread past the cap");
        assert_eq!(done.load(Ordering::SeqCst), 0, "job queued, not run");
        // Release the transient: before retiring it drains the queue, so
        // the capped job runs even though the resident is still blocked.
        ovf_gate.wait();
        for _ in 0..200 {
            if done.load(Ordering::SeqCst) == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(done.load(Ordering::SeqCst), 1, "queued job never drained");
        for _ in 0..200 {
            if pool.overflow_active() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.overflow_active(), 0, "transient never retired");
        resident_gate.wait();
    }

    #[test]
    fn obj_executor_preserves_submission_order() {
        let pool = WorkerPool::new("t2", 2);
        // A stand-in NodeShared is heavyweight; exercise ObjExecutor through
        // its own API by submitting via a scratch pool-backed shared. The
        // executor only uses `spawn_worker`, which needs a NodeShared — so
        // test the state machine directly instead.
        let exec = Arc::new(ObjExecutor::default());
        let order: Arc<PlMutex<Vec<u32>>> = Arc::new(PlMutex::new(Vec::new()));
        // Simulate the receiver thread: enqueue jobs under the state lock,
        // drain on the pool.
        for i in 0..16u32 {
            let order = Arc::clone(&order);
            let job: Job = Box::new(move || {
                order.lock().push(i);
                // Stagger to give later submissions a chance to race.
                std::thread::sleep(Duration::from_micros(200));
            });
            let start = {
                let mut st = exec.state.lock();
                st.queue.push_back(job);
                if st.running {
                    false
                } else {
                    st.running = true;
                    true
                }
            };
            if start {
                let e = Arc::clone(&exec);
                pool.submit("drain", Box::new(move || e.drain_all()));
            }
        }
        for _ in 0..400 {
            if order.lock().len() == 16 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(*order.lock(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn runtime_config_defaults_are_consistent() {
        let c = RuntimeConfig::default();
        assert!(c.call_timeout >= Duration::from_secs(1));
        assert!(c.retry_backoff > 0.0);
        assert!(c.max_retries > 0);
    }
}
