//! Identifiers and agent addresses.

use jsym_net::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Globally unique id of a distributed object.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}
impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Id of a registered application (one per [`crate::JsRegistration`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AppId(pub u32);

impl fmt::Debug for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}
impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Correlation id for request/reply exchanges.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReqId(pub u64);

impl fmt::Debug for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// Which agent on a node a message is addressed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AgentKind {
    /// The node's public object agent.
    Pub,
    /// An application object agent hosted on the node.
    App(AppId),
    /// The node's directory replica (present only on replica nodes when
    /// [`crate::JsShell::directory_replicas`] is non-zero).
    Dir,
}

/// Full address of an agent: node + agent kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AgentAddr {
    /// The node the agent lives on.
    pub node: NodeId,
    /// Which agent on that node.
    pub agent: AgentKind,
}

impl AgentAddr {
    /// Address of the PubOA on `node`.
    pub fn pub_oa(node: NodeId) -> Self {
        AgentAddr {
            node,
            agent: AgentKind::Pub,
        }
    }

    /// Address of application `app`'s AppOA on `node`.
    pub fn app_oa(node: NodeId, app: AppId) -> Self {
        AgentAddr {
            node,
            agent: AgentKind::App(app),
        }
    }

    /// Address of the directory replica on `node`.
    pub fn dir(node: NodeId) -> Self {
        AgentAddr {
            node,
            agent: AgentKind::Dir,
        }
    }
}

/// A first-order object handle (paper §5.2: "Object handles (first-order
/// objects) can be passed to methods of other objects that may reside on
/// arbitrary nodes").
///
/// Carries the object's id and the address of the AppOA it originates from —
/// the authority that always knows the object's current location, consulted
/// when an invocation races with a migration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ObjectHandle {
    /// The object's id.
    pub id: ObjectId,
    /// The AppOA the object originates from.
    pub origin: AgentAddr,
}

/// Process-wide id generators. JavaSymphony runs one JRS per process in this
/// reproduction, so process-global counters are sufficient and keep ids
/// unique even across deployments in one test binary.
pub(crate) struct IdGen;

static NEXT_OBJECT: AtomicU64 = AtomicU64::new(1);
static NEXT_REQ: AtomicU64 = AtomicU64::new(1);
static NEXT_APP: AtomicU64 = AtomicU64::new(1);

impl IdGen {
    pub fn object() -> ObjectId {
        ObjectId(NEXT_OBJECT.fetch_add(1, Ordering::Relaxed))
    }
    pub fn req() -> ReqId {
        ReqId(NEXT_REQ.fetch_add(1, Ordering::Relaxed))
    }
    pub fn app() -> AppId {
        AppId(NEXT_APP.fetch_add(1, Ordering::Relaxed) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_monotone() {
        let a = IdGen::object();
        let b = IdGen::object();
        assert!(b > a);
        let r1 = IdGen::req();
        let r2 = IdGen::req();
        assert_ne!(r1, r2);
        assert_ne!(IdGen::app(), IdGen::app());
    }

    #[test]
    fn display_formats() {
        assert_eq!(ObjectId(4).to_string(), "obj4");
        assert_eq!(AppId(2).to_string(), "app2");
        assert_eq!(format!("{:?}", ReqId(9)), "req9");
    }

    #[test]
    fn agent_addr_constructors() {
        let p = AgentAddr::pub_oa(NodeId(3));
        assert_eq!(p.agent, AgentKind::Pub);
        let a = AgentAddr::app_oa(NodeId(3), AppId(1));
        assert_eq!(a.agent, AgentKind::App(AppId(1)));
        assert_eq!(a.node, NodeId(3));
    }
}
