//! Automatic object migration (paper §4.6, §5.2).
//!
//! "The PubOA periodically examines whether the constraints of the stored
//! virtual architectures are still fulfilled ... The AppOA is then trying to
//! migrate all objects originating from its JSA that are on this list to
//! other architecture components which fulfill the original constraints. To
//! maintain locality JRS tries to migrate objects of one node to another
//! node within the same cluster of the original node", then the same site,
//! then the domain.

use crate::shell::DeploymentInner;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Supervisor loop: wakes every `period` virtual seconds, finds nodes whose
/// creation constraints no longer hold, and migrates affected objects to the
/// nearest (cluster → site → domain) machine that satisfies them.
pub(crate) fn run(deployment: Weak<DeploymentInner>, period: f64) {
    loop {
        // Sleep one period in small real slices so shutdown stays prompt.
        {
            let Some(d) = deployment.upgrade() else {
                return;
            };
            if d.shutdown.load(Ordering::Relaxed) {
                return;
            }
            let deadline = d.clock.now() + period;
            while d.clock.now() < deadline {
                if d.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            if !d.automigration.load(Ordering::Relaxed) {
                continue;
            }
            let moved = round(&d);
            if moved > 0 {
                d.events.record(
                    d.clock.now(),
                    crate::RuntimeEvent::AutoMigrationRound { migrated: moved },
                );
            }
        }
    }
}

/// One auto-migration round. Returns the number of objects migrated;
/// exposed crate-internally so tests can drive rounds deterministically.
pub(crate) fn round(d: &Arc<DeploymentInner>) -> usize {
    let n = d.automigrate_rounds.fetch_add(1, Ordering::Relaxed);
    // Dirty-set scans only re-evaluate nodes whose cached sample moved past
    // the threshold; every 8th round falls back to a full scan so drift
    // below the threshold cannot hide a violation forever.
    let use_dirty = d.automigrate_dirty.load(Ordering::Relaxed) && n % 8 != 0;
    let mode = if use_dirty { "dirty" } else { "full" };
    let scan = d.vda.scan_violations(use_dirty);
    d.obs.counter("automigrate.rounds", None, mode).inc();
    d.obs
        .counter("automigrate.nodes_evaluated", None, mode)
        .add(scan.evaluated as u64);
    if scan.violations.is_empty() {
        return 0;
    }
    let mut migrated = 0;
    for (node_key, phys) in scan.violations {
        let node = d.vda.node_handle(node_key);
        let constraints = d.vda.effective_constraints(&node);
        // Locality order: same cluster, then same site, then same domain.
        let target = d.vda.locality_candidates(&node).into_iter().find(|&cand| {
            d.pool
                .snapshot_of(cand)
                .map(|snap| constraints.holds(&snap))
                .unwrap_or(false)
        });
        let Some(target) = target else {
            continue; // nowhere satisfying the constraints; leave objects
        };
        let apps: Vec<_> = d.apps.read().values().cloned().collect();
        for app in apps {
            for obj in app.objects_on(phys) {
                if app.migrate_object(obj, target).is_ok() {
                    migrated += 1;
                }
            }
        }
    }
    migrated
}
