//! Automatic object migration (paper §4.6, §5.2).
//!
//! "The PubOA periodically examines whether the constraints of the stored
//! virtual architectures are still fulfilled ... The AppOA is then trying to
//! migrate all objects originating from its JSA that are on this list to
//! other architecture components which fulfill the original constraints. To
//! maintain locality JRS tries to migrate objects of one node to another
//! node within the same cluster of the original node", then the same site,
//! then the domain.

use crate::shell::DeploymentInner;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Supervisor loop: wakes every `period` virtual seconds and runs the
/// enabled placement passes — constraint-violation automigration (finds
/// nodes whose creation constraints no longer hold and migrates affected
/// objects to the nearest cluster → site → domain machine that satisfies
/// them) and affinity-guided co-location (migrates traffic-hot objects
/// toward their dominant callers, DESIGN.md §14). The two toggles are
/// independent.
pub(crate) fn run(deployment: Weak<DeploymentInner>, period: f64) {
    loop {
        // Sleep one period in small real slices so shutdown stays prompt.
        {
            let Some(d) = deployment.upgrade() else {
                return;
            };
            if d.shutdown.load(Ordering::Relaxed) {
                return;
            }
            let deadline = d.clock.now() + period;
            while d.clock.now() < deadline {
                if d.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            let mut moved = 0;
            if d.automigration.load(Ordering::Relaxed) {
                moved += round(&d);
            }
            if d.affinity_placement.load(Ordering::Relaxed) {
                moved += affinity_round(&d);
            }
            if moved > 0 {
                d.events.record(
                    d.clock.now(),
                    crate::RuntimeEvent::AutoMigrationRound { migrated: moved },
                );
            }
        }
    }
}

/// Objects one affinity round will migrate at most, so a sudden traffic
/// shift cannot stall the supervisor in one huge migration storm.
const AFFINITY_MOVES_PER_ROUND: usize = 32;

/// One affinity co-location round: migrate each hot object to its dominant
/// caller when that caller clearly dominates (`min_share`), the object is
/// not inside its post-migration cooldown, and the target machine is alive
/// and not markedly busier than the current host. Returns the number of
/// objects migrated; exposed crate-internally so tests can drive rounds
/// deterministically.
pub(crate) fn affinity_round(d: &Arc<DeploymentInner>) -> usize {
    d.affinity_rounds.fetch_add(1, Ordering::Relaxed);
    d.obs.counter("affinity.rounds", None, "").inc();
    let cfg = d.config.affinity;
    let now = d.clock.now();
    let hot = d.affinity.hot_objects(now, cfg.min_calls, cfg.cooldown);
    if hot.is_empty() {
        return 0;
    }
    let apps: Vec<_> = d.apps.read().values().cloned().collect();
    let mut migrated = 0;
    for h in hot {
        if migrated >= AFFINITY_MOVES_PER_ROUND {
            break;
        }
        // Hysteresis: only a clearly dominant caller justifies a move.
        if h.share < cfg.min_share {
            continue;
        }
        if d.vda.is_failed(h.dominant) {
            continue;
        }
        let obj = crate::ids::ObjectId(h.object);
        // Find the owning application and the object's current location.
        let Some((app, loc)) = apps.iter().find_map(|a| a.location_of(obj).map(|l| (a, l))) else {
            continue;
        };
        if loc == h.dominant {
            continue;
        }
        // Load check: never migrate onto a machine markedly busier than
        // the current host — co-location must not create hotspots.
        let load = |n| {
            d.pool
                .snapshot_of(n)
                .ok()
                .and_then(|s| s.num(jsym_sysmon::SysParam::CpuLoad1))
                .unwrap_or(0.0)
        };
        let Ok(target_snap) = d.pool.snapshot_of(h.dominant) else {
            continue; // machine gone from the pool
        };
        let target_load = target_snap
            .num(jsym_sysmon::SysParam::CpuLoad1)
            .unwrap_or(0.0);
        if target_load > load(loc) + 2.0 {
            continue;
        }
        if app.migrate_object(obj, h.dominant).is_ok() {
            d.affinity.note_migration(h.object, now);
            d.affinity_migrations.fetch_add(1, Ordering::Relaxed);
            d.obs.counter("affinity.migrations", None, "").inc();
            migrated += 1;
        }
    }
    migrated
}

/// One auto-migration round. Returns the number of objects migrated;
/// exposed crate-internally so tests can drive rounds deterministically.
pub(crate) fn round(d: &Arc<DeploymentInner>) -> usize {
    let n = d.automigrate_rounds.fetch_add(1, Ordering::Relaxed);
    // Dirty-set scans only re-evaluate nodes whose cached sample moved past
    // the threshold; every 8th round falls back to a full scan so drift
    // below the threshold cannot hide a violation forever.
    let use_dirty = d.automigrate_dirty.load(Ordering::Relaxed) && n % 8 != 0;
    let mode = if use_dirty { "dirty" } else { "full" };
    let scan = d.vda.scan_violations(use_dirty);
    d.obs.counter("automigrate.rounds", None, mode).inc();
    d.obs
        .counter("automigrate.nodes_evaluated", None, mode)
        .add(scan.evaluated as u64);
    if scan.violations.is_empty() {
        return 0;
    }
    let mut migrated = 0;
    for (node_key, phys) in scan.violations {
        let node = d.vda.node_handle(node_key);
        let constraints = d.vda.effective_constraints(&node);
        // Locality order: same cluster, then same site, then same domain.
        let target = d.vda.locality_candidates(&node).into_iter().find(|&cand| {
            d.pool
                .snapshot_of(cand)
                .map(|snap| constraints.holds(&snap))
                .unwrap_or(false)
        });
        let Some(target) = target else {
            continue; // nowhere satisfying the constraints; leave objects
        };
        let apps: Vec<_> = d.apps.read().values().cloned().collect();
        for app in apps {
            for obj in app.objects_on(phys) {
                if app.migrate_object(obj, target).is_ok() {
                    migrated += 1;
                }
            }
        }
    }
    migrated
}
