//! The replicated directory service: hosts, client and ticker.
//!
//! When [`crate::JsShell::directory_replicas`] is non-zero, the first `n`
//! machines each host one [`jsym_dir::DirReplica`]. The replicas agree on
//! two replicated maps — object→node placement and manager-role assignments
//! — through a leader-based replicated log (see the `jsym-dir` crate and
//! DESIGN.md §10). Consensus traffic rides the ordinary delivery plane as
//! [`Msg::DirConsensus`] packets charged their encoded byte length, so
//! partitions and kills apply to it like to any RMI.
//!
//! With replication off (the default) the runtime keeps the legacy
//! single-authority path: the origin AppOA answers `WhereIs`. With it on,
//! AppOAs *write through* every placement change to the directory and
//! [`crate::runtime::NodeShared::resolve_location`] consults the directory
//! leader instead of the origin — falling back to the origin authority
//! whenever the directory cannot produce a location, whether it cannot
//! answer (e.g. during an election) or has no entry (the write-through is
//! best-effort and may never have landed). Both paths
//! resolve to the same node on fault-free runs; the differential proptest in
//! `tests/dir_props.rs` asserts that byte-for-byte.

use crate::error::JsError;
use crate::ids::{AgentAddr, IdGen, ObjectId, ReqId};
use crate::msg::Msg;
use crate::runtime::NodeShared;
use crate::value::Value;
use crate::Result;
use jsym_dir::{DirCommand, DirConfig, DirEvent, DirMsg, DirReplica};
use jsym_net::NodeId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Rounds of leader discovery before a directory operation gives up. Each
/// round tries every replica once and backs off [`RETRY_BACKOFF`] virtual
/// seconds, so the budget comfortably covers a staggered re-election.
const MAX_ROUNDS: u32 = 200;

/// Virtual-seconds pause between leader-discovery rounds.
const RETRY_BACKOFF: f64 = 0.05;

/// Derives the tick period and consensus deadlines a deployment's time
/// scale can actually honor.
///
/// The ticker sleeps *real* time; the OS floor on a sleep is a few hundred
/// microseconds. At an aggressive scale (e.g. 1 virt s = 10 µs real) that
/// floor spans whole virtual *minutes*, so fixed virtual deadlines like
/// "election after 2 s of silence" would expire on every single tick and
/// the replicas would thrash through elections forever. Instead: compute
/// the virtual span of one achievable real tick and keep heartbeats a
/// couple of ticks apart and elections several heartbeats out — the
/// protocol's *shape* (heartbeats ≪ election timeout) is preserved at any
/// scale, and all deadlines stay expressed in virtual time.
fn scaled_config(scale: jsym_net::TimeScale, leases: bool) -> (f64, DirConfig) {
    let base = DirConfig::default();
    let tick = (base.heartbeat_interval / 5.0).max(scale.to_virt(Duration::from_micros(500)));
    let heartbeat = base.heartbeat_interval.max(2.0 * tick);
    let election = base.election_timeout.max(4.0 * heartbeat);
    // Two heartbeats of lease: long enough that a healthy leader's rounds
    // renew it continuously, and always < election_timeout (>= 4 heartbeats)
    // as the lease safety argument requires (DESIGN.md §14).
    let lease = if leases { 2.0 * heartbeat } else { 0.0 };
    (
        tick,
        DirConfig {
            heartbeat_interval: heartbeat,
            election_timeout: election,
            lease_duration: lease,
            ..base
        },
    )
}

/// Deployment-wide client view of the directory: the replica set and the
/// best-known leader. Shared by every node runtime.
pub(crate) struct DirCluster {
    /// Machines hosting replicas (the first `directory_replicas` machines).
    pub replicas: Vec<NodeId>,
    leader_hint: Mutex<Option<NodeId>>,
}

impl DirCluster {
    pub(crate) fn new(replicas: Vec<NodeId>) -> Self {
        DirCluster {
            replicas,
            leader_hint: Mutex::new(None),
        }
    }

    fn set_leader(&self, leader: Option<NodeId>) {
        *self.leader_hint.lock() = leader;
    }

    /// Replicas to try, best-known leader first.
    fn candidates(&self) -> Vec<NodeId> {
        let hint = *self.leader_hint.lock();
        let mut out = Vec::with_capacity(self.replicas.len());
        if let Some(h) = hint {
            if self.replicas.contains(&h) {
                out.push(h);
            }
        }
        for &r in &self.replicas {
            if Some(r) != hint {
                out.push(r);
            }
        }
        out
    }
}

/// Public point-in-time status of one directory replica (the shell's
/// `directory` command).
#[derive(Clone, Debug)]
pub struct DirectoryStatus {
    /// Machine hosting the replica.
    pub node: u32,
    /// `"leader"`, `"follower"` or `"candidate"`.
    pub role: String,
    /// Current term.
    pub term: u64,
    /// Best-known leader, if any.
    pub leader: Option<u32>,
    /// Commit index.
    pub commit: u64,
    /// Applied index (lag = leader commit − this).
    pub applied: u64,
    /// Log entries currently retained.
    pub log_entries: usize,
    /// Index folded into the snapshot.
    pub snapshot_index: u64,
    /// Object placements in the applied state.
    pub locations: usize,
    /// Manager-role scopes in the applied state.
    pub roles: usize,
    /// Virtual seconds between leader heartbeats (scaled to the deployment's
    /// time scale — see `scaled_config`).
    pub heartbeat_interval: f64,
    /// Virtual seconds of leader silence before a re-election starts.
    pub election_timeout: f64,
    /// Read-lease duration in virtual seconds (`0.0` = leases disabled).
    pub lease_duration: f64,
}

/// One hosted directory replica plus the parked client requests it answers
/// when commits/read-confirmations arrive.
pub(crate) struct DirHost {
    replica: Mutex<DirReplica>,
    /// Virtual-seconds between ticks, matched to the config's deadlines.
    tick_period: f64,
    /// Proposal seq → the caller awaiting majority commit.
    props: Mutex<HashMap<u64, (ReqId, AgentAddr)>>,
    /// Read seq → the caller awaiting leadership confirmation.
    reads: Mutex<HashMap<u64, (ReqId, AgentAddr, u64)>>,
}

impl DirHost {
    pub(crate) fn new(
        id: NodeId,
        replicas: &[NodeId],
        scale: jsym_net::TimeScale,
        leases: bool,
        now: f64,
    ) -> Self {
        let ids: Vec<u32> = replicas.iter().map(|n| n.0).collect();
        let (tick_period, config) = scaled_config(scale, leases);
        DirHost {
            replica: Mutex::new(DirReplica::new(id.0, &ids, config, now)),
            tick_period,
            props: Mutex::new(HashMap::new()),
            reads: Mutex::new(HashMap::new()),
        }
    }

    /// Status snapshot for the shell / Deployment accessor.
    pub(crate) fn status(&self) -> DirectoryStatus {
        let r = self.replica.lock();
        let s = r.status();
        DirectoryStatus {
            node: s.id,
            role: s.role.to_string(),
            term: s.term,
            leader: s.leader,
            commit: s.commit,
            applied: s.applied,
            log_entries: s.log_entries,
            snapshot_index: s.snapshot_index,
            locations: r.state().location_count(),
            roles: r.state().role_count(),
            heartbeat_interval: r.config().heartbeat_interval,
            election_timeout: r.config().election_timeout,
            lease_duration: r.config().lease_duration,
        }
    }

    /// Advances the replica's timers; called by the ticker thread.
    pub(crate) fn tick(&self, shared: &NodeShared) {
        let now = shared.clock.now();
        let (out, events, hint) = {
            let mut r = self.replica.lock();
            let out = r.tick(now);
            (out, r.take_events(), r.leader_hint())
        };
        self.settle(shared, events, hint);
        ship(shared, out);
    }

    /// Routes one directory-addressed message.
    pub(crate) fn handle(&self, shared: &NodeShared, src: NodeId, msg: Msg) {
        let now = shared.clock.now();
        match msg {
            Msg::DirConsensus { data } => {
                let Ok(m) = DirMsg::from_bytes(&data) else {
                    return;
                };
                let (out, events, hint) = {
                    let mut r = self.replica.lock();
                    let out = r.receive(src.0, m, now);
                    (out, r.take_events(), r.leader_hint())
                };
                self.settle(shared, events, hint);
                ship(shared, out);
            }
            Msg::DirPropose { req, reply_to, cmd } => {
                let Ok(cmd) = DirCommand::from_bytes(&cmd) else {
                    shared.send_reply(
                        reply_to,
                        req,
                        Err(JsError::Serialization("bad directory command".into())),
                    );
                    return;
                };
                let (parked, events, hint) = {
                    let mut r = self.replica.lock();
                    match r.propose(cmd, now) {
                        Ok(seq) => {
                            self.props.lock().insert(seq, (req, reply_to));
                            (None, r.take_events(), r.leader_hint())
                        }
                        Err(nl) => (Some(nl.hint), Vec::new(), r.leader_hint()),
                    }
                };
                if let Some(hint) = parked {
                    if shared.obs.is_enabled() {
                        shared
                            .obs
                            .counter("dir.redirects", Some(shared.phys.0), "propose")
                            .inc();
                    }
                    shared.send_reply(reply_to, req, Err(JsError::DirRedirect { hint }));
                    return;
                }
                self.settle(shared, events, hint);
            }
            Msg::DirRead {
                req,
                reply_to,
                object,
            } => {
                let (parked, events, hint) = {
                    let mut r = self.replica.lock();
                    match r.read_index(now) {
                        Ok(seq) => {
                            self.reads.lock().insert(seq, (req, reply_to, object));
                            (None, r.take_events(), r.leader_hint())
                        }
                        Err(nl) => (Some(nl.hint), Vec::new(), r.leader_hint()),
                    }
                };
                if let Some(hint) = parked {
                    if shared.obs.is_enabled() {
                        shared
                            .obs
                            .counter("dir.redirects", Some(shared.phys.0), "read")
                            .inc();
                    }
                    shared.send_reply(reply_to, req, Err(JsError::DirRedirect { hint }));
                    return;
                }
                self.settle(shared, events, hint);
            }
            _ => {}
        }
    }

    /// Resolves drained replica events into client replies and telemetry.
    /// Runs with the replica lock *released*; replies may dispatch inline on
    /// this thread via the loopback fast path.
    fn settle(&self, shared: &NodeShared, events: Vec<DirEvent>, hint: Option<u32>) {
        if events.is_empty() {
            return;
        }
        let mut replies: Vec<(AgentAddr, ReqId, Result<Value>)> = Vec::new();
        for ev in events {
            match ev {
                DirEvent::Committed { seq, .. } => {
                    if let Some((req, to)) = self.props.lock().remove(&seq) {
                        replies.push((to, req, Ok(Value::Null)));
                    }
                    if shared.obs.is_enabled() {
                        shared
                            .obs
                            .counter("dir.commits", Some(shared.phys.0), "")
                            .inc();
                    }
                }
                DirEvent::ProposalDropped { seq } => {
                    if let Some((req, to)) = self.props.lock().remove(&seq) {
                        replies.push((to, req, Err(JsError::DirRedirect { hint })));
                    }
                }
                DirEvent::ReadReady { seq, lease } => {
                    // Take the entry out in its own statement: an `if let`
                    // on `self.reads.lock()` would hold the reads guard for
                    // the whole body while it takes `self.replica.lock()`,
                    // inverting the replica→reads order used by
                    // `handle(Msg::DirRead)` and deadlocking the shards.
                    let entry = self.reads.lock().remove(&seq);
                    if let Some((req, to, object)) = entry {
                        let result = self
                            .replica
                            .lock()
                            .state()
                            .location_of(object)
                            .map(|n| Value::I64(n as i64))
                            .ok_or(JsError::NoSuchObject(ObjectId(object)));
                        replies.push((to, req, result));
                    }
                    if shared.obs.is_enabled() {
                        shared
                            .obs
                            .counter("dir.reads", Some(shared.phys.0), "")
                            .inc();
                        if lease {
                            // Served from the leader lease: no heartbeat
                            // round trip stood between request and answer.
                            shared
                                .obs
                                .counter("dir.lease.local_reads", Some(shared.phys.0), "")
                                .inc();
                        }
                    }
                }
                DirEvent::ReadDropped { seq } => {
                    if let Some((req, to, _)) = self.reads.lock().remove(&seq) {
                        replies.push((to, req, Err(JsError::DirRedirect { hint })));
                    }
                }
                DirEvent::LeaderIs { leader, term } => {
                    if let Some(cluster) = shared.dir.as_ref() {
                        cluster.set_leader(leader.map(NodeId));
                    }
                    if shared.obs.is_enabled() {
                        let now = shared.clock.now();
                        shared
                            .obs
                            .tracer()
                            .span("dir.leader", now)
                            .node(shared.phys.0)
                            .attr("leader", leader.map_or(-1, |l| l as i64))
                            .attr("term", term as i64)
                            .finish(now);
                    }
                }
                DirEvent::ElectionStarted { .. } => {
                    if shared.obs.is_enabled() {
                        shared
                            .obs
                            .counter("dir.elections", Some(shared.phys.0), "")
                            .inc();
                    }
                }
                DirEvent::SnapshotTaken { .. } => {
                    if shared.obs.is_enabled() {
                        shared
                            .obs
                            .counter("dir.snapshots", Some(shared.phys.0), "")
                            .inc();
                    }
                }
                DirEvent::Applied { .. } => {}
            }
        }
        for (to, req, result) in replies {
            shared.send_reply(to, req, result);
        }
    }
}

/// Ships consensus messages to peer replicas over the delivery plane,
/// charged their encoded byte length.
fn ship(shared: &NodeShared, out: Vec<(u32, DirMsg)>) {
    for (peer, msg) in out {
        let _ = shared.send(
            AgentAddr::dir(NodeId(peer)),
            Msg::DirConsensus {
                data: msg.to_bytes(),
            },
        );
    }
}

/// The per-replica ticker thread: drives heartbeats and election timeouts
/// off the virtual clock, like `run_na` drives monitoring rounds.
pub(crate) fn run_dir_ticker(shared: Arc<NodeShared>) {
    let Some(host) = shared.dir_host.clone() else {
        return;
    };
    let period = host.tick_period;
    let mut last = shared.clock.now();
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let now = shared.clock.now();
        if now - last >= period {
            last = now;
            host.tick(&shared);
        }
        std::thread::sleep(
            shared
                .clock
                .scale()
                .to_real(period / 2.0)
                .min(Duration::from_millis(2))
                .max(Duration::from_micros(50)),
        );
    }
}

/// Executor-mode replica ticker: a timer task that runs one `tick` per tick
/// period and re-arms itself, replacing the per-replica thread (which polls
/// twice per period but also gates `tick` to once per period).
pub(crate) fn schedule_dir_ticker(shared: Arc<NodeShared>, exec: Arc<jsym_exec::Executor>) {
    let Some(host) = shared.dir_host.clone() else {
        return;
    };
    if shared.shutdown.load(Ordering::Relaxed) {
        return;
    }
    let period = host.tick_period;
    let at = shared.clock.real_deadline(shared.clock.now() + period);
    let exec2 = Arc::clone(&exec);
    exec.spawn_at(
        at,
        Box::new(move || {
            if shared.shutdown.load(Ordering::Relaxed) {
                return;
            }
            host.tick(&shared);
            schedule_dir_ticker(shared, exec2);
        }),
    );
}

// ------------------------------------------------------------------- client

/// Proposes a placement/role command to the directory, retrying through
/// redirects and re-elections. A no-op `Ok(())` when replication is off.
///
/// Commands are idempotent (see `jsym_dir::DirState`), so retrying after an
/// ambiguous failure (timeout with the commit possibly applied) is safe.
pub(crate) fn propose(shared: &NodeShared, cmd: &DirCommand) -> Result<()> {
    let Some(cluster) = shared.dir.as_ref() else {
        return Ok(());
    };
    if shared.obs.is_enabled() {
        shared
            .obs
            .counter("dir.proposals", Some(shared.phys.0), "")
            .inc();
    }
    let bytes = cmd.to_bytes();
    let reply_to = AgentAddr::pub_oa(shared.phys);
    let backoff = retry_backoff(shared);
    let mut last_err = JsError::Timeout;
    for _ in 0..MAX_ROUNDS {
        for target in cluster.candidates() {
            if shared.shutdown.load(Ordering::Relaxed) {
                return Err(JsError::ShuttingDown);
            }
            let req = IdGen::req();
            match shared.call(
                AgentAddr::dir(target),
                req,
                Msg::DirPropose {
                    req,
                    reply_to,
                    cmd: bytes.clone(),
                },
            ) {
                Ok(_) => {
                    cluster.set_leader(Some(target));
                    return Ok(());
                }
                Err(JsError::DirRedirect { hint }) => {
                    cluster.set_leader(hint.map(NodeId));
                    last_err = JsError::DirRedirect { hint };
                }
                Err(e @ (JsError::NodeUnreachable(_) | JsError::Timeout)) => last_err = e,
                Err(e) => return Err(e),
            }
        }
        shared.clock.sleep(backoff);
    }
    if shared.obs.is_enabled() {
        shared
            .obs
            .counter("dir.writethrough_errors", Some(shared.phys.0), "")
            .inc();
    }
    Err(last_err)
}

/// Reads an object's placement from the directory leader (linearizable
/// read-index read). `Err(NoSuchObject)` is returned without retrying, but
/// it is *not* authoritative — the write-through is best-effort, so callers
/// fall back to the origin-authority path on any error.
pub(crate) fn read_location(shared: &NodeShared, obj: ObjectId) -> Result<NodeId> {
    let Some(cluster) = shared.dir.as_ref() else {
        return Err(JsError::NoSuchObject(obj));
    };
    let reply_to = AgentAddr::pub_oa(shared.phys);
    let backoff = retry_backoff(shared);
    let mut last_err = JsError::Timeout;
    for _ in 0..MAX_ROUNDS {
        for target in cluster.candidates() {
            if shared.shutdown.load(Ordering::Relaxed) {
                return Err(JsError::ShuttingDown);
            }
            let req = IdGen::req();
            match shared.call(
                AgentAddr::dir(target),
                req,
                Msg::DirRead {
                    req,
                    reply_to,
                    object: obj.0,
                },
            ) {
                Ok(v) => {
                    cluster.set_leader(Some(target));
                    let node = v
                        .as_i64()
                        .ok_or_else(|| JsError::MethodFailed("bad directory read reply".into()))?;
                    return Ok(NodeId(node as u32));
                }
                Err(JsError::DirRedirect { hint }) => {
                    cluster.set_leader(hint.map(NodeId));
                    last_err = JsError::DirRedirect { hint };
                }
                Err(e @ JsError::NoSuchObject(_)) => return Err(e),
                Err(e @ (JsError::NodeUnreachable(_) | JsError::Timeout)) => last_err = e,
                Err(e) => return Err(e),
            }
        }
        shared.clock.sleep(backoff);
    }
    Err(last_err)
}

/// Virtual-seconds backoff between leader-discovery rounds, floored so the
/// full `MAX_ROUNDS` budget always spans several re-elections in *real*
/// time no matter how aggressive the deployment's time scale is.
fn retry_backoff(shared: &NodeShared) -> f64 {
    RETRY_BACKOFF.max(shared.clock.scale().to_virt(Duration::from_micros(200)))
}

/// Encodes a [`jsym_vda::ManagerScope`] as the directory's opaque scope key:
/// component kind in the high 32 bits, arena index in the low 32.
pub(crate) fn scope_key(scope: jsym_vda::ManagerScope) -> u64 {
    match scope {
        jsym_vda::ManagerScope::Cluster(k) => (1u64 << 32) | k.index() as u64,
        jsym_vda::ManagerScope::Site(k) => (2u64 << 32) | k.index() as u64,
        jsym_vda::ManagerScope::Domain(k) => (3u64 << 32) | k.index() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_orders_candidates_by_leader_hint() {
        let c = DirCluster::new(vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(c.candidates(), vec![NodeId(0), NodeId(1), NodeId(2)]);
        c.set_leader(Some(NodeId(2)));
        assert_eq!(c.candidates(), vec![NodeId(2), NodeId(0), NodeId(1)]);
        // A hint outside the replica set is ignored.
        c.set_leader(Some(NodeId(9)));
        assert_eq!(c.candidates(), vec![NodeId(0), NodeId(1), NodeId(2)]);
    }
}
