//! The public object agent (PubOA).
//!
//! One per node (paper §5.2, Figure 2): hosts object instances in the
//! remote-objects-table, executes their methods, participates in the
//! migration protocol, stores/loads persistent objects and receives codebase
//! artifacts. Long-running handlers execute on worker threads so the node's
//! receiver loop stays responsive — the paper's PubOA similarly runs "one
//! thread for every local AppOA, one thread for all remote AppOAs, one
//! thread for all remote PubOAs".

use crate::class::InvokeCtx;
use crate::error::JsError;
use crate::ids::{AgentAddr, IdGen, ObjectId};
use crate::intern::Sym;
use crate::msg::Msg;
use crate::runtime::{obs_now, spawn_worker, NodeClient, NodeShared, ObjEntry};
use crate::value::{args_wire_size, Value};
use crate::Result;
use jsym_net::NodeId;
use jsym_obs::SpanId;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Handles one PubOA-addressed message.
pub(crate) fn handle(shared: &Arc<NodeShared>, src: NodeId, msg: Msg) {
    match msg {
        Msg::CreateObject {
            req,
            reply_to,
            obj,
            class,
            args,
            origin,
        } => {
            let sh = Arc::clone(shared);
            spawn_worker(shared, "create", move || {
                let result = create_object(&sh, obj, class, &args, origin);
                sh.send_reply(reply_to, req, result);
            });
        }
        Msg::CreateFromState {
            req,
            reply_to,
            obj,
            class,
            state,
            origin,
        } => {
            let sh = Arc::clone(shared);
            spawn_worker(shared, "restore", move || {
                let result = install_from_state(&sh, obj, class, &state, origin);
                sh.send_reply(reply_to, req, result);
            });
        }
        Msg::FreeObject { obj } => {
            if shared.affinity.enabled() {
                shared.affinity.forget(obj.0);
            }
            if shared.objects.lock().remove(&obj).is_some() {
                shared.events.record(
                    shared.clock.now(),
                    crate::RuntimeEvent::ObjectFreed {
                        obj,
                        node: shared.phys,
                    },
                );
            }
        }
        Msg::Invoke {
            req,
            reply_to,
            obj,
            method,
            args,
        } => {
            // Affinity plane: every delivered invocation — mailbox, hook and
            // loopback paths all funnel through here — feeds the decayed
            // caller→object counters. Same-node traffic reinforces the
            // current placement, which is exactly the hysteresis we want.
            if shared.affinity.enabled() {
                shared.affinity.record(
                    src,
                    obj.0,
                    args_wire_size(&args) as u64,
                    shared.clock.now(),
                );
            }
            // Enqueue on the object's executor *from the receiver thread* so
            // same-object invocations run in message-arrival order.
            let entry = shared.objects.lock().get(&obj).cloned();
            match entry {
                Some(entry) => {
                    let sh = Arc::clone(shared);
                    let exec = Arc::clone(&entry.exec);
                    exec.submit(
                        shared,
                        Box::new(move || {
                            let result = execute(&sh, obj, method, &args);
                            if let Some(to) = reply_to {
                                sh.send_reply(to, req, result);
                            }
                        }),
                    );
                }
                None => {
                    if let Some(to) = reply_to {
                        shared.send_reply(to, req, Err(JsError::ObjectMoved(obj)));
                    }
                }
            }
        }
        Msg::MigrateRequest {
            req,
            reply_to,
            obj,
            dst,
            span,
        } => {
            let sh = Arc::clone(shared);
            spawn_worker(shared, "migrate", move || {
                let result = migrate_out(&sh, obj, dst, SpanId::from_wire(span));
                sh.send_reply(reply_to, req, result);
            });
        }
        Msg::MigrateTransfer {
            req,
            reply_to,
            obj,
            class,
            state,
            origin,
            span,
        } => {
            let sh = Arc::clone(shared);
            spawn_worker(shared, "migrate-in", move || {
                let result = migrate_in(&sh, obj, class, &state, origin, SpanId::from_wire(span));
                sh.send_reply(reply_to, req, result);
            });
        }
        Msg::StoreObject {
            req,
            reply_to,
            obj,
            key,
        } => {
            let sh = Arc::clone(shared);
            spawn_worker(shared, "store", move || {
                let result = store_object(&sh, obj, key);
                sh.send_reply(reply_to, req, result);
            });
        }
        Msg::LoadArtifact {
            req,
            reply_to,
            name,
            bytes,
        } => {
            // The transfer already paid its bytes on the wire; installing is
            // bookkeeping plus memory accounting.
            let newly = shared.loaded.lock().insert(name.clone());
            if newly {
                shared.machine.add_runtime_bytes(bytes as u64);
                shared
                    .stats
                    .artifact_bytes
                    .fetch_add(bytes as u64, Ordering::Relaxed);
                shared.events.record(
                    shared.clock.now(),
                    crate::RuntimeEvent::ArtifactLoaded {
                        name,
                        node: shared.phys,
                        bytes,
                    },
                );
            }
            shared.send_reply(reply_to, req, Ok(Value::Null));
        }
        Msg::UnloadArtifact { name, bytes } => {
            if shared.loaded.lock().remove(&name) {
                shared.machine.sub_runtime_bytes(bytes as u64);
            }
        }
        Msg::SysReport {
            from,
            level: _,
            label,
            snapshot,
        } => {
            shared.na.receive_report(from, &label, snapshot);
        }
        Msg::Heartbeat { from } => {
            // Liveness was already recorded by the dispatcher.
            let _ = from;
        }
        Msg::StaticInvoke {
            req,
            reply_to,
            class,
            method,
            args,
        } => {
            // Resolve (or lazily create) the class's static context, then
            // run through its per-context FIFO executor like any object.
            match static_entry(shared, class) {
                Ok(entry) => {
                    let sh = Arc::clone(shared);
                    let exec = Arc::clone(&entry.exec);
                    let instance = Arc::clone(&entry.instance);
                    exec.submit(
                        shared,
                        Box::new(move || {
                            let result = execute_static(&sh, &instance, method, &args);
                            if let Some(to) = reply_to {
                                sh.send_reply(to, req, result);
                            }
                        }),
                    );
                }
                Err(e) => {
                    if let Some(to) = reply_to {
                        shared.send_reply(to, req, Err(e));
                    }
                }
            }
        }
        // Routed elsewhere by the dispatcher.
        Msg::Reply { .. }
        | Msg::WhereIs { .. }
        | Msg::DirConsensus { .. }
        | Msg::DirPropose { .. }
        | Msg::DirRead { .. } => {}
    }
    let _ = src;
}

/// Resolves the per-node static context of `class`, creating it on first
/// use. Selective classloading applies: the class's artifact must be here.
/// Takes an object's instance lock. Uncontended locks stay on the fast
/// path; a contended acquire can stall for a whole method execution
/// (quiesce, §4.6), so it is declared blocking to the executor — a spare
/// worker keeps the pool at capacity. Passthrough on plain threads.
fn lock_instance(
    instance: &parking_lot::Mutex<Box<dyn crate::JsClass>>,
) -> parking_lot::MutexGuard<'_, Box<dyn crate::JsClass>> {
    match instance.try_lock() {
        Some(g) => g,
        None => jsym_exec::blocking(|| instance.lock()),
    }
}

fn static_entry(shared: &Arc<NodeShared>, class: Sym) -> Result<ObjEntry> {
    if let Some(entry) = shared.statics.lock().get(&class).cloned() {
        return Ok(entry);
    }
    check_class_available(shared, class)?;
    let instance = shared.classes.create_static_sym(class)?;
    let mut statics = shared.statics.lock();
    // Double-checked: another worker may have created it meanwhile.
    if let Some(entry) = statics.get(&class).cloned() {
        return Ok(entry);
    }
    let entry = ObjEntry::new(class, crate::ids::AgentAddr::pub_oa(shared.phys), instance);
    statics.insert(class, entry.clone());
    Ok(entry)
}

/// Executes a static method on a node's static context. Static contexts do
/// not migrate, so no moved-object re-check is needed.
fn execute_static(
    shared: &Arc<NodeShared>,
    instance: &Arc<parking_lot::Mutex<Box<dyn crate::JsClass>>>,
    method: Sym,
    args: &[Value],
) -> Result<Value> {
    shared
        .machine
        .compute(shared.cost.invoke_callee(args_wire_size(args)));
    let mut guard = lock_instance(instance);
    let client = NodeClient {
        shared: Arc::clone(shared),
    };
    let mut ctx = InvokeCtx::new(&shared.machine, shared.phys, &client);
    let out = guard.invoke(method.as_str(), args, &mut ctx);
    shared.stats.invocations.fetch_add(1, Ordering::Relaxed);
    out
}

/// Whether `class` may be instantiated here under selective classloading.
fn check_class_available(shared: &NodeShared, class: Sym) -> Result<()> {
    match shared.classes.artifact_of_sym(class)? {
        None => Ok(()), // preloaded system class
        Some(artifact) => {
            if shared.loaded.lock().contains(&artifact) {
                Ok(())
            } else {
                Err(JsError::ClassNotLoaded {
                    class: class.as_str().to_owned(),
                    node: shared.phys,
                })
            }
        }
    }
}

fn create_object(
    shared: &Arc<NodeShared>,
    obj: ObjectId,
    class: Sym,
    args: &[Value],
    origin: AgentAddr,
) -> Result<Value> {
    check_class_available(shared, class)?;
    shared
        .machine
        .compute(shared.cost.create_flops + shared.cost.invoke_callee(args_wire_size(args)));
    let instance = shared.classes.create_sym(class, args)?;
    shared
        .objects
        .lock()
        .insert(obj, ObjEntry::new(class, origin, instance));
    shared.stats.creations.fetch_add(1, Ordering::Relaxed);
    shared.events.record(
        shared.clock.now(),
        crate::RuntimeEvent::ObjectCreated {
            obj,
            class: class.as_str().to_owned(),
            node: shared.phys,
        },
    );
    Ok(Value::Null)
}

fn install_from_state(
    shared: &Arc<NodeShared>,
    obj: ObjectId,
    class: Sym,
    state: &[u8],
    origin: AgentAddr,
) -> Result<Value> {
    check_class_available(shared, class)?;
    shared.machine.compute(shared.cost.state_cost(state.len()));
    let instance = shared.classes.restore_sym(class, state)?;
    shared
        .objects
        .lock()
        .insert(obj, ObjEntry::new(class, origin, instance));
    shared.events.record(
        shared.clock.now(),
        crate::RuntimeEvent::ObjectRestored {
            obj,
            node: shared.phys,
        },
    );
    Ok(Value::Null)
}

/// Executes a method on a hosted object.
fn execute(shared: &Arc<NodeShared>, obj: ObjectId, method: Sym, args: &[Value]) -> Result<Value> {
    // Callee-side dispatch + argument unmarshalling.
    shared
        .machine
        .compute(shared.cost.invoke_callee(args_wire_size(args)));
    let entry = shared
        .objects
        .lock()
        .get(&obj)
        .cloned()
        .ok_or(JsError::ObjectMoved(obj))?;
    let mut instance = lock_instance(&entry.instance);
    // Re-check under the instance lock: a migration may have removed the
    // entry while we waited. Executing now would mutate state that has
    // already been shipped elsewhere.
    if !shared.objects.lock().contains_key(&obj) {
        return Err(JsError::ObjectMoved(obj));
    }
    let client = NodeClient {
        shared: Arc::clone(shared),
    };
    let mut ctx = InvokeCtx::new(&shared.machine, shared.phys, &client);
    let start = obs_now(shared);
    let out = instance.invoke(method.as_str(), args, &mut ctx);
    if shared.obs.is_enabled() {
        shared
            .obs
            .histogram(
                "invoke.exec_seconds",
                Some(shared.phys.0),
                "",
                jsym_obs::bounds::LATENCY_SECONDS,
            )
            .observe(shared.clock.now() - start);
    }
    shared.stats.invocations.fetch_add(1, Ordering::Relaxed);
    out
}

/// Migration, source side (the paper's `pa1`, Figure 3). `parent` is the
/// requesting AppOA's `migrate.request` span, carried over the wire.
fn migrate_out(
    shared: &Arc<NodeShared>,
    obj: ObjectId,
    dst: NodeId,
    parent: Option<SpanId>,
) -> Result<Value> {
    if dst == shared.phys {
        // Migrating to the node it already lives on is a no-op.
        if shared.objects.lock().contains_key(&obj) {
            return Ok(Value::I64(dst.0 as i64));
        }
        return Err(JsError::ObjectMoved(obj));
    }
    // Remove from the table first so new invocations see "moved" and consult
    // the origin AppOA; in-flight methods still hold the instance lock.
    let entry = shared
        .objects
        .lock()
        .remove(&obj)
        .ok_or(JsError::ObjectMoved(obj))?;
    // Quiesce: wait for unfinished method invocations (paper §4.6).
    let quiesce = shared
        .obs
        .tracer()
        .span("migrate.quiesce", obs_now(shared))
        .node(shared.phys.0)
        .parent(parent)
        .attr("obj", obj);
    let state = {
        let instance = lock_instance(&entry.instance);
        instance.snapshot()
    };
    quiesce.finish(obs_now(shared));
    let state = match state {
        Ok(s) => s,
        Err(e) => {
            shared.objects.lock().insert(obj, entry);
            return Err(e);
        }
    };
    let state_bytes = state.len();
    shared.machine.compute(shared.cost.state_cost(state_bytes));
    // Step 2: transfer object to pa2 and await its confirmation (step 3).
    let req = IdGen::req();
    let transfer = shared
        .obs
        .tracer()
        .span("migrate.transfer", obs_now(shared))
        .node(shared.phys.0)
        .parent(parent)
        .attr("bytes", state_bytes);
    let outcome = shared.call(
        AgentAddr::pub_oa(dst),
        req,
        Msg::MigrateTransfer {
            req,
            reply_to: AgentAddr::pub_oa(shared.phys),
            obj,
            class: entry.class,
            state,
            origin: entry.origin,
            span: SpanId::to_wire(transfer.id()),
        },
    );
    transfer.finish(obs_now(shared));
    match outcome {
        Ok(_) => {
            shared.stats.migrations_out.fetch_add(1, Ordering::Relaxed);
            shared.location_cache.lock().remove(&obj);
            shared.events.record(
                shared.clock.now(),
                crate::RuntimeEvent::Migrated {
                    obj,
                    from: shared.phys,
                    to: dst,
                    state_bytes,
                },
            );
            Ok(Value::I64(dst.0 as i64))
        }
        Err(e) => {
            // Failed transfer: the object stays here.
            shared.objects.lock().insert(obj, entry);
            Err(e)
        }
    }
}

/// Migration, destination side (the paper's `pa2`). `parent` is the source
/// PubOA's `migrate.transfer` span, carried over the wire.
fn migrate_in(
    shared: &Arc<NodeShared>,
    obj: ObjectId,
    class: Sym,
    state: &[u8],
    origin: AgentAddr,
    parent: Option<SpanId>,
) -> Result<Value> {
    check_class_available(shared, class)?;
    let install = shared
        .obs
        .tracer()
        .span("migrate.install", obs_now(shared))
        .node(shared.phys.0)
        .parent(parent)
        .attr("obj", obj);
    shared.machine.compute(shared.cost.state_cost(state.len()));
    let instance = shared.classes.restore_sym(class, state)?;
    shared
        .objects
        .lock()
        .insert(obj, ObjEntry::new(class, origin, instance));
    shared.stats.migrations_in.fetch_add(1, Ordering::Relaxed);
    shared.location_cache.lock().remove(&obj);
    install.finish(obs_now(shared));
    Ok(Value::Null)
}

/// Persists an object's state (paper §4.7): only when no method is
/// executing, which the instance lock guarantees.
fn store_object(shared: &Arc<NodeShared>, obj: ObjectId, key: Option<String>) -> Result<Value> {
    let entry = shared
        .objects
        .lock()
        .get(&obj)
        .cloned()
        .ok_or(JsError::ObjectMoved(obj))?;
    let state = {
        let instance = lock_instance(&entry.instance);
        if !shared.objects.lock().contains_key(&obj) {
            return Err(JsError::ObjectMoved(obj));
        }
        instance.snapshot()?
    };
    shared.machine.compute(shared.cost.state_cost(state.len()));
    let key = shared.store.put(key, entry.class.as_str(), state);
    shared.stats.stores.fetch_add(1, Ordering::Relaxed);
    shared.events.record(
        shared.clock.now(),
        crate::RuntimeEvent::ObjectStored {
            obj,
            key: key.clone(),
        },
    );
    Ok(Value::Str(key))
}
