//! Test fixtures: sample distributed classes and shell configurations.
//!
//! Public so integration tests, examples and benches across the workspace
//! can share them; not intended for production use.

use crate::class::{snapshot_state, InvokeCtx, JsClass};
use crate::error::JsError;
use crate::shell::{Deployment, JsShell, MachineConfig};
use crate::value::Value;
use crate::Result;
use jsym_net::{SimClock, TimeScale};
use jsym_sysmon::{LoadModel, LoadProfile, MachineSpec, SimMachine};
use serde::{Deserialize, Serialize};

/// A serializable counter with a handful of exercisable methods.
#[derive(Debug, Serialize, Deserialize)]
pub struct Counter {
    value: i64,
}

impl Counter {
    /// Builds a counter from optional `[initial]` args.
    pub fn from_args(args: &[Value]) -> Self {
        Counter {
            value: args.first().and_then(Value::as_i64).unwrap_or(0),
        }
    }
}

impl JsClass for Counter {
    fn class_name(&self) -> &str {
        "Counter"
    }

    fn invoke(&mut self, method: &str, args: &[Value], ctx: &mut InvokeCtx<'_>) -> Result<Value> {
        match method {
            "add" => {
                let d = args
                    .first()
                    .and_then(Value::as_i64)
                    .ok_or_else(|| JsError::BadArguments("add(i64)".into()))?;
                self.value += d;
                Ok(Value::I64(self.value))
            }
            "get" => Ok(Value::I64(self.value)),
            "set" => {
                self.value = args
                    .first()
                    .and_then(Value::as_i64)
                    .ok_or_else(|| JsError::BadArguments("set(i64)".into()))?;
                Ok(Value::Null)
            }
            "echo" => Ok(args.first().cloned().unwrap_or(Value::Null)),
            "node_name" => Ok(Value::Str(ctx.node_name().to_owned())),
            "compute" => {
                let flops = args
                    .first()
                    .and_then(Value::as_f64)
                    .ok_or_else(|| JsError::BadArguments("compute(f64)".into()))?;
                ctx.compute(flops);
                Ok(Value::F64(ctx.now()))
            }
            // Nested invocation: add `args[1]` to the counter behind the
            // handle in `args[0]` (exercises first-order handles).
            "add_to" => {
                let handle = args
                    .first()
                    .and_then(Value::as_handle)
                    .ok_or_else(|| JsError::BadArguments("add_to(handle, i64)".into()))?;
                let d = args.get(1).cloned().unwrap_or(Value::I64(1));
                ctx.invoke(handle, "add", &[d])
            }
            "fail" => Err(JsError::MethodFailed("requested failure".into())),
            _ => Err(JsError::NoSuchMethod {
                class: "Counter".into(),
                method: method.to_owned(),
            }),
        }
    }

    fn snapshot(&self) -> Result<Vec<u8>> {
        snapshot_state(self)
    }
}

/// A class with bulk state, for migration/persistence cost tests.
#[derive(Debug, Serialize, Deserialize)]
pub struct Blob {
    data: Vec<u8>,
}

impl Blob {
    /// Builds a blob of `[size]` bytes.
    pub fn from_args(args: &[Value]) -> Self {
        let size = args.first().and_then(Value::as_i64).unwrap_or(0).max(0) as usize;
        Blob {
            data: vec![0xAB; size],
        }
    }
}

impl JsClass for Blob {
    fn class_name(&self) -> &str {
        "Blob"
    }

    fn invoke(&mut self, method: &str, args: &[Value], _ctx: &mut InvokeCtx<'_>) -> Result<Value> {
        match method {
            "size" => Ok(Value::I64(self.data.len() as i64)),
            "fill" => {
                let b = args.first().and_then(Value::as_i64).unwrap_or(0) as u8;
                self.data.fill(b);
                Ok(Value::Null)
            }
            "checksum" => Ok(Value::I64(self.data.iter().map(|&b| b as i64).sum::<i64>())),
            _ => Err(JsError::NoSuchMethod {
                class: "Blob".into(),
                method: method.to_owned(),
            }),
        }
    }

    fn snapshot(&self) -> Result<Vec<u8>> {
        snapshot_state(self)
    }
}

/// Registers the test classes with a deployment's class registry.
///
/// `Counter` is a preloaded system class (no codebase needed); `Blob` lives
/// in the `"blob.jar"` artifact and therefore requires selective
/// classloading before it can be created on a node.
pub fn register_test_classes(deployment: &Deployment) {
    deployment
        .classes()
        .register_class::<Counter, _>("Counter", None, |args| Ok(Counter::from_args(args)));
    // Counter's static context: a per-node shared counter (its "static
    // variable"), exercising the statics extension.
    deployment
        .classes()
        .set_static("Counter", || Ok(Box::new(Counter::from_args(&[])) as _))
        .expect("Counter is registered");
    deployment
        .classes()
        .register_class::<Blob, _>("Blob", Some("blob.jar"), |args| Ok(Blob::from_args(args)));
}

/// A three-machine shell running 100 000× real time — the standard unit-test
/// deployment (machines `m0`, `m1`, `m2`, all idle, 100 Mbit links).
pub fn three_node_shell() -> JsShell {
    shell_with_idle_machines(3)
}

/// A shell with `n` idle machines named `m0..m{n-1}`.
pub fn shell_with_idle_machines(n: usize) -> JsShell {
    let mut shell = JsShell::new()
        .time_scale(1e-5)
        .monitor_period(1.0)
        .failure_timeout(1e9); // detection exercised only by tests that set a real timeout
    for i in 0..n {
        shell = shell.add_machine(MachineConfig::idle(&format!("m{i}"), 50.0));
    }
    shell
}

/// A standalone idle machine on a microsecond-scale clock, for unit tests
/// that need an [`InvokeCtx`].
pub fn test_ctx_machine() -> SimMachine {
    SimMachine::new(
        MachineSpec::generic("test-machine", 1000.0, 512.0),
        LoadModel::new(LoadProfile::Idle, 0),
        SimClock::new(TimeScale::new(1e-6)),
    )
}
