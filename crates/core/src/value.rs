//! The value model for method arguments and results.
//!
//! JavaSymphony passes `Object[]` parameter arrays and returns `Object`
//! results through Java serialization. The Rust counterpart is [`Value`]: a
//! closed set of serializable variants with an *analytic wire size* used by
//! the network cost model, so bulk data (e.g. matrix blocks) does not have to
//! be byte-serialized on every in-process hop to be charged correctly.
//!
//! `F32Vec` holds bulk numeric payloads behind an `Arc`, mirroring how a real
//! sender keeps its copy while the receiver gets its own: cloning the value
//! is cheap, the *network* charges the full size.

use crate::ids::ObjectHandle;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A method argument or result.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Java `null` / `void` results.
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    I64(i64),
    /// A 64-bit float.
    F64(f64),
    /// A string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// Bulk `float[]` data (matrix blocks, vectors).
    F32Vec(Arc<Vec<f32>>),
    /// A list of values.
    List(Vec<Value>),
    /// A first-order remote-object handle (paper §5.2).
    Handle(ObjectHandle),
}

impl Value {
    /// Convenience constructor for bulk float data.
    pub fn floats(data: Vec<f32>) -> Value {
        Value::F32Vec(Arc::new(data))
    }

    /// Bytes this value would occupy after Java-style serialization
    /// (tag byte + payload; containers add a length header).
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 2,
            Value::I64(_) | Value::F64(_) => 9,
            Value::Str(s) => 5 + s.len(),
            Value::Bytes(b) => 5 + b.len(),
            Value::F32Vec(v) => 5 + 4 * v.len(),
            Value::List(l) => 5 + l.iter().map(Value::wire_size).sum::<usize>(),
            Value::Handle(_) => 1 + 24,
        }
    }

    /// The integer, if this is `I64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// The float, if this is `F64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The float vector, if this is `F32Vec`.
    pub fn as_floats(&self) -> Option<&Arc<Vec<f32>>> {
        match self {
            Value::F32Vec(v) => Some(v),
            _ => None,
        }
    }

    /// The handle, if this is `Handle`.
    pub fn as_handle(&self) -> Option<ObjectHandle> {
        match self {
            Value::Handle(h) => Some(*h),
            _ => None,
        }
    }

    /// The list, if this is `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// The boolean, if this is `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Vec<f32>> for Value {
    fn from(v: Vec<f32>) -> Self {
        Value::floats(v)
    }
}
impl From<ObjectHandle> for Value {
    fn from(h: ObjectHandle) -> Self {
        Value::Handle(h)
    }
}

/// A method argument list (the paper's `Object[] params`).
pub type Args = Vec<Value>;

/// Total wire size of an argument list.
pub fn args_wire_size(args: &[Value]) -> usize {
    4 + args.iter().map(Value::wire_size).sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{AgentAddr, ObjectId};
    use jsym_net::NodeId;

    #[test]
    fn wire_sizes_track_payload() {
        assert_eq!(Value::Null.wire_size(), 1);
        assert_eq!(Value::I64(5).wire_size(), 9);
        assert_eq!(Value::Str("abc".into()).wire_size(), 8);
        assert_eq!(Value::floats(vec![0.0; 100]).wire_size(), 405);
        let list = Value::List(vec![Value::I64(1), Value::Bool(true)]);
        assert_eq!(list.wire_size(), 5 + 9 + 2);
    }

    #[test]
    fn f32vec_clone_is_shallow() {
        let v = Value::floats(vec![1.0; 1_000_000]);
        let w = v.clone();
        match (&v, &w) {
            (Value::F32Vec(a), Value::F32Vec(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn accessors_return_matching_variants_only() {
        assert_eq!(Value::I64(3).as_i64(), Some(3));
        assert_eq!(Value::I64(3).as_f64(), None);
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        let h = ObjectHandle {
            id: ObjectId(1),
            origin: AgentAddr::pub_oa(NodeId(0)),
        };
        assert_eq!(Value::Handle(h).as_handle(), Some(h));
    }

    #[test]
    fn serde_round_trip() {
        let v = Value::List(vec![
            Value::Null,
            Value::I64(-7),
            Value::F64(1.5),
            Value::Str("hi".into()),
            Value::Bytes(vec![1, 2, 3]),
            Value::floats(vec![0.5, 0.25]),
        ]);
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn args_wire_size_sums_members() {
        let args = vec![Value::I64(1), Value::Str("ab".into())];
        assert_eq!(args_wire_size(&args), 4 + 9 + 7);
        assert_eq!(args_wire_size(&[]), 4);
    }
}
