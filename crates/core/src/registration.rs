//! Application registration (paper §4.1).

use crate::appoa::AppShared;
use crate::codebase::JsCodebase;
use crate::ids::AppId;
use crate::jsobj::{resolve_placement, JsObj, Placement};
use crate::Result;
use jsym_net::NodeId;
use jsym_sysmon::JsConstraints;
use std::sync::Arc;

/// A registered JavaSymphony application ("Every JavaSymphony application
/// first needs to register with the underlying JRS").
///
/// Dropping the registration does *not* unregister — call
/// [`JsRegistration::unregister`] explicitly, as the paper requires the
/// programmer to do.
pub struct JsRegistration {
    app: Arc<AppShared>,
}

impl JsRegistration {
    pub(crate) fn new(app: Arc<AppShared>) -> Self {
        JsRegistration { app }
    }

    pub(crate) fn app(&self) -> Arc<AppShared> {
        Arc::clone(&self.app)
    }

    /// This application's id.
    pub fn app_id(&self) -> AppId {
        self.app.id
    }

    /// The node this application (and its AppOA) runs on —
    /// `JS.getLocalNode()`.
    pub fn local_phys(&self) -> NodeId {
        self.app.home
    }

    /// Creates an empty codebase bound to this application (§4.3).
    pub fn codebase(&self) -> JsCodebase {
        JsCodebase::new(self.app())
    }

    /// `JS.load(key)` — re-creates a persistent object from the external
    /// store (§4.7), placing it per `placement`.
    pub fn load_stored(
        &self,
        key: &str,
        placement: Placement<'_>,
        constraints: Option<&JsConstraints>,
    ) -> Result<JsObj> {
        let node = self.app.node_shared()?;
        let stored = node.store.get(key)?;
        let target = resolve_placement(&self.app, placement, constraints)?;
        let id = self
            .app
            .create_from_state(&stored.class, stored.state, target)?;
        Ok(JsObj::from_parts_at(self.app(), id, stored.class, target))
    }

    /// `reg.unregister()` — frees every object the application created and
    /// releases its book-keeping (§4.1).
    pub fn unregister(&self) -> Result<()> {
        self.app.unregister()
    }
}

impl std::fmt::Debug for JsRegistration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JsRegistration({} on {})", self.app.id, self.app.home)
    }
}
