//! OAS failure recovery (paper §7 future work, implemented).
//!
//! "Future work will address the issue of allowing the object agent system
//! to at least partially recover from certain system failures." The
//! mechanism here: when checkpointing is enabled through the JS-Shell, a
//! supervisor periodically persists every application object (using the
//! §4.7 persistence machinery, under reserved `__ckpt_*` keys), and a
//! recovery watcher subscribes to the architecture registry's failure
//! events. When the NAS declares a node failed, each object that lived
//! there is re-created *under its original object id* from its most recent
//! checkpoint on a surviving machine, and the owning AppOA's
//! local-objects-table is updated — so existing `JsObj` handles keep
//! working. Updates since the last checkpoint are lost: this is the
//! "partial" in the paper's "partially recover".

use crate::appoa::pick_least_loaded;
use crate::error::JsError;
use crate::ids::ObjectId;
use crate::shell::DeploymentInner;
use jsym_vda::VdaEvent;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Reserved key prefix for recovery checkpoints in the object store.
pub(crate) fn ckpt_key(obj: ObjectId) -> String {
    format!("__ckpt_{}", obj.0)
}

/// Checkpoint supervisor: persists every live object each `period` virtual
/// seconds.
pub(crate) fn run_checkpointer(deployment: Weak<DeploymentInner>, period: f64) {
    loop {
        let Some(d) = deployment.upgrade() else {
            return;
        };
        if d.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let deadline = d.clock.now() + period;
        while d.clock.now() < deadline {
            if d.shutdown.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        checkpoint_round(&d);
    }
}

/// One checkpoint round. Returns how many objects were persisted; exposed
/// crate-internally so tests can drive rounds deterministically.
pub(crate) fn checkpoint_round(d: &Arc<DeploymentInner>) -> usize {
    let span = d.obs.tracer().span(
        "checkpoint.round",
        if d.obs.is_enabled() {
            d.clock.now()
        } else {
            0.0
        },
    );
    let apps: Vec<_> = d.apps.read().values().cloned().collect();
    let mut saved = 0;
    for app in apps {
        let objects: Vec<ObjectId> = app.objects.lock().keys().copied().collect();
        for obj in objects {
            // Skip objects on machines already known dead — their state is
            // whatever the last checkpoint captured.
            if let Some(loc) = app.location_of(obj) {
                if d.vda.is_failed(loc) {
                    continue;
                }
            }
            if app.store_object(obj, Some(&ckpt_key(obj))).is_ok() {
                saved += 1;
            }
        }
    }
    span.attr("saved", saved).finish(if d.obs.is_enabled() {
        d.clock.now()
    } else {
        0.0
    });
    saved
}

/// Recovery watcher: reacts to `NodeFailed` events from the architecture
/// registry (fed by the NAS failure detector).
pub(crate) fn run_recovery(deployment: Weak<DeploymentInner>) {
    let events = {
        let Some(d) = deployment.upgrade() else {
            return;
        };
        d.vda.subscribe()
    };
    loop {
        {
            let Some(d) = deployment.upgrade() else {
                return;
            };
            if d.shutdown.load(Ordering::Relaxed) {
                return;
            }
        }
        match events.recv_timeout(Duration::from_millis(20)) {
            Ok(VdaEvent::NodeFailed { phys }) => {
                let Some(d) = deployment.upgrade() else {
                    return;
                };
                d.events.record(
                    d.clock.now(),
                    crate::RuntimeEvent::NodeFailed { node: phys },
                );
                recover_from(&d, phys);
            }
            Ok(VdaEvent::ManagerChanged {
                scope,
                new_manager,
                takeover: true,
            }) => {
                let Some(d) = deployment.upgrade() else {
                    return;
                };
                if d.obs.is_enabled() {
                    let t = d.clock.now();
                    d.obs
                        .tracer()
                        .span("failover.takeover", t)
                        .attr("scope", format!("{scope:?}"))
                        .attr("new_manager", format!("{new_manager:?}"))
                        .finish(t);
                }
            }
            Ok(_) => {}
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Re-creates every checkpointed object that lived on `dead` on surviving
/// machines. Returns how many objects were recovered.
pub(crate) fn recover_from(d: &Arc<DeploymentInner>, dead: jsym_net::NodeId) -> usize {
    let span = d
        .obs
        .tracer()
        .span(
            "recover.node",
            if d.obs.is_enabled() {
                d.clock.now()
            } else {
                0.0
            },
        )
        .node(dead.0)
        .attr("dead", dead);
    let survivors: Vec<jsym_net::NodeId> = d
        .pool
        .ids()
        .into_iter()
        .filter(|&m| m != dead && !d.vda.is_failed(m))
        .collect();
    if survivors.is_empty() {
        span.attr("recovered", 0).finish(if d.obs.is_enabled() {
            d.clock.now()
        } else {
            0.0
        });
        return 0;
    }
    let apps: Vec<_> = d.apps.read().values().cloned().collect();
    let mut recovered = 0;
    for app in apps {
        for obj in app.objects_on(dead) {
            let Ok(stored) = d.store.get(&ckpt_key(obj)) else {
                continue; // never checkpointed: lost, as in the paper today
            };
            // Least-loaded survivor first; skip nodes missing the class's
            // artifact and try the next.
            let mut candidates = survivors.clone();
            while !candidates.is_empty() {
                let Ok(target) = pick_least_loaded(&d.pool, &candidates, None) else {
                    break;
                };
                match app.restore_object_at(obj, &stored.class, stored.state.clone(), target) {
                    Ok(()) => {
                        recovered += 1;
                        d.events.record(
                            d.clock.now(),
                            crate::RuntimeEvent::Recovered {
                                obj,
                                from: dead,
                                to: target,
                            },
                        );
                        break;
                    }
                    Err(JsError::ClassNotLoaded { .. }) => {
                        candidates.retain(|&c| c != target);
                    }
                    Err(_) => break,
                }
            }
        }
    }
    span.attr("recovered", recovered)
        .finish(if d.obs.is_enabled() {
            d.clock.now()
        } else {
            0.0
        });
    recovered
}
