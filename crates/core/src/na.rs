//! The network agent (NA) and the network agent system (NAS).
//!
//! Paper §5.1: every node runs a network agent that periodically samples the
//! machine's system parameters, forwards them to its cluster manager (which
//! averages them and forwards the averages to the site manager, which
//! forwards to the domain manager), exchanges heartbeats with its managers
//! and members, and declares nodes failed when they stay silent beyond the
//! failure timeout — upon which a backup manager takes over.

use crate::ids::AgentAddr;
use crate::msg::{Msg, ReportLevel};
use crate::runtime::NodeShared;
use jsym_net::{NodeId, VirtTime};
use jsym_sysmon::{aggregate, ParamHistory, SysSnapshot};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Monitoring configuration (set through the JS-Shell).
#[derive(Clone, Copy, Debug)]
pub(crate) struct NaConfig {
    /// Seconds (virtual) between monitoring rounds.
    pub monitor_period: f64,
    /// Virtual seconds of silence after which a peer is declared failed.
    pub failure_timeout: f64,
    /// Snapshots kept in the local history ring.
    pub history: usize,
}

impl Default for NaConfig {
    fn default() -> Self {
        NaConfig {
            monitor_period: 2.0,
            failure_timeout: 10.0,
            history: 16,
        }
    }
}

/// Runtime-adjustable monitoring knobs (f64 seconds stored as bits).
pub(crate) struct NaKnobs {
    monitor_period: std::sync::atomic::AtomicU64,
    failure_timeout: std::sync::atomic::AtomicU64,
}

impl NaKnobs {
    fn new(config: &NaConfig) -> Self {
        NaKnobs {
            monitor_period: std::sync::atomic::AtomicU64::new(config.monitor_period.to_bits()),
            failure_timeout: std::sync::atomic::AtomicU64::new(config.failure_timeout.to_bits()),
        }
    }

    pub(crate) fn monitor_period(&self) -> f64 {
        f64::from_bits(self.monitor_period.load(Ordering::Relaxed))
    }

    pub(crate) fn set_monitor_period(&self, secs: f64) {
        self.monitor_period.store(secs.to_bits(), Ordering::Relaxed);
    }

    pub(crate) fn failure_timeout(&self) -> f64 {
        f64::from_bits(self.failure_timeout.load(Ordering::Relaxed))
    }

    pub(crate) fn set_failure_timeout(&self, secs: f64) {
        self.failure_timeout
            .store(secs.to_bits(), Ordering::Relaxed);
    }
}

/// Per-node NAS state.
pub(crate) struct NaState {
    /// Boot-time configuration (the live values are in `knobs`).
    #[allow(dead_code)]
    pub config: NaConfig,
    /// Live knobs (paper §5.1: measurement periods and the failure timeout
    /// are "changeable under JS-Shell").
    pub knobs: NaKnobs,
    /// Most recent local snapshot.
    pub latest: Mutex<Option<SysSnapshot>>,
    /// Short local history ring.
    pub history: Mutex<ParamHistory>,
    /// Latest node-level report per reporting machine (when this node is a
    /// manager).
    pub node_reports: Mutex<HashMap<NodeId, SysSnapshot>>,
    /// Aggregates this node computed as a manager, keyed by component label.
    pub aggregated: Mutex<HashMap<String, SysSnapshot>>,
    /// Aggregates received from lower-level managers, keyed by label.
    pub received_aggregates: Mutex<HashMap<String, SysSnapshot>>,
    /// Virtual time each peer was last heard from.
    pub last_heard: Mutex<HashMap<NodeId, VirtTime>>,
    /// Peers this node has already declared failed (suppress repeats).
    pub declared_failed: Mutex<HashSet<NodeId>>,
    /// Monitoring rounds completed (for tests/benches).
    pub rounds: std::sync::atomic::AtomicU64,
    /// Generation of the executor-mode monitor timer chain. Re-arming
    /// (e.g. `set_monitor_period`) bumps this; a fired timer task whose
    /// captured generation no longer matches is stale and dies instead of
    /// running a duplicate round and re-arming a second chain.
    pub timer_gen: std::sync::atomic::AtomicU64,
}

impl NaState {
    pub(crate) fn new(config: NaConfig) -> Self {
        NaState {
            knobs: NaKnobs::new(&config),
            config,
            latest: Mutex::new(None),
            history: Mutex::new(ParamHistory::new(config.history.max(1))),
            node_reports: Mutex::new(HashMap::new()),
            aggregated: Mutex::new(HashMap::new()),
            received_aggregates: Mutex::new(HashMap::new()),
            last_heard: Mutex::new(HashMap::new()),
            declared_failed: Mutex::new(HashSet::new()),
            rounds: std::sync::atomic::AtomicU64::new(0),
            timer_gen: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Records that `peer` was heard from at `now` (any message counts).
    pub(crate) fn heard(&self, peer: NodeId, now: VirtTime) {
        self.last_heard.lock().insert(peer, now);
    }

    /// Stores an incoming monitoring report.
    pub(crate) fn receive_report(&self, from: NodeId, label: &str, snapshot: SysSnapshot) {
        if label.is_empty() {
            self.node_reports.lock().insert(from, snapshot);
        } else {
            self.received_aggregates
                .lock()
                .insert(label.to_owned(), snapshot);
        }
    }
}

/// The NA thread body: monitoring, reporting, aggregation, heartbeats and
/// failure detection for one node.
pub(crate) fn run_na(shared: Arc<NodeShared>, vda: jsym_vda::VdaRegistry) {
    loop {
        // Wait one period, re-reading the (JS-Shell-adjustable) knob every
        // slice so a shortened period takes effect immediately, and checking
        // the shutdown flag so teardown stays prompt.
        let started = shared.clock.now();
        loop {
            if shared.shutdown.load(Ordering::Relaxed) {
                return;
            }
            let period = shared.na.knobs.monitor_period();
            if shared.clock.now() - started >= period {
                break;
            }
            std::thread::sleep(
                Duration::from_millis(2).min(shared.clock.scale().to_real(period.max(0.001))),
            );
        }
        monitor_round(&shared, &vda);
    }
}

/// Executor-mode NA: instead of a dedicated thread sleeping in slices, each
/// round is a timer task that runs `monitor_round` and re-arms itself one
/// period ahead. `set_monitor_period` re-arms immediately with the new
/// period by bumping the chain's generation counter and starting a fresh
/// chain; the superseded chain notices the stale generation when its timer
/// fires and dies without running a duplicate round (DESIGN.md §13).
pub(crate) fn schedule_monitor(
    shared: Arc<NodeShared>,
    vda: jsym_vda::VdaRegistry,
    exec: Arc<jsym_exec::Executor>,
) {
    let gen = shared.na.timer_gen.load(Ordering::Relaxed);
    schedule_monitor_gen(shared, vda, exec, gen);
}

fn schedule_monitor_gen(
    shared: Arc<NodeShared>,
    vda: jsym_vda::VdaRegistry,
    exec: Arc<jsym_exec::Executor>,
    gen: u64,
) {
    if shared.shutdown.load(Ordering::Relaxed) || shared.na.timer_gen.load(Ordering::Relaxed) != gen
    {
        return;
    }
    let period = shared.na.knobs.monitor_period().max(1e-4);
    let at = shared.clock.real_deadline(shared.clock.now() + period);
    let exec2 = Arc::clone(&exec);
    exec.spawn_at(
        at,
        Box::new(move || {
            if shared.shutdown.load(Ordering::Relaxed)
                || shared.na.timer_gen.load(Ordering::Relaxed) != gen
            {
                return;
            }
            monitor_round(&shared, &vda);
            schedule_monitor_gen(shared, vda, exec2, gen);
        }),
    );
}

/// One monitoring round. Public within the crate so tests and benches can
/// drive rounds deterministically.
pub(crate) fn monitor_round(shared: &Arc<NodeShared>, vda: &jsym_vda::VdaRegistry) {
    let now = shared.clock.now();
    let span = shared
        .obs
        .tracer()
        .span("na.round", if shared.obs.is_enabled() { now } else { 0.0 })
        .node(shared.phys.0);

    // 1. Sample the local machine.
    let snap = shared.machine.snapshot();
    *shared.na.latest.lock() = Some(snap.clone());
    shared.na.history.lock().push(snap.clone());
    if shared.obs.is_enabled() {
        shared
            .obs
            .gauge("pool.transient_workers", Some(shared.phys.0), "")
            .set(shared.workers.transient_spawns() as f64);
        shared
            .obs
            .gauge("pool.overflow.active", Some(shared.phys.0), "")
            .set(shared.workers.overflow_active() as f64);
    }

    // 2. Work out this node's monitoring relationships.
    let view = vda.monitor_view(shared.phys);

    // 3. Aggregate the components this node manages (averaging, §5.1).
    let mut my_aggregates: Vec<(String, SysSnapshot)> = Vec::new();
    {
        let reports = shared.na.node_reports.lock();
        for (label, members) in &view.aggregates {
            let snaps: Vec<SysSnapshot> = members
                .iter()
                .filter_map(|m| {
                    if *m == shared.phys {
                        Some(snap.clone())
                    } else {
                        reports.get(m).cloned()
                    }
                })
                .collect();
            if !snaps.is_empty() {
                my_aggregates.push((label.clone(), aggregate::average(&snaps)));
            }
        }
    }
    {
        let mut agg = shared.na.aggregated.lock();
        for (label, s) in &my_aggregates {
            agg.insert(label.clone(), s.clone());
        }
    }

    // 4. Report upward: node-level snapshot and any aggregates.
    let reports = shared.obs.counter("na.reports", Some(shared.phys.0), "");
    for &mgr in &view.report_to {
        reports.add(1 + my_aggregates.len() as u64);
        let _ = shared.send(
            AgentAddr::pub_oa(mgr),
            Msg::SysReport {
                from: shared.phys,
                level: ReportLevel::Node,
                label: String::new(),
                snapshot: snap.clone(),
            },
        );
        for (label, s) in &my_aggregates {
            let _ = shared.send(
                AgentAddr::pub_oa(mgr),
                Msg::SysReport {
                    from: shared.phys,
                    level: ReportLevel::Cluster,
                    label: label.clone(),
                    snapshot: s.clone(),
                },
            );
        }
    }

    // 5. Heartbeats to everyone who watches us (members ↔ managers).
    shared
        .obs
        .counter("na.heartbeats", Some(shared.phys.0), "")
        .add(view.expects_from.len() as u64);
    for &peer in &view.expects_from {
        let _ = shared.send(
            AgentAddr::pub_oa(peer),
            Msg::Heartbeat { from: shared.phys },
        );
    }

    // 6. Failure detection: peers silent past the timeout are declared
    //    failed; the registry promotes backup managers and releases the
    //    node's virtual components.
    let timeout = shared.na.knobs.failure_timeout();
    let mut to_fail: Vec<NodeId> = Vec::new();
    {
        let mut heard = shared.na.last_heard.lock();
        let declared = shared.na.declared_failed.lock();
        for &peer in &view.expects_from {
            if declared.contains(&peer) {
                continue;
            }
            match heard.get(&peer) {
                Some(&t) if now - t > timeout => to_fail.push(peer),
                Some(_) => {}
                None => {
                    // Start the grace period at first expectation.
                    heard.insert(peer, now);
                }
            }
        }
    }
    for peer in to_fail {
        shared.na.declared_failed.lock().insert(peer);
        // Stale location-cache entries pointing at the dead peer would
        // send nested calls into NodeUnreachable; recovery may re-place
        // its objects, so force the next resolution to ask afresh.
        shared.location_cache.lock().retain(|_, &mut l| l != peer);
        if shared.obs.is_enabled() {
            shared
                .obs
                .counter("na.failures_declared", Some(shared.phys.0), "")
                .inc();
            let t = shared.clock.now();
            shared
                .obs
                .tracer()
                .span("na.failure_declared", t)
                .node(shared.phys.0)
                .attr("peer", peer)
                .finish(t);
        }
        vda.handle_phys_failure(peer);
        // Record the failure in the replicated directory too, so surviving
        // replicas agree on the failed set. Off the NA thread: a directory
        // election in progress must not stall monitoring rounds.
        if shared.dir.is_some() {
            let s = Arc::clone(shared);
            crate::runtime::spawn_worker(shared, "dir-mark-failed", move || {
                let _ = crate::dir::propose(&s, &jsym_dir::DirCommand::MarkFailed { node: peer.0 });
            });
        }
    }

    span.finish(crate::runtime::obs_now(shared));
    shared.na.rounds.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heard_and_reports_update_state() {
        let na = NaState::new(NaConfig::default());
        na.heard(NodeId(3), 12.0);
        assert_eq!(na.last_heard.lock().get(&NodeId(3)), Some(&12.0));

        let mut s = SysSnapshot::empty(1.0);
        s.set(jsym_sysmon::SysParam::IdlePct, 80.0);
        na.receive_report(NodeId(3), "", s.clone());
        assert!(na.node_reports.lock().contains_key(&NodeId(3)));
        na.receive_report(NodeId(3), "vc0", s);
        assert!(na.received_aggregates.lock().contains_key("vc0"));
    }

    #[test]
    fn default_config_is_sane() {
        let c = NaConfig::default();
        assert!(c.failure_timeout > c.monitor_period * 2.0);
        assert!(c.history > 0);
    }
}
