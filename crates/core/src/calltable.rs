//! Request/reply correlation and asynchronous result handles.
//!
//! The paper's AppOA keeps "result objects for invoked methods" in its
//! local-objects-table and runs "one thread for every asynchronous method
//! invocation in order to overcome blocking Java/RMI". In Rust we invert
//! this: the invocation is sent asynchronously and a [`ResultHandle`] wraps a
//! slot that the node's receiver thread completes when the reply arrives —
//! same observable semantics (`isReady`/`getResult`), no thread per call.

use crate::error::JsError;
use crate::ids::ReqId;
use crate::value::Value;
use crate::Result;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct SlotInner {
    state: Mutex<Option<Result<Value>>>,
    cond: Condvar,
}

/// A completion slot shared between the waiter and the reply path.
#[derive(Clone)]
pub(crate) struct Slot {
    inner: Arc<SlotInner>,
}

impl Slot {
    pub(crate) fn new() -> Self {
        Slot {
            inner: Arc::new(SlotInner {
                state: Mutex::new(None),
                cond: Condvar::new(),
            }),
        }
    }

    /// Fills the slot; later completions are ignored (first reply wins).
    pub(crate) fn complete(&self, result: Result<Value>) {
        let mut st = self.inner.state.lock();
        if st.is_none() {
            *st = Some(result);
            self.inner.cond.notify_all();
        }
    }

    pub(crate) fn is_ready(&self) -> bool {
        self.inner.state.lock().is_some()
    }

    /// Blocks until the slot is filled or `timeout` (real time) elapses.
    ///
    /// This is the one choke point where a runtime task parks waiting for a
    /// reply, so it is where executor-mode capacity compensation happens:
    /// `jsym_exec::blocking` tells the work-stealing pool this worker is
    /// about to stall (a spare takes over) and is a free passthrough on
    /// plain threads.
    pub(crate) fn wait(&self, timeout: Duration) -> Result<Value> {
        jsym_exec::blocking(|| {
            let deadline = Instant::now() + timeout;
            let mut st = self.inner.state.lock();
            while st.is_none() {
                if self.inner.cond.wait_until(&mut st, deadline).timed_out() {
                    return Err(JsError::Timeout);
                }
            }
            st.as_ref().expect("filled").clone()
        })
    }

    /// Non-blocking read of the result, if present.
    pub(crate) fn peek(&self) -> Option<Result<Value>> {
        self.inner.state.lock().clone()
    }
}

/// Pending-call table of one node runtime: maps request ids to slots.
#[derive(Default)]
pub(crate) struct CallTable {
    pending: Mutex<HashMap<ReqId, Slot>>,
}

impl CallTable {
    pub(crate) fn new() -> Self {
        CallTable::default()
    }

    /// Registers a new pending request, returning its slot.
    pub(crate) fn register(&self, req: ReqId) -> Slot {
        let slot = Slot::new();
        self.pending.lock().insert(req, slot.clone());
        slot
    }

    /// Completes (and removes) a pending request. Returns `false` for
    /// unknown requests (late replies after timeout cleanup).
    pub(crate) fn complete(&self, req: ReqId, result: Result<Value>) -> bool {
        match self.pending.lock().remove(&req) {
            Some(slot) => {
                slot.complete(result);
                true
            }
            None => false,
        }
    }

    /// Drops a pending request without completing it (caller gave up).
    pub(crate) fn forget(&self, req: ReqId) {
        self.pending.lock().remove(&req);
    }

    /// Fails every pending request (deployment shutdown, node death).
    pub(crate) fn fail_all(&self, err: JsError) {
        let drained: Vec<Slot> = self.pending.lock().drain().map(|(_, s)| s).collect();
        for slot in drained {
            slot.complete(Err(err.clone()));
        }
    }

    /// Number of outstanding requests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.pending.lock().len()
    }
}

/// Retry hook used when a reply reports that the object has migrated: the
/// handle re-issues the invocation against the object's new location.
pub(crate) type Reissue = dyn Fn() -> Result<Slot> + Send + Sync;

/// Handle to the future result of an asynchronous invocation (paper §4.5).
///
/// `is_ready()` polls without blocking; `get_result()` blocks until the
/// result arrives. If the underlying reply says the object migrated while
/// the call was in flight, the handle transparently re-issues the invocation
/// (paper Figure 4) — callers never see `ObjectMoved`.
pub struct ResultHandle {
    slot: Mutex<Slot>,
    reissue: Arc<Reissue>,
    timeout: Duration,
    /// Post-receive cost hook (result unmarshalling on the caller's node).
    on_receive: Box<dyn Fn(&Value) + Send + Sync>,
}

impl ResultHandle {
    pub(crate) fn new(
        slot: Slot,
        reissue: Arc<Reissue>,
        timeout: Duration,
        on_receive: Box<dyn Fn(&Value) + Send + Sync>,
    ) -> Self {
        ResultHandle {
            slot: Mutex::new(slot),
            reissue,
            timeout,
            on_receive,
        }
    }

    /// `handle.isReady()` — whether the result has arrived. A reply that
    /// reports a migrated object triggers a transparent re-issue and reads
    /// as "not ready yet".
    pub fn is_ready(&self) -> bool {
        let current = self.slot.lock().clone();
        match current.peek() {
            None => false,
            Some(Err(JsError::ObjectMoved(_))) => {
                if let Ok(new_slot) = (self.reissue)() {
                    *self.slot.lock() = new_slot;
                }
                false
            }
            Some(_) => true,
        }
    }

    /// `handle.getResult()` — blocks until the result is available.
    pub fn get_result(&self) -> Result<Value> {
        let deadline = Instant::now() + self.timeout;
        loop {
            let current = self.slot.lock().clone();
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .unwrap_or(Duration::ZERO);
            match current.wait(remaining) {
                Err(JsError::ObjectMoved(_)) => {
                    let new_slot = (self.reissue)()?;
                    *self.slot.lock() = new_slot;
                }
                Ok(v) => {
                    (self.on_receive)(&v);
                    return Ok(v);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl std::fmt::Debug for ResultHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ResultHandle(ready: {})", self.slot.lock().is_ready())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IdGen;

    #[test]
    fn slot_completes_once() {
        let s = Slot::new();
        assert!(!s.is_ready());
        s.complete(Ok(Value::I64(1)));
        s.complete(Ok(Value::I64(2))); // ignored
        assert_eq!(s.wait(Duration::from_secs(1)).unwrap(), Value::I64(1));
    }

    #[test]
    fn slot_wait_times_out() {
        let s = Slot::new();
        let t0 = Instant::now();
        assert_eq!(s.wait(Duration::from_millis(30)), Err(JsError::Timeout));
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn slot_wakes_cross_thread() {
        let s = Slot::new();
        let s2 = s.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            s2.complete(Ok(Value::Bool(true)));
        });
        assert_eq!(s.wait(Duration::from_secs(5)).unwrap(), Value::Bool(true));
        h.join().unwrap();
    }

    #[test]
    fn table_completes_and_forgets() {
        let t = CallTable::new();
        let r1 = IdGen::req();
        let r2 = IdGen::req();
        let s1 = t.register(r1);
        let _s2 = t.register(r2);
        assert_eq!(t.len(), 2);
        assert!(t.complete(r1, Ok(Value::Null)));
        assert!(s1.is_ready());
        assert!(!t.complete(r1, Ok(Value::Null)), "double complete rejected");
        t.forget(r2);
        assert_eq!(t.len(), 0);
        assert!(!t.complete(r2, Ok(Value::Null)));
    }

    #[test]
    fn fail_all_poisons_pending() {
        let t = CallTable::new();
        let r = IdGen::req();
        let s = t.register(r);
        t.fail_all(JsError::ShuttingDown);
        assert_eq!(
            s.wait(Duration::from_millis(10)),
            Err(JsError::ShuttingDown)
        );
    }

    fn noop_handle(slot: Slot) -> ResultHandle {
        ResultHandle::new(
            slot,
            Arc::new(|| Ok(Slot::new())),
            Duration::from_secs(1),
            Box::new(|_| {}),
        )
    }

    #[test]
    fn handle_reports_readiness_and_result() {
        let slot = Slot::new();
        let h = noop_handle(slot.clone());
        assert!(!h.is_ready());
        slot.complete(Ok(Value::I64(9)));
        assert!(h.is_ready());
        assert_eq!(h.get_result().unwrap(), Value::I64(9));
        // Results are re-readable (the paper's handles are, too).
        assert_eq!(h.get_result().unwrap(), Value::I64(9));
    }

    #[test]
    fn handle_reissues_on_moved_object() {
        use crate::ids::ObjectId;
        let first = Slot::new();
        first.complete(Err(JsError::ObjectMoved(ObjectId(1))));
        let second = Slot::new();
        second.complete(Ok(Value::I64(42)));
        let second_clone = second.clone();
        let h = ResultHandle::new(
            first,
            Arc::new(move || Ok(second_clone.clone())),
            Duration::from_secs(1),
            Box::new(|_| {}),
        );
        assert_eq!(h.get_result().unwrap(), Value::I64(42));
    }

    #[test]
    fn handle_propagates_real_errors() {
        let slot = Slot::new();
        slot.complete(Err(JsError::Timeout));
        let h = noop_handle(slot);
        assert_eq!(h.get_result(), Err(JsError::Timeout));
    }
}
