//! # jsym-col — chunked distributed arrays and teamed collectives
//!
//! JavaSymphony applications (CLUSTER 2000, §5) distribute regular data —
//! matrix rows, grid blocks — across the cluster by hand: one remote object
//! per node, explicit index arithmetic, and a per-object invocation loop.
//! This crate packages that pattern as [`DistCol<T>`], a chunked distributed
//! array:
//!
//! * an array of `len` elements is split into **chunks**, each held by a
//!   remote object placed on an explicit node ([`ChunkSpec`]); chunk
//!   locations are registered in the runtime's directory-aware location
//!   tables like any other object, so lookups and migration work unchanged;
//! * **teamed collectives** — [`DistCol::scatter`], [`DistCol::gather`],
//!   [`DistCol::reduce`], [`DistCol::map_chunks`] — issue one `ainvoke` per
//!   chunk *before* waiting on any reply, so same-destination requests fall
//!   into the same coalescing window when RMI batching
//!   (`JsShell::rmi_batching`) is enabled and share one modeled wire charge;
//! * **bulk relocation** ([`DistCol::relocate`]) migrates every chunk
//!   overlapping a range concurrently, so same-link state transfers batch
//!   into one transfer instead of paying per-chunk latency.
//!
//! Chunks are instances of any registered class that speaks the small
//! *chunk protocol* (`col_set` / `col_get` / `col_reduce`); the built-in
//! [`ColChunk`] class implements it for plain element storage, and richer
//! classes (e.g. the cluster workloads' `Matrix`) add their own compute
//! methods on top and drive them through [`DistCol::map_chunks_with`].
//!
//! Reductions over `i64` are exact (integer arithmetic is associative);
//! floating-point reductions fold per chunk and then across chunks in chunk
//! order, which is deterministic but may differ from a strict left-to-right
//! fold by rounding.

#![warn(missing_docs)]

use jsym_core::{
    Deployment, InvokeCtx, JsClass, JsError, JsObj, JsRegistration, MigrateTarget, Placement,
    Result, Value,
};
use jsym_net::NodeId;
use serde::{Deserialize, Serialize};
use std::marker::PhantomData;
use std::ops::Range;

/// Class name of the built-in [`ColChunk`] storage class.
pub const COL_CHUNK_CLASS: &str = "jsym.ColChunk";

/// Combining operator for [`DistCol::reduce`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise addition.
    Sum,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
}

impl ReduceOp {
    /// Wire name of the operator, as passed to a chunk's `col_reduce`.
    pub fn name(self) -> &'static str {
        match self {
            ReduceOp::Sum => "sum",
            ReduceOp::Max => "max",
            ReduceOp::Min => "min",
        }
    }
}

/// Element types a [`DistCol`] can hold.
///
/// The encoding is self-describing ([`Value`] variants carry their type), so
/// the generic [`ColChunk`] class can reduce a chunk without knowing `T`.
pub trait ColElem: Copy + Send + Sync + std::fmt::Debug + 'static {
    /// Encodes a slice of elements as a wire [`Value`].
    fn encode(slice: &[Self]) -> Value;
    /// Decodes a chunk payload produced by [`ColElem::encode`].
    fn decode(v: &Value) -> Result<Vec<Self>>;
    /// Decodes a scalar reduction partial.
    fn decode_scalar(v: &Value) -> Result<Self>;
    /// Combines two reduction partials.
    fn combine(op: ReduceOp, a: Self, b: Self) -> Self;
}

fn decode_err(want: &str, got: &Value) -> JsError {
    JsError::BadArguments(format!("expected {want} chunk payload, got {got:?}"))
}

impl ColElem for f32 {
    fn encode(slice: &[Self]) -> Value {
        Value::floats(slice.to_vec())
    }

    fn decode(v: &Value) -> Result<Vec<Self>> {
        match v {
            Value::F32Vec(data) => Ok(data.as_ref().clone()),
            Value::Null => Ok(Vec::new()),
            other => Err(decode_err("F32Vec", other)),
        }
    }

    fn decode_scalar(v: &Value) -> Result<Self> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| decode_err("float scalar", v))
    }

    fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
        match op {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

impl ColElem for f64 {
    fn encode(slice: &[Self]) -> Value {
        Value::List(slice.iter().map(|&x| Value::F64(x)).collect())
    }

    fn decode(v: &Value) -> Result<Vec<Self>> {
        match v {
            Value::List(items) => items
                .iter()
                .map(|item| item.as_f64().ok_or_else(|| decode_err("F64 list", item)))
                .collect(),
            Value::Null => Ok(Vec::new()),
            other => Err(decode_err("F64 list", other)),
        }
    }

    fn decode_scalar(v: &Value) -> Result<Self> {
        v.as_f64().ok_or_else(|| decode_err("float scalar", v))
    }

    fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
        match op {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

impl ColElem for i64 {
    fn encode(slice: &[Self]) -> Value {
        Value::List(slice.iter().map(|&x| Value::I64(x)).collect())
    }

    fn decode(v: &Value) -> Result<Vec<Self>> {
        match v {
            Value::List(items) => items
                .iter()
                .map(|item| item.as_i64().ok_or_else(|| decode_err("I64 list", item)))
                .collect(),
            Value::Null => Ok(Vec::new()),
            other => Err(decode_err("I64 list", other)),
        }
    }

    fn decode_scalar(v: &Value) -> Result<Self> {
        v.as_i64().ok_or_else(|| decode_err("integer scalar", v))
    }

    fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
        match op {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

/// The built-in chunk storage class: holds one chunk's elements as a
/// [`Value`] and implements the chunk protocol (`col_set`, `col_get`,
/// `col_len`, `col_reduce`).
#[derive(Serialize, Deserialize)]
pub struct ColChunk {
    data: Value,
}

fn chunk_len(data: &Value) -> usize {
    match data {
        Value::F32Vec(v) => v.len(),
        Value::List(items) => items.len(),
        Value::Null => 0,
        _ => 1,
    }
}

fn reduce_payload(data: &Value, op: &str) -> Result<Value> {
    fn fold_f64(mut iter: impl Iterator<Item = f64>, op: &str) -> Option<f64> {
        let first = iter.next()?;
        Some(iter.fold(first, |a, b| match op {
            "max" => a.max(b),
            "min" => a.min(b),
            _ => a + b,
        }))
    }

    match data {
        Value::Null => Ok(Value::Null),
        Value::F32Vec(v) => {
            // Fold in f32 so the partial matches what a caller-side f32 fold
            // over the same chunk would produce.
            let mut iter = v.iter().copied();
            let Some(first) = iter.next() else {
                return Ok(Value::Null);
            };
            let acc = iter.fold(first, |a, b| match op {
                "max" => a.max(b),
                "min" => a.min(b),
                _ => a + b,
            });
            Ok(Value::F64(acc as f64))
        }
        Value::List(items) if items.is_empty() => Ok(Value::Null),
        Value::List(items) => match items[0] {
            Value::I64(_) => {
                let mut acc: Option<i64> = None;
                for item in items {
                    let x = item.as_i64().ok_or_else(|| decode_err("I64 list", item))?;
                    acc = Some(match (acc, op) {
                        (None, _) => x,
                        (Some(a), "max") => a.max(x),
                        (Some(a), "min") => a.min(x),
                        (Some(a), _) => a + x,
                    });
                }
                Ok(acc.map(Value::I64).unwrap_or(Value::Null))
            }
            _ => {
                let vals: Result<Vec<f64>> = items
                    .iter()
                    .map(|item| item.as_f64().ok_or_else(|| decode_err("F64 list", item)))
                    .collect();
                Ok(fold_f64(vals?.into_iter(), op)
                    .map(Value::F64)
                    .unwrap_or(Value::Null))
            }
        },
        other => Err(decode_err("chunk", other)),
    }
}

impl JsClass for ColChunk {
    fn class_name(&self) -> &str {
        COL_CHUNK_CLASS
    }

    fn invoke(&mut self, method: &str, args: &[Value], ctx: &mut InvokeCtx<'_>) -> Result<Value> {
        match method {
            "col_set" => {
                self.data = args.first().cloned().unwrap_or(Value::Null);
                Ok(Value::Null)
            }
            "col_get" => Ok(self.data.clone()),
            "col_len" => Ok(Value::I64(chunk_len(&self.data) as i64)),
            "col_reduce" => {
                let op = args.first().and_then(Value::as_str).unwrap_or("sum");
                ctx.compute(chunk_len(&self.data) as f64);
                reduce_payload(&self.data, op)
            }
            _ => Err(JsError::NoSuchMethod {
                class: COL_CHUNK_CLASS.to_owned(),
                method: method.to_owned(),
            }),
        }
    }

    fn snapshot(&self) -> Result<Vec<u8>> {
        jsym_core::snapshot_state(self)
    }
}

/// Registers the built-in [`ColChunk`] class (preloaded, no codebase) with a
/// deployment's class registry.
pub fn register_col_classes(deployment: &Deployment) {
    deployment
        .classes()
        .register_class::<ColChunk, _>(COL_CHUNK_CLASS, None, |args| {
            Ok(ColChunk {
                data: args.first().cloned().unwrap_or(Value::Null),
            })
        });
}

/// Placement and sizing of one chunk at creation time.
#[derive(Clone, Debug)]
pub struct ChunkSpec {
    /// Physical node the chunk object is created on.
    pub node: NodeId,
    /// Number of elements the chunk covers.
    pub len: usize,
    /// Constructor arguments for the chunk object (custom chunk classes
    /// take per-chunk configuration here; [`ColChunk`] ignores extras).
    pub args: Vec<Value>,
}

impl ChunkSpec {
    /// A chunk of `len` elements on `node` with no constructor arguments.
    pub fn new(node: NodeId, len: usize) -> Self {
        ChunkSpec {
            node,
            len,
            args: Vec::new(),
        }
    }

    /// A chunk with explicit constructor arguments.
    pub fn with_args(node: NodeId, len: usize, args: Vec<Value>) -> Self {
        ChunkSpec { node, len, args }
    }
}

/// Splits `total` elements across `nodes` proportionally to each node's
/// weight (e.g. peak MFlop/s), then splits each node's allotment into up to
/// `chunks_per_node` near-equal chunks.
///
/// Largest-remainder rounding guarantees the chunk lengths sum to `total`;
/// zero-length chunks are dropped. Non-positive weights are treated as a
/// tiny positive weight so every listed node stays eligible.
pub fn partition_weighted(
    total: usize,
    nodes: &[(NodeId, f64)],
    chunks_per_node: usize,
) -> Vec<ChunkSpec> {
    if total == 0 || nodes.is_empty() {
        return Vec::new();
    }
    let weights: Vec<f64> = nodes.iter().map(|&(_, w)| w.max(1e-9)).collect();
    let sum: f64 = weights.iter().sum();
    // Largest-remainder apportionment of `total` over the nodes.
    let mut shares: Vec<usize> = Vec::with_capacity(nodes.len());
    let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(nodes.len());
    let mut assigned = 0usize;
    for (i, w) in weights.iter().enumerate() {
        let ideal = total as f64 * w / sum;
        let base = ideal.floor() as usize;
        shares.push(base);
        fracs.push((i, ideal - base as f64));
        assigned += base;
    }
    fracs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    for (i, _) in fracs.into_iter().take(total - assigned) {
        shares[i] += 1;
    }

    let per_node = chunks_per_node.max(1);
    let mut specs = Vec::new();
    for (&(node, _), share) in nodes.iter().zip(shares) {
        if share == 0 {
            continue;
        }
        let pieces = per_node.min(share);
        let base = share / pieces;
        let extra = share % pieces;
        for p in 0..pieces {
            let len = base + usize::from(p < extra);
            specs.push(ChunkSpec::new(node, len));
        }
    }
    specs
}

struct Chunk {
    obj: JsObj,
    start: usize,
    len: usize,
    node: NodeId,
}

/// A chunked distributed array of `T` elements.
///
/// Each chunk is a remote object created through the normal object machinery
/// (so it participates in location tables, migration, and fault handling);
/// the collectives fan invocations out with `ainvoke` and only then wait, so
/// the underlying RMI batching stage can coalesce same-destination traffic.
pub struct DistCol<T: ColElem> {
    chunks: Vec<Chunk>,
    len: usize,
    _elem: PhantomData<T>,
}

impl<T: ColElem> DistCol<T> {
    /// Creates the chunk objects of a distributed array from explicit
    /// per-chunk placements, using chunk class `class` (which must speak the
    /// chunk protocol and be registered/loaded on the target nodes).
    pub fn create(reg: &JsRegistration, class: &str, specs: &[ChunkSpec]) -> Result<DistCol<T>> {
        let mut chunks = Vec::with_capacity(specs.len());
        let mut start = 0usize;
        for spec in specs {
            let obj = JsObj::create(reg, class, &spec.args, Placement::OnPhys(spec.node), None)?;
            chunks.push(Chunk {
                obj,
                start,
                len: spec.len,
                node: spec.node,
            });
            start += spec.len;
        }
        Ok(DistCol {
            chunks,
            len: start,
            _elem: PhantomData,
        })
    }

    /// Creates a distributed array backed by the built-in [`ColChunk`]
    /// class (see [`register_col_classes`]).
    pub fn create_default(reg: &JsRegistration, specs: &[ChunkSpec]) -> Result<DistCol<T>> {
        Self::create(reg, COL_CHUNK_CLASS, specs)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// The remote object holding chunk `i`.
    pub fn chunk_obj(&self, i: usize) -> &JsObj {
        &self.chunks[i].obj
    }

    /// Element range `[start, start + len)` covered by chunk `i`.
    pub fn chunk_range(&self, i: usize) -> Range<usize> {
        let c = &self.chunks[i];
        c.start..c.start + c.len
    }

    /// The node chunk `i` currently lives on (as tracked by relocation; an
    /// externally migrated chunk is still found through the location
    /// tables, this is the collection's own placement record).
    pub fn chunk_node(&self, i: usize) -> NodeId {
        self.chunks[i].node
    }

    /// Distributes `data` across the chunks: one `col_set` per chunk, all
    /// issued before any reply is awaited.
    pub fn scatter(&self, data: &[T]) -> Result<()> {
        if data.len() != self.len {
            return Err(JsError::BadArguments(format!(
                "scatter of {} elements into a {}-element DistCol",
                data.len(),
                self.len
            )));
        }
        let mut handles = Vec::with_capacity(self.chunks.len());
        for c in &self.chunks {
            let payload = T::encode(&data[c.start..c.start + c.len]);
            handles.push(c.obj.ainvoke("col_set", &[payload])?);
        }
        for h in handles {
            h.get_result()?;
        }
        Ok(())
    }

    /// Collects the full array back: one `col_get` per chunk.
    pub fn gather(&self) -> Result<Vec<T>> {
        let mut handles = Vec::with_capacity(self.chunks.len());
        for c in &self.chunks {
            handles.push(c.obj.ainvoke("col_get", &[])?);
        }
        let mut out = Vec::with_capacity(self.len);
        for (h, c) in handles.into_iter().zip(&self.chunks) {
            let decoded = T::decode(&h.get_result()?)?;
            if decoded.len() != c.len {
                return Err(JsError::BadArguments(format!(
                    "chunk at {} returned {} elements, expected {}",
                    c.start,
                    decoded.len(),
                    c.len
                )));
            }
            out.extend(decoded);
        }
        Ok(out)
    }

    /// Reduces the array with `op`: each chunk folds locally (`col_reduce`)
    /// and the partials are combined in chunk order. Returns `None` for an
    /// empty array. Exact for `i64`; floating-point results are
    /// deterministic but chunking-dependent in the last bits.
    pub fn reduce(&self, op: ReduceOp) -> Result<Option<T>> {
        let arg = Value::Str(op.name().to_owned());
        let mut handles = Vec::with_capacity(self.chunks.len());
        for c in &self.chunks {
            handles.push(c.obj.ainvoke("col_reduce", std::slice::from_ref(&arg))?);
        }
        let mut acc: Option<T> = None;
        for h in handles {
            let partial = h.get_result()?;
            if matches!(partial, Value::Null) {
                continue; // empty chunk
            }
            let x = T::decode_scalar(&partial)?;
            acc = Some(match acc {
                None => x,
                Some(a) => T::combine(op, a, x),
            });
        }
        Ok(acc)
    }

    /// Invokes `method(args)` on every chunk object concurrently and
    /// returns the raw results in chunk order.
    pub fn map_chunks(&self, method: &str, args: &[Value]) -> Result<Vec<Value>> {
        self.map_chunks_with(method, |_, _, _| args.to_vec())
    }

    /// Like [`DistCol::map_chunks`], but computes each chunk's arguments
    /// from `(chunk_index, start, len)` — the building block for kernels
    /// whose work depends on the index range (e.g. `multiply(first_row,
    /// rows)`).
    pub fn map_chunks_with(
        &self,
        method: &str,
        mut args_for: impl FnMut(usize, usize, usize) -> Vec<Value>,
    ) -> Result<Vec<Value>> {
        let mut handles = Vec::with_capacity(self.chunks.len());
        for (i, c) in self.chunks.iter().enumerate() {
            let args = args_for(i, c.start, c.len);
            handles.push(c.obj.ainvoke(method, &args)?);
        }
        handles.into_iter().map(|h| h.get_result()).collect()
    }

    /// Migrates every chunk overlapping `range` (element indices) to
    /// `node`, concurrently, so that same-link state transfers coalesce
    /// into one batched transfer. Returns the number of chunks moved.
    pub fn relocate(&mut self, range: Range<usize>, node: NodeId) -> Result<usize> {
        let targets: Vec<usize> = self
            .chunks
            .iter()
            .enumerate()
            .filter(|(_, c)| c.start < range.end && c.start + c.len > range.start)
            .filter(|(_, c)| c.node != node)
            .map(|(i, _)| i)
            .collect();
        if targets.is_empty() {
            return Ok(0);
        }
        let results: Vec<Result<NodeId>> = std::thread::scope(|scope| {
            let joins: Vec<_> = targets
                .iter()
                .map(|&i| {
                    let obj = self.chunks[i].obj.clone();
                    scope.spawn(move || obj.migrate(MigrateTarget::ToPhys(node), None))
                })
                .collect();
            joins
                .into_iter()
                .map(|j| j.join().expect("relocate worker panicked"))
                .collect()
        });
        let mut moved = 0usize;
        let mut first_err = None;
        for (&i, res) in targets.iter().zip(results) {
            match res {
                Ok(dst) => {
                    self.chunks[i].node = dst;
                    moved += 1;
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(moved),
        }
    }

    /// Re-balances the chunk placement against a new weight vector — the
    /// `addnode`/`rmnode` companion: after the JS-Shell grows the
    /// deployment, pass the enlarged node list and the collection spreads
    /// onto the new capacity; before a shrink, pass a list without the
    /// leaving node and the collection drains off it (so `remove_machine`
    /// succeeds).
    ///
    /// Chunks themselves are not re-split: each chunk is assigned to the
    /// node whose ideal contiguous span (per [`partition_weighted`] with
    /// one chunk per node) contains the chunk's midpoint, and contiguous
    /// runs with the same target move through one bulk [`DistCol::relocate`]
    /// call each, so same-link state transfers keep coalescing. Returns the
    /// number of chunks moved.
    pub fn rebalance(&mut self, weights: &[(NodeId, f64)]) -> Result<usize> {
        if self.len == 0 || weights.is_empty() || self.chunks.is_empty() {
            return Ok(0);
        }
        // Ideal contiguous spans, one per node with a non-zero share, in
        // the caller's node order.
        let mut spans: Vec<(NodeId, Range<usize>)> = Vec::new();
        let mut at = 0usize;
        for spec in partition_weighted(self.len, weights, 1) {
            spans.push((spec.node, at..at + spec.len));
            at += spec.len;
        }
        // Target node per chunk: the span holding the chunk's midpoint.
        let target_of = |start: usize, len: usize| -> NodeId {
            let mid = start + len / 2;
            spans
                .iter()
                .find(|(_, r)| r.contains(&mid))
                .map(|&(n, _)| n)
                .unwrap_or_else(|| spans.last().expect("spans nonempty").0)
        };
        // Group contiguous chunks with one target into single relocates.
        let mut moved = 0usize;
        let mut run: Option<(NodeId, Range<usize>)> = None;
        let mut pending: Vec<(NodeId, Range<usize>)> = Vec::new();
        for c in &self.chunks {
            if c.len == 0 {
                continue;
            }
            let target = target_of(c.start, c.len);
            match &mut run {
                Some((node, range)) if *node == target => range.end = c.start + c.len,
                other => {
                    if let Some(r) = other.take() {
                        pending.push(r);
                    }
                    run = Some((target, c.start..c.start + c.len));
                }
            }
        }
        pending.extend(run);
        for (node, range) in pending {
            moved += self.relocate(range, node)?;
        }
        Ok(moved)
    }

    /// Frees all chunk objects.
    pub fn free(self) -> Result<()> {
        let mut first_err = None;
        for c in &self.chunks {
            if let Err(e) = c.obj.free() {
                first_err = first_err.or(Some(e));
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsym_core::testkit::shell_with_idle_machines;

    fn even_specs(nodes: &[NodeId], total: usize, per_node: usize) -> Vec<ChunkSpec> {
        partition_weighted(
            total,
            &nodes.iter().map(|&n| (n, 1.0)).collect::<Vec<_>>(),
            per_node,
        )
    }

    #[test]
    fn partition_weighted_sums_and_weights() {
        let nodes = [(NodeId(0), 300.0), (NodeId(1), 100.0), (NodeId(2), 100.0)];
        let specs = partition_weighted(100, &nodes, 2);
        let total: usize = specs.iter().map(|s| s.len).sum();
        assert_eq!(total, 100);
        // Node 0 carries 3/5 of the weight: 60 elements over two chunks.
        let n0: usize = specs
            .iter()
            .filter(|s| s.node == NodeId(0))
            .map(|s| s.len)
            .sum();
        assert_eq!(n0, 60);
        assert!(specs.iter().all(|s| s.len > 0));
        assert_eq!(specs.iter().filter(|s| s.node == NodeId(0)).count(), 2);
    }

    #[test]
    fn partition_weighted_degenerate_cases() {
        assert!(partition_weighted(0, &[(NodeId(0), 1.0)], 2).is_empty());
        assert!(partition_weighted(10, &[], 2).is_empty());
        // More requested chunks than elements: capped, no empty chunks.
        let specs = partition_weighted(3, &[(NodeId(0), 1.0)], 8);
        assert_eq!(specs.len(), 3);
        assert!(specs.iter().all(|s| s.len == 1));
    }

    #[test]
    fn scatter_gather_roundtrip_f32() {
        let deployment = shell_with_idle_machines(3).boot();
        register_col_classes(&deployment);
        let reg = deployment.register_app().unwrap();

        let data: Vec<f32> = (0..97).map(|i| i as f32 * 0.5).collect();
        let nodes = deployment.machines();
        let col = DistCol::<f32>::create_default(&reg, &even_specs(&nodes, data.len(), 2)).unwrap();
        assert_eq!(col.len(), 97);
        assert_eq!(col.chunk_count(), 6);
        col.scatter(&data).unwrap();
        assert_eq!(col.gather().unwrap(), data);
        col.free().unwrap();
        reg.unregister().unwrap();
        deployment.shutdown();
    }

    #[test]
    fn reduce_matches_serial_fold_i64() {
        let deployment = shell_with_idle_machines(3).boot();
        register_col_classes(&deployment);
        let reg = deployment.register_app().unwrap();

        let data: Vec<i64> = (0..50).map(|i| (i * 37) % 101 - 50).collect();
        let nodes = deployment.machines();
        let col = DistCol::<i64>::create_default(&reg, &even_specs(&nodes, data.len(), 3)).unwrap();
        col.scatter(&data).unwrap();
        assert_eq!(
            col.reduce(ReduceOp::Sum).unwrap(),
            Some(data.iter().sum::<i64>())
        );
        assert_eq!(
            col.reduce(ReduceOp::Max).unwrap(),
            data.iter().copied().max()
        );
        assert_eq!(
            col.reduce(ReduceOp::Min).unwrap(),
            data.iter().copied().min()
        );
        deployment.shutdown();
    }

    #[test]
    fn reduce_empty_array_is_none() {
        let deployment = shell_with_idle_machines(2).boot();
        register_col_classes(&deployment);
        let reg = deployment.register_app().unwrap();
        let col = DistCol::<i64>::create_default(&reg, &[ChunkSpec::new(NodeId(1), 0)]).unwrap();
        assert!(col.is_empty());
        assert_eq!(col.reduce(ReduceOp::Sum).unwrap(), None);
        assert_eq!(col.gather().unwrap(), Vec::<i64>::new());
        deployment.shutdown();
    }

    #[test]
    fn scatter_length_mismatch_rejected() {
        let deployment = shell_with_idle_machines(2).boot();
        register_col_classes(&deployment);
        let reg = deployment.register_app().unwrap();
        let col = DistCol::<i64>::create_default(&reg, &[ChunkSpec::new(NodeId(0), 4)]).unwrap();
        assert!(matches!(
            col.scatter(&[1, 2, 3]),
            Err(JsError::BadArguments(_))
        ));
        deployment.shutdown();
    }

    #[test]
    fn relocate_moves_overlapping_chunks_and_preserves_data() {
        let deployment = shell_with_idle_machines(3).boot();
        register_col_classes(&deployment);
        let reg = deployment.register_app().unwrap();

        let data: Vec<i64> = (0..40).collect();
        // Four 10-element chunks: two on node 0, two on node 1.
        let specs = vec![
            ChunkSpec::new(NodeId(0), 10),
            ChunkSpec::new(NodeId(0), 10),
            ChunkSpec::new(NodeId(1), 10),
            ChunkSpec::new(NodeId(1), 10),
        ];
        let mut col = DistCol::<i64>::create_default(&reg, &specs).unwrap();
        col.scatter(&data).unwrap();

        // Elements 5..25 overlap chunks 0, 1, and 2.
        let moved = col.relocate(5..25, NodeId(2)).unwrap();
        assert_eq!(moved, 3);
        for i in 0..3 {
            assert_eq!(col.chunk_node(i), NodeId(2));
            assert_eq!(col.chunk_obj(i).get_location().unwrap(), NodeId(2));
        }
        assert_eq!(col.chunk_node(3), NodeId(1));
        assert_eq!(col.gather().unwrap(), data);

        // Relocating the same range again is a no-op.
        assert_eq!(col.relocate(5..25, NodeId(2)).unwrap(), 0);
        deployment.shutdown();
    }

    #[test]
    fn rebalance_converges_after_addnode_and_drains_for_rmnode() {
        let deployment = shell_with_idle_machines(2).boot();
        register_col_classes(&deployment);
        let reg = deployment.register_app().unwrap();

        let data: Vec<i64> = (0..48).collect();
        let n0 = NodeId(0);
        let n1 = NodeId(1);
        // Eight 6-element chunks over the two seed nodes.
        let mut col =
            DistCol::<i64>::create_default(&reg, &even_specs(&[n0, n1], data.len(), 4)).unwrap();
        col.scatter(&data).unwrap();

        // addnode: grow the deployment, then rebalance over equal weights.
        let n2 = deployment.add_machine(jsym_core::MachineConfig::idle("m-grown", 50.0));
        let weights = [(n0, 1.0), (n1, 1.0), (n2, 1.0)];
        let moved = col.rebalance(&weights).unwrap();
        assert!(moved > 0, "rebalance moved nothing onto the new node");

        // Per-node element shares re-converge to the weight vector, within
        // one chunk of the ideal (chunks are moved whole, never re-split).
        let share_of = |col: &DistCol<i64>, node: NodeId| -> usize {
            (0..col.chunk_count())
                .filter(|&i| col.chunk_node(i) == node)
                .map(|i| col.chunk_range(i).len())
                .sum()
        };
        let ideal = data.len() / 3;
        let max_chunk = (0..col.chunk_count())
            .map(|i| col.chunk_range(i).len())
            .max()
            .unwrap();
        for &(node, _) in &weights {
            let share = share_of(&col, node);
            assert!(
                share.abs_diff(ideal) <= max_chunk,
                "{node} holds {share} elements, ideal {ideal} ± {max_chunk}"
            );
        }
        assert_eq!(col.gather().unwrap(), data);
        // Already balanced: a second pass is a no-op.
        assert_eq!(col.rebalance(&weights).unwrap(), 0);

        // rmnode: rebalance without the leaving node drains it completely,
        // after which the JS-Shell shrink succeeds.
        col.rebalance(&[(n0, 1.0), (n1, 1.0)]).unwrap();
        assert_eq!(share_of(&col, n2), 0);
        assert_eq!(col.gather().unwrap(), data);
        deployment.remove_machine(n2).unwrap();

        col.free().unwrap();
        reg.unregister().unwrap();
        deployment.shutdown();
    }

    #[test]
    fn map_chunks_with_sees_chunk_geometry() {
        let deployment = shell_with_idle_machines(2).boot();
        register_col_classes(&deployment);
        let reg = deployment.register_app().unwrap();
        let specs = vec![ChunkSpec::new(NodeId(0), 3), ChunkSpec::new(NodeId(1), 5)];
        let col = DistCol::<i64>::create_default(&reg, &specs).unwrap();
        col.scatter(&[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        // col_len ignores args; use the geometry hook to check ranges too.
        let mut seen = Vec::new();
        let lens = col
            .map_chunks_with("col_len", |i, start, len| {
                seen.push((i, start, len));
                Vec::new()
            })
            .unwrap();
        assert_eq!(seen, vec![(0, 0, 3), (1, 3, 5)]);
        assert_eq!(lens, vec![Value::I64(3), Value::I64(5)]);
        assert_eq!(col.chunk_range(1), 3..8);
        deployment.shutdown();
    }

    #[test]
    fn f64_roundtrip_and_reduce() {
        let deployment = shell_with_idle_machines(2).boot();
        register_col_classes(&deployment);
        let reg = deployment.register_app().unwrap();
        let data: Vec<f64> = vec![1.5, -2.25, 8.0, 0.75];
        let nodes = deployment.machines();
        let col = DistCol::<f64>::create_default(&reg, &even_specs(&nodes, data.len(), 1)).unwrap();
        col.scatter(&data).unwrap();
        assert_eq!(col.gather().unwrap(), data);
        assert_eq!(col.reduce(ReduceOp::Max).unwrap(), Some(8.0));
        assert_eq!(col.reduce(ReduceOp::Sum).unwrap(), Some(8.0));
        deployment.shutdown();
    }
}
