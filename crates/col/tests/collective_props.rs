//! Property tests for `DistCol` collectives: whatever the partition looks
//! like, `scatter`/`gather`/`reduce` must agree with naive per-element
//! loops over the same data. Runs with the coalescing stage armed so the
//! collectives are exercised on the batched plane they are built for.

use jsym_col::{partition_weighted, register_col_classes, DistCol, ReduceOp};
use jsym_core::{CostModel, Deployment, JsShell, MachineConfig};
use jsym_net::NodeId;
use proptest::prelude::*;

fn boot(nodes: usize) -> Deployment {
    let mut shell = JsShell::new()
        .time_scale(1e-6)
        .monitor_period(1e9)
        .failure_timeout(1e9)
        .cost_model(CostModel::free())
        .rmi_batching(1.0, 256 * 1024);
    for i in 0..nodes {
        shell = shell.add_machine(MachineConfig::idle(&format!("m{i}"), 50.0));
    }
    let d = shell.boot();
    register_col_classes(&d);
    d
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case boots a deployment; keep the count low
        .. ProptestConfig::default()
    })]

    /// scatter → gather is the identity, and reduce equals the serial fold,
    /// for any total length, node count, weighting and chunking. i64 keeps
    /// the comparison exact.
    #[test]
    fn collectives_match_naive_loops(
        total in 0usize..240,
        nodes in 2usize..5,
        chunks_per_node in 1usize..4,
        weights in proptest::collection::vec(1u8..10, 4..5),
        op in prop_oneof![Just(ReduceOp::Sum), Just(ReduceOp::Max), Just(ReduceOp::Min)],
        seed in 0i64..1000,
    ) {
        let d = boot(nodes);
        let reg = d.register_app().unwrap();
        let weighted: Vec<(NodeId, f64)> = (0..nodes)
            .map(|i| (NodeId(i as u32), weights[i] as f64))
            .collect();
        let specs = partition_weighted(total, &weighted, chunks_per_node);
        let col = DistCol::<i64>::create_default(&reg, &specs).unwrap();
        prop_assert_eq!(col.len(), total);

        // Deterministic pseudo-random payload; values vary in sign so Max
        // and Min are both non-trivial.
        let data: Vec<i64> = (0..total)
            .map(|i| (i as i64 * 37 + seed) % 211 - 105)
            .collect();
        col.scatter(&data).unwrap();

        let back = col.gather().unwrap();
        prop_assert_eq!(&back, &data);

        let got = col.reduce(op).unwrap();
        let want = match op {
            ReduceOp::Sum => data.iter().copied().reduce(|a, b| a + b),
            ReduceOp::Max => data.iter().copied().reduce(i64::max),
            ReduceOp::Min => data.iter().copied().reduce(i64::min),
        };
        prop_assert_eq!(got, want);

        col.free().unwrap();
        reg.unregister().unwrap();
        d.shutdown();
    }
}
