//! A sized work-stealing executor: cores-many worker threads onto which node
//! mailboxes, object executors, NA monitor rounds, and directory replica ticks
//! are scheduled as cooperatively-yielding tasks.
//!
//! The runtime's legacy model spawns OS threads per node (receiver, NA loop,
//! worker pool), which caps simulated cluster size at a few hundred nodes.
//! This crate provides the alternative: a fixed pool of workers fed by
//! per-worker striped inject queues (round-robin placement, targeted parker
//! wakeups; one global injector + condvar in the legacy oracle mode) plus
//! per-worker run queues with stealing, and a single timer thread that
//! releases [`Executor::spawn_at`] jobs at their real deadline.
//! Queues are short-critical-section mutexed `VecDeque`s rather than lock-free
//! Chase-Lev deques: jobs here are node mailbox drains and RMI dispatches that
//! run for microseconds to milliseconds, so queue-op cost is noise and the
//! lock-based scheme is trivially sound.
//!
//! # Blocking compensation
//!
//! Simulation tasks block: a synchronous RMI parks its worker until the reply
//! lands, and replies are themselves produced by executor tasks. To stay
//! deadlock-free, any wait that depends on *other executor tasks making
//! progress* must be wrapped in [`blocking`]: it books the worker as blocked
//! and, when the pool's runnable head-count would drop below its base size,
//! spawns a spare worker to compensate. Spares retire once no worker is
//! blocked. The capacity ledger is a single mutex so the invariant
//! `live - blocked >= base` holds at every blocking entry; with `base >= 1`
//! there is always at least one runnable worker, so nested synchronous call
//! chains of any depth cannot wedge the pool.
//!
//! Bounded waits (simulated compute sleeps, retry backoffs) do not need
//! compensation for safety, but long simulated computes also route through
//! [`blocking`] so they do not serialise unrelated traffic behind a sleep.

use parking_lot::{Condvar, Mutex, RwLock};
use std::cell::RefCell;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A unit of work scheduled onto the executor.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// The executor owning the current worker thread, if any.
    static CURRENT: RefCell<Option<Arc<Inner>>> = const { RefCell::new(None) };
}

/// A mutexed FIFO run queue. Owners pop the front; thieves steal from the
/// back so they grab the work the owner would reach last.
#[derive(Default)]
struct JobQueue {
    q: Mutex<VecDeque<Job>>,
}

impl JobQueue {
    fn push_back(&self, job: Job) {
        self.q.lock().push_back(job);
    }

    fn pop_front(&self) -> Option<Job> {
        self.q.lock().pop_front()
    }

    fn steal_back(&self) -> Option<Job> {
        self.q.lock().pop_back()
    }

    /// Pop one job and move up to `extra` more into `local` in FIFO order.
    fn grab_batch(&self, local: &JobQueue, extra: usize) -> Option<Job> {
        let mut q = self.q.lock();
        let first = q.pop_front()?;
        if extra > 0 {
            let mut l = local.q.lock();
            for _ in 0..extra {
                match q.pop_front() {
                    Some(j) => l.push_back(j),
                    None => break,
                }
            }
        }
        Some(first)
    }

    fn is_empty(&self) -> bool {
        self.q.lock().is_empty()
    }

    fn clear(&self) {
        self.q.lock().clear();
    }
}

/// Tunables for [`Executor::with_config`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecConfig {
    /// Use the legacy layout — one global inject queue plus one global sleep
    /// condvar — instead of per-worker striped inject queues with targeted
    /// parker wakeups. Kept as the differential oracle for the striped
    /// scheduler (and for the `ablate_contention` sweep).
    pub legacy_injector: bool,
}

const P_RUNNING: u8 = 0;
const P_PARKED: u8 = 1;
const P_NOTIFIED: u8 = 2;

/// One worker's token parker, replacing the legacy global sleep condvar so a
/// spawn can wake exactly the worker that owns the stripe it pushed to
/// instead of notifying a herd.
///
/// Protocol (Dekker-style): the worker publishes `PARKED` with [`Parker::
/// prepare`] *before* its final queue re-check, and a spawner pushes its job
/// *before* calling [`Parker::unpark`]. Under `SeqCst` one of the two must
/// observe the other, so a job can never be stranded: either the spawner
/// sees `PARKED` and wakes us, or our re-check sees the job. An `unpark`
/// against a running worker leaves a `NOTIFIED` token that makes the next
/// `prepare` skip the park and re-scan instead.
struct Parker {
    state: AtomicU8,
    /// Notification token, guarded so a wake between `prepare` and the wait
    /// below cannot be lost.
    m: Mutex<bool>,
    cv: Condvar,
}

impl Parker {
    fn new() -> Self {
        Parker {
            state: AtomicU8::new(P_RUNNING),
            m: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Publish intent to park. Returns `false` when a notification was
    /// already pending (it is consumed; the caller should re-scan the queues
    /// instead of parking).
    fn prepare(&self) -> bool {
        if self
            .state
            .compare_exchange(P_RUNNING, P_PARKED, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            true
        } else {
            self.state.store(P_RUNNING, Ordering::SeqCst);
            *self.m.lock() = false;
            false
        }
    }

    /// Abort a prepared park (work appeared during the final re-check).
    fn cancel(&self) {
        self.state.store(P_RUNNING, Ordering::SeqCst);
        *self.m.lock() = false;
    }

    /// Block until notified or `timeout`; must follow a successful
    /// [`Parker::prepare`].
    fn park(&self, timeout: Duration) {
        let mut notified = self.m.lock();
        if !*notified && self.state.load(Ordering::SeqCst) == P_PARKED {
            self.cv.wait_for(&mut notified, timeout);
        }
        *notified = false;
        self.state.store(P_RUNNING, Ordering::SeqCst);
    }

    /// Wake the owner if it is parked; otherwise leave a token that makes
    /// its next `prepare` re-scan. Returns whether a parked worker was woken.
    fn unpark(&self) -> bool {
        if self.state.swap(P_NOTIFIED, Ordering::SeqCst) == P_PARKED {
            *self.m.lock() = true;
            self.cv.notify_one();
            true
        } else {
            false
        }
    }
}

/// Everything a worker thread owns: its private run deque (owner pops the
/// front, thieves the back), the inject stripe it drains first, and its
/// parker.
struct WorkerSlot {
    local: JobQueue,
    /// Index of the striped inject queue this worker is biased toward
    /// (mod the stripe count; spares inherit an arbitrary stripe).
    stripe: usize,
    parker: Parker,
}

/// Capacity ledger guarded by one mutex so blocking-entry and spare-retire
/// decisions are atomic with respect to each other.
struct Cap {
    /// Worker threads currently alive (base + spares).
    live: usize,
    /// Workers currently inside a [`blocking`] section (nested entries count
    /// once per level; each level compensates, which is conservative).
    blocked: usize,
    /// Spare workers alive beyond the base pool.
    spares: usize,
}

/// A timer entry ordered by `(at, seq)`; min-heap via reversed `Ord`.
struct TimerEntry {
    at: Instant,
    seq: u64,
    job: Job,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest deadline on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct TimerState {
    heap: BinaryHeap<TimerEntry>,
    next_seq: u64,
    shutdown: bool,
}

struct Inner {
    /// Legacy single inject queue; unused (always empty) in striped mode.
    injector: JobQueue,
    /// Striped inject queues, one per base worker; empty in legacy mode.
    stripes: Box<[JobQueue]>,
    /// Round-robin cursor for stripe placement.
    rr: AtomicU64,
    /// Jobs queued anywhere (injector/stripes + worker locals): incremented
    /// per spawn, decremented when a worker dequeues a job to run it. Signed
    /// so a shutdown clearing the queues can reset it without racing late
    /// decrements; reads clamp at zero.
    depth: AtomicI64,
    /// Base worker slots, indexable by stripe for targeted wakeups.
    base_slots: Box<[Arc<WorkerSlot>]>,
    /// Spare worker slots (registered on spawn, removed on retire).
    extra_slots: RwLock<Vec<Arc<WorkerSlot>>>,
    config: ExecConfig,
    base: usize,
    cap: Mutex<Cap>,
    /// Count of workers parked on `wake` (guarded by `sleep`; legacy mode).
    sleep: Mutex<usize>,
    wake: Condvar,
    timer: Mutex<TimerState>,
    timer_wake: Condvar,
    shutdown: AtomicBool,
    threads: Mutex<Vec<JoinHandle<()>>>,
    steals: AtomicU64,
    parks: AtomicU64,
    spare_spawns: AtomicU64,
    wakes_targeted: AtomicU64,
    wakes_escalated: AtomicU64,
    obs: Option<ObsHandles>,
}

struct ObsHandles {
    queue_depth: jsym_obs::Gauge,
    blocked: jsym_obs::Gauge,
    spares: jsym_obs::Gauge,
    steals: jsym_obs::Counter,
    parks: jsym_obs::Counter,
    spare_spawns: jsym_obs::Counter,
    wake_targeted: jsym_obs::Counter,
    wake_escalated: jsym_obs::Counter,
}

/// A point-in-time view of the executor's internals, for the `executor` shell
/// command and the swarm benchmark report.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    pub threads: usize,
    /// Jobs queued across the inject queues *and* worker-local deques (a
    /// batch-grabbed job counts until a worker actually runs it).
    pub queue_depth: usize,
    pub blocked: usize,
    pub spares: usize,
    pub steals: u64,
    pub parks: u64,
    pub spare_spawns: u64,
    /// Spawns that woke the parked owner of the stripe they pushed to.
    pub wakes_targeted: u64,
    /// Wakes that fell through to another parked worker (owner busy) or were
    /// added on backlog (queue depth exceeding the worker count).
    pub wakes_escalated: u64,
    pub timer_pending: usize,
}

/// The work-stealing executor. Construct via [`Executor::new`] or
/// [`Executor::with_obs`]; both return an `Arc` because worker threads and
/// scheduled tasks hold references back into the pool.
pub struct Executor {
    inner: Arc<Inner>,
}

impl Executor {
    /// Start an executor with `threads` base workers (clamped to at least 1)
    /// and no metrics.
    pub fn new(threads: usize) -> Arc<Executor> {
        Self::build(threads, None, ExecConfig::default())
    }

    /// Start an executor exporting `exec.*` gauges/counters into `obs`.
    pub fn with_obs(threads: usize, obs: jsym_obs::ObsRegistry) -> Arc<Executor> {
        Self::with_config(threads, obs, ExecConfig::default())
    }

    /// Start an executor with explicit tunables (see [`ExecConfig`]).
    pub fn with_config(
        threads: usize,
        obs: jsym_obs::ObsRegistry,
        config: ExecConfig,
    ) -> Arc<Executor> {
        let handles = ObsHandles {
            queue_depth: obs.gauge("exec.queue_depth", None, "exec"),
            blocked: obs.gauge("exec.blocked", None, "exec"),
            spares: obs.gauge("exec.spares", None, "exec"),
            steals: obs.counter("exec.steals", None, "exec"),
            parks: obs.counter("exec.parks", None, "exec"),
            spare_spawns: obs.counter("exec.spare_spawns", None, "exec"),
            wake_targeted: obs.counter("exec.wake.targeted", None, "exec"),
            wake_escalated: obs.counter("exec.wake.escalated", None, "exec"),
        };
        Self::build(threads, Some(handles), config)
    }

    fn build(threads: usize, obs: Option<ObsHandles>, config: ExecConfig) -> Arc<Executor> {
        let base = threads.max(1);
        let stripes = (0..base)
            .map(|_| JobQueue::default())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let base_slots = (0..base)
            .map(|i| {
                Arc::new(WorkerSlot {
                    local: JobQueue::default(),
                    stripe: i,
                    parker: Parker::new(),
                })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let inner = Arc::new(Inner {
            injector: JobQueue::default(),
            stripes,
            rr: AtomicU64::new(0),
            depth: AtomicI64::new(0),
            base_slots,
            extra_slots: RwLock::new(Vec::new()),
            config,
            base,
            cap: Mutex::new(Cap {
                live: base,
                blocked: 0,
                spares: 0,
            }),
            sleep: Mutex::new(0),
            wake: Condvar::new(),
            timer: Mutex::new(TimerState {
                heap: BinaryHeap::new(),
                next_seq: 0,
                shutdown: false,
            }),
            timer_wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            threads: Mutex::new(Vec::new()),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            spare_spawns: AtomicU64::new(0),
            wakes_targeted: AtomicU64::new(0),
            wakes_escalated: AtomicU64::new(0),
            obs,
        });
        let mut handles = Vec::with_capacity(base + 1);
        for i in 0..base {
            let slot = Arc::clone(&inner.base_slots[i]);
            handles.push(spawn_worker(&inner, slot, i, false));
        }
        {
            let timer_inner = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name("jsym-exec-timer".into())
                    .spawn(move || timer_loop(&timer_inner))
                    .expect("spawn timer thread"),
            );
        }
        *inner.threads.lock() = handles;
        Arc::new(Executor { inner })
    }

    /// Base pool size.
    pub fn threads(&self) -> usize {
        self.inner.base
    }

    /// Schedule `job` to run as soon as a worker is free.
    pub fn spawn(&self, job: Job) {
        self.inner.spawn(job);
    }

    /// Schedule `job` to run at (not before) the real-time instant `at`.
    /// Jobs with equal deadlines run in submission order.
    pub fn spawn_at(&self, at: Instant, job: Job) {
        let mut st = self.inner.timer.lock();
        if st.shutdown {
            return;
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        let is_new_head = st.heap.peek().is_none_or(|h| at < h.at);
        st.heap.push(TimerEntry { at, seq, job });
        drop(st);
        if is_new_head {
            self.inner.timer_wake.notify_one();
        }
    }

    /// Snapshot queue/steal/park/spare counters.
    pub fn stats(&self) -> ExecStats {
        let cap = self.inner.cap.lock();
        ExecStats {
            threads: self.inner.base,
            queue_depth: self.inner.queue_depth(),
            blocked: cap.blocked,
            spares: cap.spares,
            steals: self.inner.steals.load(Ordering::Relaxed),
            parks: self.inner.parks.load(Ordering::Relaxed),
            spare_spawns: self.inner.spare_spawns.load(Ordering::Relaxed),
            wakes_targeted: self.inner.wakes_targeted.load(Ordering::Relaxed),
            wakes_escalated: self.inner.wakes_escalated.load(Ordering::Relaxed),
            timer_pending: self.inner.timer.lock().heap.len(),
        }
    }

    /// Stop accepting work, wake every worker and the timer, and join them.
    /// Jobs still queued (or armed on the timer) are dropped. Idempotent.
    /// Must not be called from an executor worker.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let mut st = self.inner.timer.lock();
            st.shutdown = true;
            st.heap.clear();
        }
        self.inner.timer_wake.notify_all();
        self.inner.wake.notify_all();
        for s in self.inner.base_slots.iter() {
            s.parker.unpark();
        }
        for s in self.inner.extra_slots.read().iter() {
            s.parker.unpark();
        }
        // Workers may spawn spares while we join; drain until the list is
        // stable and empty.
        loop {
            let handles = std::mem::take(&mut *self.inner.threads.lock());
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
        self.inner.injector.clear();
        for s in self.inner.stripes.iter() {
            s.clear();
        }
        self.inner.depth.store(0, Ordering::Relaxed);
        if let Some(o) = &self.inner.obs {
            o.queue_depth.set(0.0);
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Inner {
    /// Current queued-job count (inject queues + worker locals), clamped.
    fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed).max(0) as usize
    }

    fn spawn(self: &Arc<Self>, job: Job) {
        if self.shutdown.load(Ordering::Acquire) {
            return;
        }
        if self.config.legacy_injector {
            self.injector.push_back(job);
            self.depth.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = &self.obs {
                o.queue_depth.set(self.queue_depth() as f64);
            }
            if *self.sleep.lock() > 0 {
                self.wake.notify_one();
            }
        } else {
            let n = self.stripes.len();
            let i = (self.rr.fetch_add(1, Ordering::Relaxed) as usize) % n;
            // The push must precede the unpark: the parker protocol's
            // no-stranded-job guarantee hangs on that order.
            self.stripes[i].push_back(job);
            self.depth.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = &self.obs {
                o.queue_depth.set(self.queue_depth() as f64);
            }
            self.wake_for(i);
        }
    }

    /// Wake at most one worker for a job pushed to stripe `i`: the stripe's
    /// owner if it is parked (targeted), any other parked worker otherwise
    /// (escalated), plus one extra on backlog — all instead of the legacy
    /// herd-prone global `notify_one` against a shared condvar.
    fn wake_for(&self, i: usize) {
        if self.base_slots[i].parker.unpark() {
            self.wakes_targeted.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = &self.obs {
                o.wake_targeted.inc();
            }
        } else {
            let mut woke = false;
            for (j, s) in self.base_slots.iter().enumerate() {
                if j != i && s.parker.unpark() {
                    woke = true;
                    break;
                }
            }
            if !woke {
                for s in self.extra_slots.read().iter() {
                    if s.parker.unpark() {
                        woke = true;
                        break;
                    }
                }
            }
            if woke {
                self.wakes_escalated.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = &self.obs {
                    o.wake_escalated.inc();
                }
            }
        }
        // Backlog escalation: the queues are outrunning the pool, so one
        // wake per spawn is not enough — rouse one more parked worker.
        if self.depth.load(Ordering::Relaxed) > self.base_slots.len() as i64 {
            for s in self.base_slots.iter() {
                if s.parker.unpark() {
                    self.wakes_escalated.fetch_add(1, Ordering::Relaxed);
                    if let Some(o) = &self.obs {
                        o.wake_escalated.inc();
                    }
                    break;
                }
            }
        }
    }

    /// Called on `blocking` entry with `blocked` already incremented: spawn a
    /// spare if the runnable head-count dropped below the base pool size.
    fn compensate(self: &Arc<Self>, cap: &mut Cap) {
        if cap.live - cap.blocked < self.base && !self.shutdown.load(Ordering::Acquire) {
            cap.live += 1;
            cap.spares += 1;
            self.spare_spawns.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = &self.obs {
                o.spare_spawns.inc();
                o.spares.set(cap.spares as f64);
            }
            let slot = Arc::new(WorkerSlot {
                local: JobQueue::default(),
                // Spares inherit a stripe round-robin so their leftovers and
                // inject bias stay spread.
                stripe: cap.live % self.stripes.len(),
                parker: Parker::new(),
            });
            self.extra_slots.write().push(Arc::clone(&slot));
            let handle = spawn_worker(self, slot, cap.live, true);
            self.threads.lock().push(handle);
        }
        // The ledger invariant this whole scheme exists for: after
        // compensation, the runnable head-count never sits below base.
        debug_assert!(
            self.shutdown.load(Ordering::Acquire) || cap.live - cap.blocked >= self.base,
            "ledger invariant violated: live {} - blocked {} < base {}",
            cap.live,
            cap.blocked,
            self.base
        );
    }
}

fn spawn_worker(
    inner: &Arc<Inner>,
    slot: Arc<WorkerSlot>,
    index: usize,
    spare: bool,
) -> JoinHandle<()> {
    let inner = Arc::clone(inner);
    let kind = if spare { "s" } else { "w" };
    std::thread::Builder::new()
        .name(format!("jsym-exec-{kind}{index}"))
        .spawn(move || worker_loop(&inner, &slot, spare))
        .expect("spawn executor worker")
}

/// Push batch-grabbed leftovers back where other workers can see them, so a
/// retirement or shutdown racing a grab does not strand them invisibly.
fn requeue_leftovers(inner: &Inner, slot: &WorkerSlot) {
    while let Some(job) = slot.local.pop_front() {
        if inner.config.legacy_injector {
            inner.injector.push_back(job);
        } else {
            inner.stripes[slot.stripe % inner.stripes.len()].push_back(job);
        }
    }
}

fn worker_loop(inner: &Arc<Inner>, slot: &Arc<WorkerSlot>, spare: bool) {
    CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(inner)));
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        if spare {
            // Spares retire once nothing is blocked: the base pool is then
            // whole and keeping extra threads would creep per blocked burst.
            let mut cap = inner.cap.lock();
            if cap.blocked == 0 && cap.live > inner.base {
                cap.live -= 1;
                cap.spares -= 1;
                debug_assert!(
                    cap.live - cap.blocked >= inner.base,
                    "ledger invariant violated on retire: live {} blocked {} base {}",
                    cap.live,
                    cap.blocked,
                    inner.base
                );
                if let Some(o) = &inner.obs {
                    o.spares.set(cap.spares as f64);
                }
                drop(cap);
                requeue_leftovers(inner, slot);
                break;
            }
        }
        match find_job(inner, slot) {
            Some(job) => job(),
            None => park(inner, slot),
        }
    }
    requeue_leftovers(inner, slot);
    CURRENT.with(|c| *c.borrow_mut() = None);
    if spare {
        let mut extras = inner.extra_slots.write();
        extras.retain(|s| !Arc::ptr_eq(s, slot));
    }
}

fn find_job(inner: &Arc<Inner>, slot: &Arc<WorkerSlot>) -> Option<Job> {
    let job = find_queued(inner, slot);
    if job.is_some() {
        // The job leaves the queue accounting only now that a worker is
        // actually about to run it.
        inner.depth.fetch_sub(1, Ordering::Relaxed);
        if let Some(o) = &inner.obs {
            o.queue_depth.set(inner.queue_depth() as f64);
        }
    }
    job
}

fn find_queued(inner: &Arc<Inner>, slot: &Arc<WorkerSlot>) -> Option<Job> {
    if let Some(job) = slot.local.pop_front() {
        return Some(job);
    }
    if inner.config.legacy_injector {
        // Pull a small batch from the injector so hot bursts amortise lock
        // trips but idle workers still find stealable leftovers.
        if let Some(job) = inner.injector.grab_batch(&slot.local, 4) {
            return Some(job);
        }
    } else {
        // Own stripe first (batched — the bias that keeps the round-robin
        // placement roughly 1:1 with consumers), then the others singly.
        let n = inner.stripes.len();
        if let Some(job) = inner.stripes[slot.stripe % n].grab_batch(&slot.local, 4) {
            return Some(job);
        }
        for k in 1..n {
            if let Some(job) = inner.stripes[(slot.stripe + k) % n].pop_front() {
                return Some(job);
            }
        }
    }
    let steal = |s: &Arc<WorkerSlot>| -> Option<Job> {
        if Arc::ptr_eq(s, slot) {
            return None;
        }
        let job = s.local.steal_back()?;
        inner.steals.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = &inner.obs {
            o.steals.inc();
        }
        Some(job)
    };
    for s in inner.base_slots.iter() {
        if let Some(job) = steal(s) {
            return Some(job);
        }
    }
    for s in inner.extra_slots.read().iter() {
        if let Some(job) = steal(s) {
            return Some(job);
        }
    }
    None
}

fn park(inner: &Arc<Inner>, slot: &Arc<WorkerSlot>) {
    if !inner.config.legacy_injector {
        // Dekker order: publish PARKED *before* the final queue re-check, so
        // a concurrent spawn either sees PARKED (and unparks us) or we see
        // its job here.
        if !slot.parker.prepare() {
            return;
        }
        if inner.shutdown.load(Ordering::Acquire) || !inner.stripes.iter().all(|s| s.is_empty()) {
            slot.parker.cancel();
            return;
        }
        inner.parks.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = &inner.obs {
            o.parks.inc();
        }
        // The timeout doubles as the steal-retry cadence: work sitting in
        // another worker's local queue is invisible to the stripe check.
        slot.parker.park(Duration::from_millis(1));
        return;
    }
    let mut sleepers = inner.sleep.lock();
    // Re-check under the sleepers lock: a spawn that missed our registration
    // would otherwise strand its job until the timeout below.
    if !inner.injector.is_empty() || inner.shutdown.load(Ordering::Acquire) {
        return;
    }
    *sleepers += 1;
    inner.parks.fetch_add(1, Ordering::Relaxed);
    if let Some(o) = &inner.obs {
        o.parks.inc();
    }
    // The timeout doubles as the steal-retry cadence: work sitting in another
    // worker's local queue is invisible to the injector check above.
    inner.wake.wait_for(&mut sleepers, Duration::from_millis(1));
    *sleepers -= 1;
}

fn timer_loop(inner: &Arc<Inner>) {
    loop {
        let mut st = inner.timer.lock();
        if st.shutdown {
            return;
        }
        match st.heap.peek().map(|e| e.at) {
            None => {
                inner.timer_wake.wait(&mut st);
            }
            Some(at) => {
                let now = Instant::now();
                if at <= now {
                    let entry = st.heap.pop().expect("peeked entry");
                    drop(st);
                    inner.spawn(entry.job);
                } else {
                    inner.timer_wake.wait_until(&mut st, at);
                }
            }
        }
    }
}

/// Run `f`, booking the current executor worker (if any) as blocked so the
/// pool spawns a spare when its runnable head-count would drop below base.
/// On a non-executor thread this is just `f()`.
///
/// Wrap any wait whose completion depends on other executor tasks running:
/// synchronous call waits, result-handle gets, contended object locks. Also
/// used for long simulated compute sleeps so they don't serialise the pool.
pub fn blocking<T>(f: impl FnOnce() -> T) -> T {
    let Some(inner) = CURRENT.with(|c| c.borrow().clone()) else {
        return f();
    };
    {
        let mut cap = inner.cap.lock();
        cap.blocked += 1;
        if let Some(o) = &inner.obs {
            o.blocked.set(cap.blocked as f64);
        }
        inner.compensate(&mut cap);
    }
    let out = f();
    {
        let mut cap = inner.cap.lock();
        cap.blocked -= 1;
        if let Some(o) = &inner.obs {
            o.blocked.set(cap.blocked as f64);
        }
    }
    out
}

/// True when the calling thread is an executor worker (so runtime code can
/// pick cooperative yields over unbounded drains).
pub fn on_executor() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn runs_spawned_jobs() {
        let ex = Executor::new(2);
        let (tx, rx) = mpsc::channel();
        for i in 0..100 {
            let tx = tx.clone();
            ex.spawn(Box::new(move || {
                let _ = tx.send(i);
            }));
        }
        let mut got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        ex.shutdown();
    }

    #[test]
    fn spawn_at_orders_by_deadline_then_submission() {
        let ex = Executor::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let base = Instant::now() + Duration::from_millis(50);
        // Submit out of deadline order; equal deadlines keep submission order.
        for (tag, off) in [("c", 20u64), ("a", 0), ("b", 10), ("a2", 0)] {
            let order = Arc::clone(&order);
            ex.spawn_at(
                base + Duration::from_millis(off),
                Box::new(move || order.lock().push(tag)),
            );
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while order.lock().len() < 4 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(*order.lock(), vec!["a", "a2", "b", "c"]);
        ex.shutdown();
    }

    #[test]
    fn blocking_compensation_prevents_starvation() {
        // One worker; the first job blocks until the second job (which can
        // only run on a compensation spare) releases it.
        let ex = Executor::new(1);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (done_tx, done_rx) = mpsc::channel::<&str>();
        {
            let done = done_tx.clone();
            ex.spawn(Box::new(move || {
                blocking(|| release_rx.recv().unwrap());
                let _ = done.send("blocked-job");
            }));
        }
        // Give the first job time to occupy the only base worker.
        std::thread::sleep(Duration::from_millis(50));
        ex.spawn(Box::new(move || {
            release_tx.send(()).unwrap();
            let _ = done_tx.send("releaser");
        }));
        let mut got = vec![
            done_rx.recv_timeout(Duration::from_secs(10)).unwrap(),
            done_rx.recv_timeout(Duration::from_secs(10)).unwrap(),
        ];
        got.sort_unstable();
        assert_eq!(got, vec!["blocked-job", "releaser"]);
        assert!(ex.stats().spare_spawns >= 1);
        ex.shutdown();
    }

    #[test]
    fn deep_nested_blocking_chain_completes_on_tiny_pool() {
        // Each level parks its worker until the next level (a fresh task)
        // signals back — a depth-64 chain on a 2-thread pool deadlocks
        // without compensation.
        let ex = Executor::new(2);
        fn level(ex: Arc<Executor>, depth: usize, done: mpsc::Sender<()>) {
            if depth == 0 {
                let _ = done.send(());
                return;
            }
            let (tx, rx) = mpsc::channel::<()>();
            {
                let ex2 = Arc::clone(&ex);
                ex.spawn(Box::new(move || {
                    level(ex2, depth - 1, done);
                    let _ = tx.send(());
                }));
            }
            blocking(|| rx.recv().unwrap());
        }
        let (done_tx, done_rx) = mpsc::channel();
        let ex2 = Arc::clone(&ex);
        ex.spawn(Box::new(move || level(ex2, 64, done_tx)));
        done_rx
            .recv_timeout(Duration::from_secs(30))
            .expect("nested chain should complete");
        ex.shutdown();
    }

    #[test]
    fn spares_retire_after_blocking_clears() {
        let ex = Executor::new(1);
        let (tx, rx) = mpsc::channel::<()>();
        ex.spawn(Box::new(move || {
            blocking(|| rx.recv().unwrap());
        }));
        std::thread::sleep(Duration::from_millis(50));
        // Force compensation by keeping the base worker blocked while more
        // work flows through spares.
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let c = Arc::clone(&counter);
            ex.spawn(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while counter.load(Ordering::SeqCst) < 8 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        tx.send(()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while ex.stats().spares > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(ex.stats().spares, 0, "spares should retire");
        ex.shutdown();
    }

    #[test]
    fn shutdown_drops_pending_and_is_idempotent() {
        let ex = Executor::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        ex.shutdown();
        let r = Arc::clone(&ran);
        ex.spawn(Box::new(move || {
            r.fetch_add(1, Ordering::SeqCst);
        }));
        ex.spawn_at(
            Instant::now(),
            Box::new(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            }),
        );
        ex.shutdown();
        assert_eq!(ex.stats().queue_depth, 0);
        assert_eq!(ex.stats().timer_pending, 0);
    }

    #[test]
    fn blocking_outside_executor_is_passthrough() {
        assert_eq!(blocking(|| 41 + 1), 42);
        assert!(!on_executor());
    }
}
