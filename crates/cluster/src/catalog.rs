//! The 13-workstation testbed catalogue.

use jsym_core::MachineConfig;
use jsym_net::LinkClass;
use jsym_sysmon::{LoadModel, LoadProfile, MachineSpec};
use serde::{Deserialize, Serialize};

/// The six Sun workstation models of the paper's testbed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SunModel {
    /// SPARCstation 4/110 (microSPARC-II, 110 MHz, 10 Mbit/s Ethernet).
    Ss4_110,
    /// SPARCstation 10/40 (SuperSPARC, 40 MHz, 10 Mbit/s Ethernet).
    Ss10_40,
    /// SPARCstation 5/70 (microSPARC-II, 70 MHz, 10 Mbit/s Ethernet).
    Ss5_70,
    /// Sun Ultra 1/170 (UltraSPARC-I, 167 MHz, 100 Mbit/s Ethernet).
    Ultra1_170,
    /// Sun Ultra 10/300 (UltraSPARC-IIi, 300 MHz, 100 Mbit/s Ethernet).
    Ultra10_300,
    /// Sun Ultra 10/440 (UltraSPARC-IIi, 440 MHz, 100 Mbit/s Ethernet).
    Ultra10_440,
}

impl SunModel {
    /// Application-visible Java floating-point rate in Mflop/s.
    ///
    /// Calibrated to JDK 1.2.1 + JIT on Solaris 7: Java Grande era
    /// measurements put Ultra-class machines at a few tens of Mflop/s and
    /// microSPARC-class machines in the low single digits.
    pub fn java_mflops(self) -> f64 {
        match self {
            SunModel::Ss4_110 => 3.4,
            SunModel::Ss10_40 => 2.4,
            SunModel::Ss5_70 => 2.9,
            SunModel::Ultra1_170 => 12.0,
            SunModel::Ultra10_300 => 21.0,
            SunModel::Ultra10_440 => 30.0,
        }
    }

    /// Display label matching the paper's naming.
    pub fn label(self) -> &'static str {
        match self {
            SunModel::Ss4_110 => "SPARCstation 4/110",
            SunModel::Ss10_40 => "SPARCstation 10/40",
            SunModel::Ss5_70 => "SPARCstation 5/70",
            SunModel::Ultra1_170 => "Sun Ultra 1/170",
            SunModel::Ultra10_300 => "Sun Ultra 10/300",
            SunModel::Ultra10_440 => "Sun Ultra 10/440",
        }
    }

    /// CPU type string.
    pub fn cpu_type(self) -> &'static str {
        match self {
            SunModel::Ss4_110 | SunModel::Ss5_70 => "microSPARC-II",
            SunModel::Ss10_40 => "SuperSPARC",
            SunModel::Ultra1_170 => "UltraSPARC-I",
            SunModel::Ultra10_300 | SunModel::Ultra10_440 => "UltraSPARC-IIi",
        }
    }

    /// Clock rate in MHz.
    pub fn mhz(self) -> u32 {
        match self {
            SunModel::Ss4_110 => 110,
            SunModel::Ss10_40 => 40,
            SunModel::Ss5_70 => 70,
            SunModel::Ultra1_170 => 167,
            SunModel::Ultra10_300 => 300,
            SunModel::Ultra10_440 => 440,
        }
    }

    /// Physical memory in MB (typical configurations of the era).
    pub fn mem_mb(self) -> f64 {
        match self {
            SunModel::Ss4_110 | SunModel::Ss5_70 => 64.0,
            SunModel::Ss10_40 => 96.0,
            SunModel::Ultra1_170 => 128.0,
            SunModel::Ultra10_300 | SunModel::Ultra10_440 => 256.0,
        }
    }

    /// Whether this model sits on the 100 Mbit/s segment.
    pub fn is_ultra(self) -> bool {
        matches!(
            self,
            SunModel::Ultra1_170 | SunModel::Ultra10_300 | SunModel::Ultra10_440
        )
    }

    /// The network attachment class: Ultras on 100 Mbit/s, the rest on the
    /// shared 10 Mbit/s segment (paper §6).
    pub fn link_class(self) -> LinkClass {
        if self.is_ultra() {
            LinkClass::Lan100
        } else {
            LinkClass::Lan10
        }
    }
}

/// The day/night regimes of the paper's experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoadKind {
    /// Daytime: workstations in use by their owners.
    Day,
    /// Night: very little user load.
    Night,
    /// Fully dedicated (no background load at all) — not in the paper;
    /// used for calibration and ablations.
    Dedicated,
}

impl LoadKind {
    /// The load profile for this regime.
    pub fn profile(self) -> LoadProfile {
        match self {
            LoadKind::Day => LoadProfile::Day,
            LoadKind::Night => LoadProfile::Night,
            LoadKind::Dedicated => LoadProfile::Idle,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            LoadKind::Day => "day",
            LoadKind::Night => "night",
            LoadKind::Dedicated => "dedicated",
        }
    }
}

/// The testbed, fastest machine first. The experiment's *n*-node
/// configurations use the first *n* entries, which matches how one would
/// pick machines for a performance study; the one-node baseline is the
/// head of this list.
///
/// Counts: 4× Ultra 10/440, 2× Ultra 10/300, 2× Ultra 1/170,
/// 2× SPARCstation 4/110, 1× SPARCstation 5/70, 2× SPARCstation 10/40 — 13
/// machines, 8 of them Ultras on the fast segment. The paper names the six
/// models but not their counts; the counts here are calibrated so that the
/// first six machines are nearly homogeneous, which is what makes the
/// paper's "almost linear speed-up ... for up to 6 nodes" possible at all
/// on a heterogeneous testbed (see DESIGN.md).
pub const TESTBED: [(SunModel, &str); 13] = [
    (SunModel::Ultra10_440, "rachel"),
    (SunModel::Ultra10_440, "milena"),
    (SunModel::Ultra10_440, "figaro"),
    (SunModel::Ultra10_440, "amadeus"),
    (SunModel::Ultra10_300, "tosca"),
    (SunModel::Ultra10_300, "aida"),
    (SunModel::Ultra1_170, "carmen"),
    (SunModel::Ultra1_170, "otello"),
    (SunModel::Ss4_110, "fidelio"),
    (SunModel::Ss4_110, "nabucco"),
    (SunModel::Ss5_70, "turandot"),
    (SunModel::Ss10_40, "salome"),
    (SunModel::Ss10_40, "elektra"),
];

/// Builds the machine configuration of one testbed workstation.
pub fn machine_config(model: SunModel, name: &str, load: LoadKind, seed: u64) -> MachineConfig {
    let spec = MachineSpec::generic(name, model.java_mflops(), model.mem_mb())
        .with_model(model.label(), model.cpu_type(), model.mhz())
        .with_net(
            if model.is_ultra() {
                "ethernet-100"
            } else {
                "ethernet-10"
            },
            model.link_class().latency() * 1e3,
            if model.is_ultra() { 100.0 } else { 10.0 },
        );
    MachineConfig {
        spec,
        load: LoadModel::new(load.profile(), seed),
        link: model.link_class(),
    }
}

/// The first `n` testbed machines under the given load regime. Per-machine
/// load streams are decorrelated via `base_seed + index`.
pub fn testbed_machines(n: usize, load: LoadKind, base_seed: u64) -> Vec<MachineConfig> {
    assert!(n >= 1 && n <= TESTBED.len(), "testbed has 1..=13 machines");
    TESTBED[..n]
        .iter()
        .enumerate()
        .map(|(i, (model, name))| machine_config(*model, name, load, base_seed + i as u64))
        .collect()
}

/// Aggregate peak Java Mflop/s of the first `n` testbed machines.
pub fn aggregate_mflops(n: usize) -> f64 {
    TESTBED[..n].iter().map(|(m, _)| m.java_mflops()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_has_thirteen_machines_of_six_models() {
        assert_eq!(TESTBED.len(), 13);
        let models: std::collections::HashSet<_> = TESTBED.iter().map(|(m, _)| *m).collect();
        assert_eq!(models.len(), 6);
        let ultras = TESTBED.iter().filter(|(m, _)| m.is_ultra()).count();
        assert_eq!(ultras, 8);
    }

    #[test]
    fn testbed_is_ordered_fastest_first() {
        let speeds: Vec<f64> = TESTBED.iter().map(|(m, _)| m.java_mflops()).collect();
        for w in speeds.windows(2) {
            assert!(w[0] >= w[1] - 1e-9, "not sorted: {speeds:?}");
        }
    }

    #[test]
    fn machine_names_are_unique() {
        let names: std::collections::HashSet<_> = TESTBED.iter().map(|(_, n)| *n).collect();
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn ultras_are_fast_and_on_fast_ethernet() {
        for (model, _) in TESTBED {
            if model.is_ultra() {
                assert!(model.java_mflops() >= 10.0);
                assert_eq!(model.link_class(), LinkClass::Lan100);
            } else {
                assert!(model.java_mflops() < 5.0);
                assert_eq!(model.link_class(), LinkClass::Lan10);
            }
        }
    }

    #[test]
    fn config_reflects_model() {
        let cfg = machine_config(SunModel::Ultra10_440, "rachel", LoadKind::Night, 1);
        assert_eq!(cfg.spec.name, "rachel");
        assert_eq!(cfg.spec.peak_mflops, 30.0);
        assert_eq!(cfg.spec.cpu_mhz, 440);
        assert_eq!(cfg.link, LinkClass::Lan100);
        let slow = machine_config(SunModel::Ss10_40, "salome", LoadKind::Night, 1);
        assert_eq!(slow.link, LinkClass::Lan10);
    }

    #[test]
    fn testbed_machines_slices_and_seeds() {
        let ms = testbed_machines(5, LoadKind::Day, 100);
        assert_eq!(ms.len(), 5);
        assert_eq!(ms[0].spec.name, "rachel");
        // Different seeds → decorrelated day loads.
        assert_ne!(ms[0].load.cpu_at(500.0), ms[1].load.cpu_at(500.0));
    }

    #[test]
    fn aggregate_speed_is_monotone() {
        for n in 1..13 {
            assert!(aggregate_mflops(n + 1) > aggregate_mflops(n));
        }
        assert!((aggregate_mflops(2) - 60.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "testbed has 1..=13 machines")]
    fn zero_machines_rejected() {
        testbed_machines(0, LoadKind::Night, 0);
    }
}
