//! Jacobi heat-diffusion workload: a 2-D grid partitioned into row blocks,
//! one worker object per node, ghost rows exchanged every iteration.
//!
//! Not from the paper's evaluation, but exactly the class of application its
//! introduction targets: iterative, communication-heavy, and sensitive to
//! where neighbouring blocks live. The master drives bulk-synchronous
//! rounds: pull boundary rows (asynchronously, in parallel), push them to
//! neighbours as ghosts (one-sided), then step every worker and reduce the
//! residual — exercising all three invocation modes per iteration.

use jsym_col::{ChunkSpec, DistCol};
use jsym_core::{snapshot_state, Deployment, InvokeCtx, JsClass, JsError, Value};
use jsym_vda::Cluster;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The artifact carrying the Jacobi classes.
pub const JACOBI_ARTIFACT: &str = "jacobi-classes.jar";
/// Size of [`JACOBI_ARTIFACT`].
pub const JACOBI_ARTIFACT_BYTES: usize = 150_000;

/// One worker: a horizontal slab of the grid plus ghost rows.
#[derive(Debug, Serialize, Deserialize)]
pub struct JacobiWorker {
    rows: usize,
    cols: usize,
    /// Whether this slab contains the global top/bottom boundary.
    is_top: bool,
    is_bottom: bool,
    grid: Vec<f32>,
    ghost_above: Vec<f32>,
    ghost_below: Vec<f32>,
    /// Skip actual arithmetic (cost still modeled) for large sweeps.
    verify: bool,
}

impl JacobiWorker {
    /// Builds a slab from `[rows, cols, is_top, is_bottom, verify]`.
    pub fn from_args(args: &[Value]) -> Result<Self, JsError> {
        let rows = args.first().and_then(Value::as_i64).unwrap_or(0) as usize;
        let cols = args.get(1).and_then(Value::as_i64).unwrap_or(0) as usize;
        if rows == 0 || cols == 0 {
            return Err(JsError::BadArguments("JacobiWorker(rows, cols, ..)".into()));
        }
        let is_top = args.get(2).and_then(Value::as_bool).unwrap_or(false);
        let is_bottom = args.get(3).and_then(Value::as_bool).unwrap_or(false);
        let mut grid = vec![0.0f32; rows * cols];
        if is_top {
            // Dirichlet boundary: the hot edge of the plate.
            for v in grid[..cols].iter_mut() {
                *v = 100.0;
            }
        }
        Ok(JacobiWorker {
            rows,
            cols,
            is_top,
            is_bottom,
            grid,
            ghost_above: vec![0.0; cols],
            ghost_below: vec![0.0; cols],
            verify: args.get(4).and_then(Value::as_bool).unwrap_or(true),
        })
    }

    fn step(&mut self, ctx: &mut InvokeCtx<'_>) -> f64 {
        // 5 flops per interior cell (4 adds + 1 multiply + residual).
        ctx.compute(6.0 * (self.rows * self.cols) as f64);
        if !self.verify {
            return 1.0; // residual is meaningless without arithmetic
        }
        let (rows, cols) = (self.rows, self.cols);
        let old = self.grid.clone();
        let mut residual = 0.0f32;
        let first = if self.is_top { 1 } else { 0 };
        let last = if self.is_bottom { rows - 1 } else { rows };
        for r in first..last {
            for c in 1..cols - 1 {
                let above = if r == 0 {
                    self.ghost_above[c]
                } else {
                    old[(r - 1) * cols + c]
                };
                let below = if r == rows - 1 {
                    self.ghost_below[c]
                } else {
                    old[(r + 1) * cols + c]
                };
                let new = 0.25 * (above + below + old[r * cols + c - 1] + old[r * cols + c + 1]);
                residual = residual.max((new - old[r * cols + c]).abs());
                self.grid[r * cols + c] = new;
            }
        }
        residual as f64
    }
}

impl JsClass for JacobiWorker {
    fn class_name(&self) -> &str {
        "JacobiWorker"
    }

    fn invoke(
        &mut self,
        method: &str,
        args: &[Value],
        ctx: &mut InvokeCtx<'_>,
    ) -> jsym_core::Result<Value> {
        match method {
            // boundary(0) → top row; boundary(1) → bottom row.
            "boundary" => {
                let which = args.first().and_then(Value::as_i64).unwrap_or(0);
                let row = if which == 0 {
                    self.grid[..self.cols].to_vec()
                } else {
                    self.grid[(self.rows - 1) * self.cols..].to_vec()
                };
                Ok(Value::F32Vec(Arc::new(row)))
            }
            // set_ghost(0, row) → ghost above; set_ghost(1, row) → below.
            "set_ghost" => {
                let which = args.first().and_then(Value::as_i64).unwrap_or(0);
                let row = args
                    .get(1)
                    .and_then(Value::as_floats)
                    .ok_or_else(|| JsError::BadArguments("set_ghost(which, row)".into()))?;
                if row.len() != self.cols {
                    return Err(JsError::BadArguments("ghost row width mismatch".into()));
                }
                if which == 0 {
                    self.ghost_above = row.as_ref().clone();
                } else {
                    self.ghost_below = row.as_ref().clone();
                }
                Ok(Value::Null)
            }
            "step" => Ok(Value::F64(self.step(ctx))),
            // Row `r` of the slab, for assembling the full grid in tests.
            "row" => {
                let r = args.first().and_then(Value::as_i64).unwrap_or(0) as usize;
                if r >= self.rows {
                    return Err(JsError::BadArguments("row out of range".into()));
                }
                Ok(Value::F32Vec(Arc::new(
                    self.grid[r * self.cols..(r + 1) * self.cols].to_vec(),
                )))
            }
            _ => Err(JsError::NoSuchMethod {
                class: "JacobiWorker".into(),
                method: method.to_owned(),
            }),
        }
    }

    fn snapshot(&self) -> jsym_core::Result<Vec<u8>> {
        snapshot_state(self)
    }
}

/// Registers the Jacobi classes with a deployment.
pub fn register_jacobi_classes(deployment: &Deployment) {
    deployment.classes().register_raw(
        "JacobiWorker",
        Some(JACOBI_ARTIFACT),
        |args| Ok(Box::new(JacobiWorker::from_args(args)?) as Box<dyn JsClass>),
        |bytes| {
            let w: JacobiWorker =
                serde_json::from_slice(bytes).map_err(|e| JsError::Serialization(e.to_string()))?;
            Ok(Box::new(w) as Box<dyn JsClass>)
        },
    );
}

/// Outcome of a distributed Jacobi run.
#[derive(Clone, Debug)]
pub struct JacobiReport {
    /// Iterations executed.
    pub iterations: usize,
    /// Final global residual (max over workers).
    pub residual: f64,
    /// Virtual seconds for the iteration loop (excluding setup).
    pub virt_seconds: f64,
    /// The assembled grid (row-major), if `collect` was requested.
    pub grid: Option<Vec<f32>>,
}

/// Runs `iterations` of Jacobi on an `n × n` grid partitioned over the
/// cluster's nodes (row blocks in node order).
///
/// The row distribution is a [`DistCol`] of `JacobiWorker` chunks — each
/// chunk covers its block's rows, so the collection's location tables record
/// where every grid row lives — with the bulk-synchronous step and residual
/// reduction expressed as chunk collectives. Ghost-row exchange stays an
/// explicit per-neighbour protocol (it is deliberately *not* a collective:
/// only adjacent chunks talk).
pub fn run_jacobi(
    deployment: &Deployment,
    cluster: &Cluster,
    n: usize,
    iterations: usize,
    verify: bool,
    collect: bool,
) -> jsym_core::Result<JacobiReport> {
    let workers_n = cluster.nr_nodes();
    assert!(workers_n >= 1 && n >= workers_n, "grid must cover workers");
    let reg = deployment.register_app()?;
    let cb = reg.codebase();
    cb.add(JACOBI_ARTIFACT, JACOBI_ARTIFACT_BYTES);
    cb.load_cluster(cluster).inspect_err(|_e| {
        let _ = reg.unregister();
    })?;

    // Row blocks, top to bottom, one worker chunk per node; the chunk
    // element count is the block's row count.
    let base = n / workers_n;
    let extra = n % workers_n;
    let mut specs = Vec::with_capacity(workers_n);
    for w in 0..workers_n {
        let rows = base + usize::from(w < extra);
        specs.push(ChunkSpec::with_args(
            cluster.get_node(w)?.phys(),
            rows,
            vec![
                Value::I64(rows as i64),
                Value::I64(n as i64),
                Value::Bool(w == 0),
                Value::Bool(w == workers_n - 1),
                Value::Bool(verify),
            ],
        ));
    }
    let workers = DistCol::<f32>::create(&reg, "JacobiWorker", &specs)?;

    let clock = deployment.clock().clone();
    let t0 = clock.now();
    let mut residual = f64::INFINITY;
    for _ in 0..iterations {
        // 1. Pull boundary rows in parallel (asynchronous invocation).
        let tops = workers.map_chunks("boundary", &[Value::I64(0)])?;
        let bottoms = workers.map_chunks("boundary", &[Value::I64(1)])?;
        // 2. Push ghosts to neighbours (one-sided — per-object FIFO makes
        //    the subsequent synchronous step see them).
        for w in 0..workers_n {
            if w > 0 {
                workers
                    .chunk_obj(w)
                    .oinvoke("set_ghost", &[Value::I64(0), bottoms[w - 1].clone()])?;
            }
            if w + 1 < workers_n {
                workers
                    .chunk_obj(w)
                    .oinvoke("set_ghost", &[Value::I64(1), tops[w + 1].clone()])?;
            }
        }
        // 3. Step everyone in parallel; reduce the residual.
        let steps = workers.map_chunks("step", &[])?;
        residual = steps
            .iter()
            .fold(0.0, |acc, v| acc.max(v.as_f64().unwrap_or(0.0)));
    }
    let virt_seconds = clock.now() - t0;

    let grid = if collect {
        let mut grid = Vec::with_capacity(n * n);
        for w in 0..workers.chunk_count() {
            let rows = workers.chunk_range(w).len();
            let worker = workers.chunk_obj(w);
            for r in 0..rows {
                let row = worker.sinvoke("row", &[Value::I64(r as i64)])?;
                grid.extend_from_slice(row.as_floats().expect("row is floats"));
            }
        }
        Some(grid)
    } else {
        None
    };

    let _ = workers.free();
    reg.unregister()?;
    Ok(JacobiReport {
        iterations,
        residual,
        virt_seconds,
        grid,
    })
}

/// Reference sequential Jacobi for correctness checks (same boundary
/// conditions as the distributed version).
pub fn sequential_jacobi(n: usize, iterations: usize) -> Vec<f32> {
    let mut grid = vec![0.0f32; n * n];
    for v in grid[..n].iter_mut() {
        *v = 100.0;
    }
    for _ in 0..iterations {
        let old = grid.clone();
        for r in 1..n - 1 {
            for c in 1..n - 1 {
                grid[r * n + c] = 0.25
                    * (old[(r - 1) * n + c]
                        + old[(r + 1) * n + c]
                        + old[r * n + c - 1]
                        + old[r * n + c + 1]);
            }
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_jacobi_diffuses_heat_downward() {
        let g = sequential_jacobi(8, 50);
        // Top row stays hot.
        assert_eq!(g[0], 100.0);
        // Heat has reached the second row but decays with depth.
        assert!(g[8 + 4] > g[3 * 8 + 4]);
        assert!(g[3 * 8 + 4] > 0.0);
    }

    #[test]
    fn worker_rejects_bad_construction() {
        assert!(JacobiWorker::from_args(&[]).is_err());
        assert!(JacobiWorker::from_args(&[Value::I64(0), Value::I64(5)]).is_err());
        assert!(JacobiWorker::from_args(&[Value::I64(4), Value::I64(4)]).is_ok());
    }
}
