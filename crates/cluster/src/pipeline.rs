//! A locality-oriented pipeline workload.
//!
//! Not from the paper's evaluation, but exactly the kind of application its
//! introduction motivates: a chain of processing stages where the programmer
//! knows which objects interact heavily and places neighbouring stages close
//! to each other (same cluster), letting only the cheap hand-off cross the
//! slow links. Used by the `pipeline_site` example and the locality
//! ablation.

use jsym_core::{snapshot_state, InvokeCtx, JsClass, JsError, Value};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The artifact carrying the pipeline classes.
pub const PIPELINE_ARTIFACT: &str = "pipeline-classes.jar";
/// Size of [`PIPELINE_ARTIFACT`].
pub const PIPELINE_ARTIFACT_BYTES: usize = 120_000;

/// One pipeline stage: transforms an item (modeled flops per element) and
/// forwards it to the next stage, if any.
#[derive(Debug, Serialize, Deserialize)]
pub struct Stage {
    stage_id: i64,
    flops_per_element: f64,
    next: Option<jsym_core::ObjectHandle>,
    processed: u64,
}

impl Stage {
    /// Builds a stage from `[stage_id, flops_per_element, next_handle?]`.
    pub fn from_args(args: &[Value]) -> Self {
        Stage {
            stage_id: args.first().and_then(Value::as_i64).unwrap_or(0),
            flops_per_element: args.get(1).and_then(Value::as_f64).unwrap_or(1000.0),
            next: args.get(2).and_then(Value::as_handle),
            processed: 0,
        }
    }
}

impl JsClass for Stage {
    fn class_name(&self) -> &str {
        "Stage"
    }

    fn invoke(
        &mut self,
        method: &str,
        args: &[Value],
        ctx: &mut InvokeCtx<'_>,
    ) -> jsym_core::Result<Value> {
        match method {
            // process(item) → transformed item after the whole downstream
            // chain has run (synchronous hand-off).
            "process" => {
                let item = args
                    .first()
                    .and_then(Value::as_floats)
                    .ok_or_else(|| JsError::BadArguments("process(floats)".into()))?;
                ctx.compute(self.flops_per_element * item.len() as f64);
                // The "transformation": stage id stamped into the data so
                // tests can check ordering.
                let out: Vec<f32> = item
                    .iter()
                    .map(|v| v * 0.5 + self.stage_id as f32)
                    .collect();
                self.processed += 1;
                let out = Value::F32Vec(Arc::new(out));
                match self.next {
                    Some(next) => ctx.invoke(next, "process", &[out]),
                    None => Ok(out),
                }
            }
            "processed" => Ok(Value::I64(self.processed as i64)),
            "set_next" => {
                self.next = args.first().and_then(Value::as_handle);
                Ok(Value::Null)
            }
            _ => Err(JsError::NoSuchMethod {
                class: "Stage".into(),
                method: method.to_owned(),
            }),
        }
    }

    fn snapshot(&self) -> jsym_core::Result<Vec<u8>> {
        snapshot_state(self)
    }
}

/// Registers the pipeline classes with a deployment.
pub fn register_pipeline_classes(deployment: &jsym_core::Deployment) {
    deployment
        .classes()
        .register_class::<Stage, _>("Stage", Some(PIPELINE_ARTIFACT), |args| {
            Ok(Stage::from_args(args))
        });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_parses_args() {
        let s = Stage::from_args(&[Value::I64(3), Value::F64(500.0)]);
        assert_eq!(s.stage_id, 3);
        assert_eq!(s.flops_per_element, 500.0);
        assert!(s.next.is_none());
        assert_eq!(s.processed, 0);
    }
}
