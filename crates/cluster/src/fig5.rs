//! The Figure 5 experiment driver: JavaSymphony matrix multiplication
//! performance for different problem sizes, node counts and system loads.

use crate::catalog::{aggregate_mflops, testbed_machines, LoadKind, TESTBED};
use crate::matmul::{
    register_matmul_classes, run_collective, run_master_slave, run_sequential, MatmulConfig,
};
use jsym_core::JsShell;
use serde::{Deserialize, Serialize};

/// Which multiplication kernel a sweep cell runs (one-node cells are always
/// the sequential no-JavaSymphony baseline).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fig5Kernel {
    /// The paper's polling master/slave task farm (Figure 6).
    MasterSlave,
    /// The `DistCol` collective kernel: weighted static row chunks, one
    /// teamed `multiply` fan-out, no polling loop.
    Collective,
}

impl Fig5Kernel {
    /// Label used in result rows and artifacts.
    pub fn label(self) -> &'static str {
        match self {
            Fig5Kernel::MasterSlave => "master_slave",
            Fig5Kernel::Collective => "collective",
        }
    }
}

/// Sweep configuration for the Figure 5 reproduction.
#[derive(Clone, Debug)]
pub struct Fig5Config {
    /// Matrix sizes N (the paper plots several).
    pub sizes: Vec<usize>,
    /// Node counts (1 = sequential baseline without JavaSymphony).
    pub node_counts: Vec<usize>,
    /// Load regimes (the paper: day and night).
    pub loads: Vec<LoadKind>,
    /// Real seconds per virtual second for the simulation.
    pub time_scale: f64,
    /// Base seed for the load streams.
    pub seed: u64,
    /// Whether slaves compute actual values (slower; for tests).
    pub verify: bool,
    /// The multiplication kernel for multi-node cells.
    pub kernel: Fig5Kernel,
    /// Whether the deployment coalesces same-destination RMI traffic
    /// (`JsShell::rmi_batching` with default window/size).
    pub batching: bool,
    /// Worker threads for the work-stealing executor runtime
    /// (`JsShell::executor`); 0 keeps the thread-per-node model.
    pub executor: usize,
}

impl Fig5Config {
    /// The full paper-scale sweep: N ∈ {200,400,600,800,1000},
    /// nodes ∈ 1..=13, day and night, master/slave kernel.
    pub fn paper() -> Self {
        Fig5Config {
            sizes: vec![200, 400, 600, 800, 1000],
            node_counts: (1..=13).collect(),
            loads: vec![LoadKind::Night, LoadKind::Day],
            time_scale: 5e-2,
            seed: 20001204, // the CLUSTER 2000 conference date
            verify: false,
            kernel: Fig5Kernel::MasterSlave,
            batching: false,
            executor: 0,
        }
    }

    /// The collective-kernel sweep: the paper sizes plus N = 2000 (which the
    /// task farm's per-task round trips made impractically slow), RMI
    /// batching on.
    pub fn paper_collective() -> Self {
        let mut cfg = Fig5Config::paper();
        cfg.sizes.push(2000);
        cfg.kernel = Fig5Kernel::Collective;
        cfg.batching = true;
        cfg
    }

    /// Real seconds per virtual second for one problem size: the base
    /// [`time_scale`](Fig5Config::time_scale) stretched for small N and
    /// compressed for the largest.
    ///
    /// Virtual results are scale-invariant in the cost model; the scale only
    /// sets how much real wall time buys one virtual second, i.e. how much
    /// of the host's real scheduling noise bleeds into a measurement
    /// (bleed ≈ real overhead ÷ scale). Small-N cells last a fraction of a
    /// virtual second, so they can afford a much larger scale for precision
    /// at negligible wall cost, while N=2000 cells run hundreds of virtual
    /// seconds dominated by modeled compute and tolerate a smaller one.
    pub fn scale_for(&self, n: usize) -> f64 {
        self.time_scale * (1500.0 / n.max(1) as f64).clamp(0.5, 8.0)
    }

    /// A laptop-second smoke sweep used by the integration tests.
    pub fn smoke() -> Self {
        Fig5Config {
            sizes: vec![400],
            node_counts: vec![1, 2, 4, 6, 13],
            loads: vec![LoadKind::Night],
            time_scale: 2e-2,
            seed: 7,
            verify: false,
            kernel: Fig5Kernel::MasterSlave,
            batching: false,
            executor: 0,
        }
    }
}

/// One measured point of Figure 5.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Matrix dimension N.
    pub n: usize,
    /// Number of nodes used (1 = sequential, no JavaSymphony).
    pub nodes: usize,
    /// Load regime label ("day"/"night"/"dedicated").
    pub load: String,
    /// Measured execution time in (virtual) seconds.
    pub seconds: f64,
    /// Speed-up relative to the same-load one-node baseline.
    pub speedup: f64,
    /// Parallel efficiency against the heterogeneous ideal: ideal time =
    /// 2N³ / (aggregate speed of the allocated machines).
    pub efficiency: f64,
    /// RMI-layer messages sent during the run (0 for sequential).
    pub messages: u64,
    /// Kernel label ("master_slave"/"collective"; "sequential" for one-node
    /// cells).
    pub kernel: String,
}

/// One cell's measurements plus the deployment's observability export.
#[derive(Clone, Debug)]
pub struct CellRun {
    /// Measured execution time in virtual seconds.
    pub seconds: f64,
    /// RMI-layer messages sent (0 for the sequential baseline).
    pub messages: u64,
    /// Metrics-only JSON export of the cell's deployment (per-node message
    /// counters, per-RMI-mode call counts and caller-latency histograms,
    /// per-link byte/latency histograms). Spans are stripped to keep the
    /// artifact small over a paper-scale sweep.
    pub obs_json: String,
}

/// Runs one cell of the sweep: builds a fresh deployment of the first
/// `nodes` testbed machines under `load` and measures the multiplication.
pub fn run_cell(
    n: usize,
    nodes: usize,
    load: LoadKind,
    time_scale: f64,
    seed: u64,
    verify: bool,
) -> f64 {
    run_cell_with_messages(n, nodes, load, time_scale, seed, verify).0
}

/// As [`run_cell`], also returning the number of messages sent.
pub fn run_cell_with_messages(
    n: usize,
    nodes: usize,
    load: LoadKind,
    time_scale: f64,
    seed: u64,
    verify: bool,
) -> (f64, u64) {
    let run = run_cell_full(n, nodes, load, time_scale, seed, verify);
    (run.seconds, run.messages)
}

/// As [`run_cell_with_messages`], also capturing the deployment's metrics.
/// Runs the historical master/slave kernel without batching; see
/// [`run_cell_opts`] for kernel and batching control.
pub fn run_cell_full(
    n: usize,
    nodes: usize,
    load: LoadKind,
    time_scale: f64,
    seed: u64,
    verify: bool,
) -> CellRun {
    run_cell_opts(
        n,
        nodes,
        load,
        time_scale,
        seed,
        verify,
        Fig5Kernel::MasterSlave,
        false,
        0,
    )
}

/// Runs one sweep cell with an explicit kernel, RMI-batching setting and
/// executor mode (`executor` worker threads; 0 = thread-per-node).
#[allow(clippy::too_many_arguments)]
pub fn run_cell_opts(
    n: usize,
    nodes: usize,
    load: LoadKind,
    time_scale: f64,
    seed: u64,
    verify: bool,
    kernel: Fig5Kernel,
    batching: bool,
    executor: usize,
) -> CellRun {
    assert!((1..=TESTBED.len()).contains(&nodes));
    let mut shell = JsShell::new()
        .time_scale(time_scale)
        .monitor_period(5.0)
        .failure_timeout(1e9)
        .add_machines(testbed_machines(nodes, load, seed));
    if batching {
        let bc = jsym_net::BatchConfig::default();
        shell = shell.rmi_batching(bc.flush_window, bc.max_bytes);
    }
    if executor > 0 {
        shell = shell.executor(executor);
    }
    let deployment = shell.boot();
    register_matmul_classes(&deployment);

    let (seconds, messages) = if nodes == 1 {
        // One-node points: sequential multiplication without JavaSymphony.
        let machine = deployment
            .pool()
            .machine(deployment.machines()[0])
            .expect("machine exists");
        (run_sequential(&machine, n), 0)
    } else {
        let cluster = deployment
            .vda()
            .request_cluster(nodes, None)
            .expect("testbed has enough machines");
        let mut cfg = MatmulConfig::new(n);
        cfg.verify = verify;
        // Small problems are latency-bound: one chunk per node halves the
        // fan-out round trips; larger ones keep two so same-destination
        // requests stay in flight for the coalescing stage and imbalance
        // from load drift stays amortised.
        if n <= 400 {
            cfg.chunks_per_node = 1;
        }
        let report = match kernel {
            Fig5Kernel::MasterSlave => run_master_slave(&deployment, &cluster, &cfg),
            Fig5Kernel::Collective => run_collective(&deployment, &cluster, &cfg),
        }
        .expect("matmul run");
        if verify {
            assert_eq!(report.correct, Some(true), "distributed product wrong");
        }
        (report.virt_seconds, report.messages)
    };
    let obs_json = {
        let mut snap = deployment.obs().snapshot();
        snap.spans.clear();
        snap.to_json()
    };
    deployment.shutdown();
    CellRun {
        seconds,
        messages,
        obs_json,
    }
}

/// Runs the full sweep, printing one row per cell to `out` as it completes
/// (the harness binary passes stdout) and returning every row.
pub fn run_fig5(cfg: &Fig5Config, mut progress: impl FnMut(&Fig5Row)) -> Vec<Fig5Row> {
    run_fig5_instrumented(cfg, |row, _obs_json| progress(row))
}

/// As [`run_fig5`], additionally handing each cell's metrics JSON export to
/// the callback so the harness can write per-cell observability artifacts
/// next to the result rows.
pub fn run_fig5_instrumented(
    cfg: &Fig5Config,
    mut progress: impl FnMut(&Fig5Row, &str),
) -> Vec<Fig5Row> {
    let mut rows = Vec::new();
    for &load in &cfg.loads {
        for &n in &cfg.sizes {
            let mut baseline = None;
            for &nodes in &cfg.node_counts {
                let run = run_cell_opts(
                    n,
                    nodes,
                    load,
                    cfg.scale_for(n),
                    cfg.seed,
                    cfg.verify,
                    cfg.kernel,
                    cfg.batching,
                    cfg.executor,
                );
                if nodes == 1 {
                    baseline = Some(run.seconds);
                }
                let base = baseline.unwrap_or(run.seconds);
                let ideal = 2.0 * (n as f64).powi(3) / (aggregate_mflops(nodes) * 1e6);
                let row = Fig5Row {
                    n,
                    nodes,
                    load: load.label().to_owned(),
                    seconds: run.seconds,
                    speedup: base / run.seconds,
                    efficiency: ideal / run.seconds,
                    messages: run.messages,
                    kernel: if nodes == 1 {
                        "sequential".to_owned()
                    } else {
                        cfg.kernel.label().to_owned()
                    },
                };
                progress(&row, &run.obs_json);
                rows.push(row);
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_covers_the_figure() {
        let cfg = Fig5Config::paper();
        assert_eq!(cfg.sizes.len(), 5);
        assert_eq!(cfg.node_counts, (1..=13).collect::<Vec<_>>());
        assert_eq!(cfg.loads.len(), 2);
        assert_eq!(cfg.kernel, Fig5Kernel::MasterSlave);
        assert!(!cfg.batching);
    }

    #[test]
    fn collective_config_adds_n2000_and_batching() {
        let cfg = Fig5Config::paper_collective();
        assert!(cfg.sizes.contains(&2000));
        assert_eq!(cfg.kernel, Fig5Kernel::Collective);
        assert!(cfg.batching);
        assert_eq!(Fig5Kernel::Collective.label(), "collective");
    }

    #[test]
    fn collective_cell_verifies_the_product_under_batching() {
        // verify=true makes run_cell_opts assert the sampled product inside.
        let run = run_cell_opts(
            120,
            3,
            LoadKind::Dedicated,
            1e-1,
            0,
            true,
            Fig5Kernel::Collective,
            true,
            0,
        );
        assert!(run.messages > 0);
        assert!(run.seconds > 0.0);
    }

    #[test]
    fn sequential_cell_matches_machine_speed() {
        // N=200 on the 30 Mflop/s dedicated Ultra: 16 Mflop / 30 Mflop/s
        // ≈ 0.53 virtual s. Scale 1e-1 (53 ms real) keeps OS sleep overshoot
        // small even when the whole workspace's tests oversubscribe a
        // single-core host.
        let secs = run_cell(200, 1, LoadKind::Dedicated, 1e-1, 0, false);
        assert!(
            (0.45..0.9).contains(&secs),
            "sequential N=200 took {secs} virtual s, expected ≈0.53"
        );
    }

    #[test]
    fn two_dedicated_nodes_beat_one() {
        // Time scale large enough that real thread-hop overhead (~1 ms per
        // RMI round trip on a single-core host) stays well below the modeled
        // per-task compute time.
        let one = run_cell(400, 1, LoadKind::Dedicated, 1e-1, 0, false);
        let two = run_cell(400, 2, LoadKind::Dedicated, 1e-1, 0, false);
        assert!(
            two < one,
            "2 equal nodes should beat sequential: 1={one:.2}s 2={two:.2}s"
        );
    }
}

#[cfg(test)]
mod sweep_tests {
    use super::*;

    /// Exercises the sweep driver itself (progress callback, baselines,
    /// derived columns) on a two-cell configuration.
    #[test]
    fn run_fig5_produces_consistent_rows() {
        let cfg = Fig5Config {
            sizes: vec![200],
            node_counts: vec![1, 2],
            loads: vec![LoadKind::Dedicated],
            time_scale: 1e-2,
            seed: 1,
            verify: false,
            kernel: Fig5Kernel::MasterSlave,
            batching: false,
            executor: 0,
        };
        let mut seen = 0;
        let rows = run_fig5(&cfg, |_| seen += 1);
        assert_eq!(seen, 2);
        assert_eq!(rows.len(), 2);
        let base = &rows[0];
        assert_eq!(base.nodes, 1);
        assert_eq!(base.speedup, 1.0);
        assert_eq!(base.messages, 0, "sequential run uses no RMI");
        let two = &rows[1];
        assert_eq!(two.nodes, 2);
        assert!(two.messages > 0);
        assert!((two.speedup - base.seconds / two.seconds).abs() < 1e-9);
        assert!(two.efficiency > 0.0 && two.efficiency <= 1.05);
    }

    /// The instrumented driver exports a metrics-only observability artifact
    /// for every cell: per-node message counters and per-RMI-mode call data,
    /// with spans stripped.
    #[test]
    fn instrumented_cells_export_metrics() {
        let run = run_cell_full(200, 2, LoadKind::Dedicated, 1e-2, 1, false);
        assert!(run.messages > 0);
        assert!(run.obs_json.contains("\"schema\": \"jsym-obs/v1\""));
        assert!(
            run.obs_json.contains("rmi.calls"),
            "no RMI counters in export"
        );
        assert!(run.obs_json.contains("msg.sent"), "no per-node counters");
        assert!(run.obs_json.contains("\"spans\": []"), "spans not stripped");
    }
}
