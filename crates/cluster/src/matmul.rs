//! The paper's evaluation workload: master/slave matrix multiplication
//! (§6, Figure 6), plus the sequential baseline used for one-node points and
//! a `DistCol`-based collective variant of the same multiplication.

use jsym_col::{partition_weighted, DistCol};
use jsym_core::{snapshot_state, Deployment, InvokeCtx, JsClass, JsError, JsObj, Placement, Value};
use jsym_sysmon::SimMachine;
use jsym_vda::Cluster;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The artifact carrying the `Matrix` class ("../matrix-test/classes.jar"
/// in Figure 6); ~300 KB of byte-code.
pub const MATRIX_ARTIFACT: &str = "matrix-classes.jar";
/// Size of [`MATRIX_ARTIFACT`].
pub const MATRIX_ARTIFACT_BYTES: usize = 300_000;

/// The slave-side `Matrix` class: holds the replicated B matrix and
/// multiplies row-blocks of A against it.
#[derive(Debug, Serialize, Deserialize)]
pub struct Matrix {
    dim_a2: usize,
    dim_b2: usize,
    b: Vec<f32>,
    /// When false, the arithmetic is skipped (cost is still modeled) — used
    /// by large benchmark runs where the numeric result is not checked.
    verify: bool,
}

impl Matrix {
    /// Builds an empty Matrix slave (B arrives via `init`).
    pub fn from_args(_args: &[Value]) -> Self {
        Matrix {
            dim_a2: 0,
            dim_b2: 0,
            b: Vec::new(),
            verify: true,
        }
    }
}

impl JsClass for Matrix {
    fn class_name(&self) -> &str {
        "Matrix"
    }

    fn invoke(
        &mut self,
        method: &str,
        args: &[Value],
        ctx: &mut InvokeCtx<'_>,
    ) -> jsym_core::Result<Value> {
        match method {
            // init(dimA2, dimB2, B, verify) — replicate B on this node
            // (paper: one-sided invocation of method init).
            "init" => {
                let dim_a2 = args.first().and_then(Value::as_i64).unwrap_or(0) as usize;
                let dim_b2 = args.get(1).and_then(Value::as_i64).unwrap_or(0) as usize;
                let b = args
                    .get(2)
                    .and_then(Value::as_floats)
                    .ok_or_else(|| JsError::BadArguments("init(.., B: floats)".into()))?;
                if b.len() != dim_a2 * dim_b2 {
                    return Err(JsError::BadArguments(format!(
                        "B has {} elements, expected {}",
                        b.len(),
                        dim_a2 * dim_b2
                    )));
                }
                self.dim_a2 = dim_a2;
                self.dim_b2 = dim_b2;
                self.b = b.as_ref().clone();
                self.verify = args.get(3).and_then(Value::as_bool).unwrap_or(true);
                Ok(Value::Null)
            }
            // multiply(first_row, rowsA) → [first_row, C-block]
            "multiply" => {
                let first_row = args
                    .first()
                    .and_then(Value::as_i64)
                    .ok_or_else(|| JsError::BadArguments("multiply(first_row, rows)".into()))?;
                let rows_a = args
                    .get(1)
                    .and_then(Value::as_floats)
                    .ok_or_else(|| JsError::BadArguments("multiply(first_row, rows)".into()))?;
                if self.dim_a2 == 0 {
                    return Err(JsError::MethodFailed("init was never called".into()));
                }
                let n_rows = rows_a.len() / self.dim_a2;
                // The modeled cost: 2·rows·K·M flops of Java arithmetic.
                let flops = 2.0 * n_rows as f64 * self.dim_a2 as f64 * self.dim_b2 as f64;
                ctx.compute(flops);
                let mut block = vec![0.0f32; n_rows * self.dim_b2];
                if self.verify {
                    for r in 0..n_rows {
                        let a_row = &rows_a[r * self.dim_a2..(r + 1) * self.dim_a2];
                        let c_row = &mut block[r * self.dim_b2..(r + 1) * self.dim_b2];
                        for (k, &a) in a_row.iter().enumerate() {
                            let b_row = &self.b[k * self.dim_b2..(k + 1) * self.dim_b2];
                            for (c, &b) in c_row.iter_mut().zip(b_row) {
                                *c += a * b;
                            }
                        }
                    }
                }
                Ok(Value::List(vec![
                    Value::I64(first_row),
                    Value::F32Vec(Arc::new(block)),
                ]))
            }
            // Setup barrier: confirms a previously issued one-sided init
            // has been applied (per-object FIFO makes this a happens-after).
            "ready" => Ok(Value::Bool(self.dim_a2 > 0)),
            _ => Err(JsError::NoSuchMethod {
                class: "Matrix".into(),
                method: method.to_owned(),
            }),
        }
    }

    fn snapshot(&self) -> jsym_core::Result<Vec<u8>> {
        snapshot_state(self)
    }
}

/// Registers the `Matrix` class (carried by [`MATRIX_ARTIFACT`]).
pub fn register_matmul_classes(deployment: &Deployment) {
    deployment
        .classes()
        .register_class::<Matrix, _>("Matrix", Some(MATRIX_ARTIFACT), |args| {
            Ok(Matrix::from_args(args))
        });
}

/// Parameters of one master/slave run.
#[derive(Clone, Debug)]
pub struct MatmulConfig {
    /// Matrix dimension (N×N · N×N).
    pub n: usize,
    /// Rows of A per task; fixed for the whole run (paper: "The number of
    /// rows does not change during execution of the application").
    pub rows_per_task: usize,
    /// Whether slaves actually compute values (tests) or only model the
    /// cost (large benchmark sweeps).
    pub verify: bool,
    /// Master poll interval in virtual seconds (the paper's WHILE loop).
    pub poll_interval: f64,
    /// Chunks per node for [`run_collective`]. Two keeps same-destination
    /// requests in flight for the batching stage; one minimises per-call
    /// latency when the fan-out itself dominates (small N).
    pub chunks_per_node: usize,
}

impl MatmulConfig {
    /// A configuration with the experiment defaults: ~26 tasks, verification
    /// on, 10 ms poll (the paper's master polls in a tight loop; a small
    /// virtual pause keeps the simulated master from monopolising its CPU).
    pub fn new(n: usize) -> Self {
        MatmulConfig {
            n,
            rows_per_task: n.div_ceil(26).max(1),
            verify: true,
            poll_interval: 0.01,
            chunks_per_node: COLLECTIVE_CHUNKS_PER_NODE,
        }
    }

    /// Disables numeric verification (cost-model-only slaves).
    pub fn without_verification(mut self) -> Self {
        self.verify = false;
        self
    }
}

/// Outcome of one master/slave run.
#[derive(Clone, Debug)]
pub struct MatmulReport {
    /// Virtual seconds of the multiplication itself: task farming from the
    /// first task issued through the last merged result. This is the
    /// quantity Figure 5 plots; setup is reported separately.
    pub virt_seconds: f64,
    /// Virtual seconds of setup: codebase distribution, object creation and
    /// the replication of matrix B.
    pub setup_seconds: f64,
    /// Number of tasks farmed out.
    pub tasks: usize,
    /// Number of slave nodes.
    pub nodes: usize,
    /// `Some(true)` when verification ran and every sampled element of C
    /// matched the direct product.
    pub correct: Option<bool>,
    /// RMI-layer messages sent during the run (network-wide delta).
    pub messages: u64,
}

/// Deterministic test matrices: small integers so f32 products are exact.
fn a_elem(i: usize, j: usize) -> f32 {
    ((i * 31 + j * 7) % 13) as f32 - 6.0
}
fn b_elem(i: usize, j: usize) -> f32 {
    ((i * 17 + j * 3) % 11) as f32 - 5.0
}

/// The master/slave matrix multiplication of Figure 6, transcribed onto the
/// Rust API. Registers an application, loads the codebase onto the cluster,
/// replicates B with one-sided invocations, farms out row-block tasks with
/// asynchronous invocations, merges results as they become ready, and
/// unregisters.
pub fn run_master_slave(
    deployment: &Deployment,
    cluster: &Cluster,
    cfg: &MatmulConfig,
) -> jsym_core::Result<MatmulReport> {
    let n = cfg.n;
    let clock = deployment.clock().clone();
    let msgs_before = deployment.net_stats().msgs_sent;

    // register JavaSymphony application
    let reg = deployment.register_app()?;

    let t_setup = clock.now();

    // define codebase and load on cluster c1
    let cb = reg.codebase();
    cb.add(MATRIX_ARTIFACT, MATRIX_ARTIFACT_BYTES);
    cb.load_cluster(cluster).inspect_err(|_e| {
        let _ = reg.unregister();
    })?;

    // allocate and initialize matrices A, B (C is assembled from results)
    let a: Arc<Vec<f32>> = Arc::new((0..n * n).map(|idx| a_elem(idx / n, idx % n)).collect());
    let b: Arc<Vec<f32>> = Arc::new((0..n * n).map(|idx| b_elem(idx / n, idx % n)).collect());
    let mut c = vec![0.0f32; n * n];

    let nr_nodes = cluster.nr_nodes();
    // One Matrix object per cluster node; copy matrix B to all cluster
    // nodes via one-sided invocation of init.
    let mut slaves: Vec<JsObj> = Vec::with_capacity(nr_nodes);
    for i in 0..nr_nodes {
        let node = cluster.get_node(i)?;
        let slave = JsObj::create(&reg, "Matrix", &[], Placement::OnNode(&node), None)?;
        slave.oinvoke(
            "init",
            &[
                Value::I64(n as i64),
                Value::I64(n as i64),
                Value::F32Vec(Arc::clone(&b)),
                Value::Bool(cfg.verify),
            ],
        )?;
        slaves.push(slave);
    }

    // Wait until every replica of B has been applied (one-sided init gives
    // no completion, but per-object FIFO means a synchronous `ready` call
    // returning true happens after it).
    for slave in &slaves {
        let ok = slave.sinvoke("ready", &[])?;
        if ok != Value::Bool(true) {
            return Err(JsError::MethodFailed("init not applied".into()));
        }
    }
    let t_start = clock.now();
    let setup_seconds = t_start - t_setup;

    // determine nr of tasks to be processed by cluster nodes
    let rows_per_task = cfg.rows_per_task.max(1);
    let nr_tasks = n.div_ceil(rows_per_task);
    let mut next_task = 0usize;
    // nodeBusy[i] = Some(task) while node i executes task
    let mut node_busy: Vec<Option<usize>> = vec![None; nr_nodes];
    let mut handles: Vec<Option<jsym_core::ResultHandle>> = (0..nr_nodes).map(|_| None).collect();
    let mut merged = 0usize;

    let merge = |result: Value, c: &mut [f32]| merge_block(result, c, n);

    // distribute tasks (sets of rows of matrix A) to nodes of cluster
    while merged < nr_tasks {
        let mut progressed = false;
        for i in 0..nr_nodes {
            // node is executing task: is the result available?
            if node_busy[i].is_some() {
                let ready = handles[i].as_ref().is_some_and(|h| h.is_ready());
                if ready {
                    let h = handles[i].take().expect("handle present");
                    merge(h.get_result()?, &mut c)?; // merge result in matrix C
                    node_busy[i] = None; // node is free again
                    merged += 1;
                    progressed = true;
                }
            }
            // node is free to work on next task
            if node_busy[i].is_none() && next_task < nr_tasks {
                let first_row = next_task * rows_per_task;
                let rows = rows_per_task.min(n - first_row);
                let task_rows: Arc<Vec<f32>> =
                    Arc::new(a[first_row * n..(first_row + rows) * n].to_vec());
                let h = slaves[i].ainvoke(
                    "multiply",
                    &[Value::I64(first_row as i64), Value::F32Vec(task_rows)],
                )?;
                handles[i] = Some(h);
                node_busy[i] = Some(next_task);
                next_task += 1;
                progressed = true;
            }
        }
        if !progressed {
            clock.sleep(cfg.poll_interval);
        }
    }

    let virt_seconds = clock.now() - t_start;

    // ... do something with the result: verify a sample against the direct
    // product when requested.
    let correct = if cfg.verify {
        Some(verify_sample(&a, &b, &c, n))
    } else {
        None
    };

    for s in &slaves {
        let _ = s.free();
    }
    // unregister JavaSymphony application
    reg.unregister()?;

    Ok(MatmulReport {
        virt_seconds,
        setup_seconds,
        tasks: nr_tasks,
        nodes: nr_nodes,
        correct,
        messages: deployment.net_stats().msgs_sent - msgs_before,
    })
}

/// Merges one `multiply` result (`[first_row, C-block]`) into C.
fn merge_block(result: Value, c: &mut [f32], n: usize) -> jsym_core::Result<()> {
    let list = result
        .as_list()
        .ok_or_else(|| JsError::MethodFailed("bad multiply result".into()))?;
    let first_row = list[0].as_i64().unwrap_or(0) as usize;
    let block = list[1]
        .as_floats()
        .ok_or_else(|| JsError::MethodFailed("bad multiply block".into()))?;
    let rows = block.len() / n;
    c[first_row * n..(first_row + rows) * n].copy_from_slice(block);
    Ok(())
}

/// Chunks per node used by [`run_collective`]: splitting each node's row
/// share in two keeps more than one same-destination request in flight per
/// round, which is what the RMI batching stage coalesces.
pub const COLLECTIVE_CHUNKS_PER_NODE: usize = 2;

/// The same multiplication expressed on a [`DistCol`]: rows of A are
/// partitioned statically across the cluster proportionally to the speed
/// each node can actually deliver — peak Mflop/s discounted by the
/// background load the sysmon reports, and, on the master, by the
/// serialization workload of the fan-out itself (the paper's task farm
/// reaches a similar steady-state split dynamically). The whole
/// multiplication is one teamed `multiply` fan-out — no polling loop,
/// every request in flight at once, so same-destination traffic coalesces
/// when `JsShell::rmi_batching` is on.
///
/// Setup (codebase distribution, chunk creation, replication of B into
/// every chunk object) is reported separately, exactly as in
/// [`run_master_slave`].
pub fn run_collective(
    deployment: &Deployment,
    cluster: &Cluster,
    cfg: &MatmulConfig,
) -> jsym_core::Result<MatmulReport> {
    let n = cfg.n;
    let clock = deployment.clock().clone();
    let msgs_before = deployment.net_stats().msgs_sent;

    let reg = deployment.register_app()?;
    let t_setup = clock.now();

    let cb = reg.codebase();
    cb.add(MATRIX_ARTIFACT, MATRIX_ARTIFACT_BYTES);
    cb.load_cluster(cluster).inspect_err(|_e| {
        let _ = reg.unregister();
    })?;

    let a: Arc<Vec<f32>> = Arc::new((0..n * n).map(|idx| a_elem(idx / n, idx % n)).collect());
    let b: Arc<Vec<f32>> = Arc::new((0..n * n).map(|idx| b_elem(idx / n, idx % n)).collect());
    let mut c = vec![0.0f32; n * n];

    // Static weighted partition: rows proportional to the Mflop/s each node
    // can actually deliver — peak speed discounted by the background load the
    // sysmon has observed recently. On a dedicated (night) testbed this is
    // within noise of a plain peak split; under office-hours load it keeps a
    // busy workstation from gating the whole fan-out.
    let nr_nodes = cluster.nr_nodes();
    let now = clock.now();
    let mut weights = Vec::with_capacity(nr_nodes);
    for i in 0..nr_nodes {
        let phys = cluster.get_node(i)?.phys();
        let mflops = deployment
            .pool()
            .machine(phys)
            .map(|m| {
                // Current sample plus two short lags: tracks the load the
                // multiply is about to run under without chasing jitter.
                let busy: f64 = [0.0, 5.0, 10.0]
                    .iter()
                    .map(|lag| m.user_cpu((now - lag).max(0.0)))
                    .sum::<f64>()
                    / 3.0;
                m.spec().peak_mflops * (1.0 - busy).max(0.03)
            })
            .unwrap_or(1.0);
        weights.push((phys, mflops));
    }

    // The master's CPU also marshals every chunk's arguments and unmarshals
    // every result — (marshal + unmarshal) flops per byte over the ~4N²
    // bytes of A fanned out and the ~4N² bytes of C gathered back. Charge
    // that serialization workload against the master's weight so the
    // partition doesn't overcommit the one CPU the whole fan-out funnels
    // through; for small N it can push the master's share to zero rows,
    // while for large N it fades (serialization is O(N) per row, compute
    // O(N²)).
    let master = reg.local_phys();
    let total_eff: f64 = weights.iter().map(|&(_, w)| w).sum();
    if total_eff > 0.0 {
        let cost = deployment.cost_model();
        let wire_bytes = 4.0 * (n * n) as f64;
        let marshal_flops =
            (cost.marshal_flops_per_byte + cost.unmarshal_flops_per_byte) * wire_bytes;
        // Estimated multiply duration if compute were the only work, in
        // seconds; weights are in Mflop/s.
        let t_est = 2.0 * (n as f64).powi(3) / (total_eff * 1e6);
        let discount_mflops = marshal_flops / t_est / 1e6;
        if let Some(w) = weights.iter_mut().find(|(phys, _)| *phys == master) {
            w.1 = (w.1 - discount_mflops).max(0.0);
        }
    }
    let specs = partition_weighted(n, &weights, cfg.chunks_per_node.max(1));
    let dist = DistCol::<f32>::create(&reg, "Matrix", &specs)?;

    // Replicate B into every chunk object via one-sided init, then barrier
    // on `ready` (per-object FIFO makes the sync call a happens-after).
    let init_args = [
        Value::I64(n as i64),
        Value::I64(n as i64),
        Value::F32Vec(Arc::clone(&b)),
        Value::Bool(cfg.verify),
    ];
    for i in 0..dist.chunk_count() {
        dist.chunk_obj(i).oinvoke("init", &init_args)?;
    }
    for i in 0..dist.chunk_count() {
        if dist.chunk_obj(i).sinvoke("ready", &[])? != Value::Bool(true) {
            return Err(JsError::MethodFailed("init not applied".into()));
        }
    }
    let t_start = clock.now();
    let setup_seconds = t_start - t_setup;

    // One `multiply` per chunk, all issued before any reply is awaited.
    let results = dist.map_chunks_with("multiply", |_i, start, len| {
        vec![
            Value::I64(start as i64),
            Value::F32Vec(Arc::new(a[start * n..(start + len) * n].to_vec())),
        ]
    })?;
    for result in results {
        merge_block(result, &mut c, n)?;
    }
    let virt_seconds = clock.now() - t_start;

    let correct = if cfg.verify {
        Some(verify_sample(&a, &b, &c, n))
    } else {
        None
    };

    let tasks = dist.chunk_count();
    let _ = dist.free();
    reg.unregister()?;

    Ok(MatmulReport {
        virt_seconds,
        setup_seconds,
        tasks,
        nodes: nr_nodes,
        correct,
        messages: deployment.net_stats().msgs_sent - msgs_before,
    })
}

/// Spot-checks C against the direct product on a deterministic sample of
/// elements (full O(N³) verification would dwarf the simulation itself).
fn verify_sample(a: &[f32], b: &[f32], c: &[f32], n: usize) -> bool {
    let stride = (n / 17).max(1);
    for i in (0..n).step_by(stride) {
        for j in (0..n).step_by(stride) {
            let mut expect = 0.0f32;
            for k in 0..n {
                expect += a[i * n + k] * b[k * n + j];
            }
            if (c[i * n + j] - expect).abs() > 1e-3 * expect.abs().max(1.0) {
                return false;
            }
        }
    }
    true
}

/// The paper's one-node points: "the times plotted for the one-node
/// experiments are based on a sequential matrix multiplication that does not
/// use JavaSymphony at all". Executes 2·N³ flops on `machine` and returns
/// the virtual seconds taken.
pub fn run_sequential(machine: &SimMachine, n: usize) -> f64 {
    let clock = machine.clock().clone();
    let t0 = clock.now();
    machine.compute(2.0 * (n as f64).powi(3));
    clock.now() - t0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_matrices_are_small_integers() {
        for i in 0..20 {
            for j in 0..20 {
                assert!(a_elem(i, j).abs() <= 6.5);
                assert!(b_elem(i, j).abs() <= 5.5);
                assert_eq!(a_elem(i, j), a_elem(i, j));
            }
        }
    }

    #[test]
    fn verify_sample_accepts_true_product_and_rejects_garbage() {
        let n = 12;
        let a: Vec<f32> = (0..n * n).map(|idx| a_elem(idx / n, idx % n)).collect();
        let b: Vec<f32> = (0..n * n).map(|idx| b_elem(idx / n, idx % n)).collect();
        let mut c = vec![0.0f32; n * n];
        for i in 0..n {
            for k in 0..n {
                for j in 0..n {
                    c[i * n + j] += a[i * n + k] * b[k * n + j];
                }
            }
        }
        assert!(verify_sample(&a, &b, &c, n));
        c[5] += 1.0;
        assert!(!verify_sample(&a, &b, &c, n));
    }

    #[test]
    fn config_defaults_give_about_26_tasks() {
        let cfg = MatmulConfig::new(1000);
        assert_eq!(cfg.rows_per_task, 39);
        assert_eq!(1000usize.div_ceil(cfg.rows_per_task), 26);
        assert!(cfg.verify);
        assert!(!cfg.clone().without_verification().verify);
    }
}
