//! # jsym-cluster — the CLUSTER 2000 testbed simulation and workloads
//!
//! The paper's evaluation (§6) runs a master/slave matrix multiplication on
//! "a non-dedicated heterogeneous cluster of 13 Sun workstations comprising
//! Sparcstations 4/110, Sparcstations 10/40, Sparcstation 5/70, Sun Ultras
//! 1/170, Sun Ultras 10/300, and Sun Ultras 10/440. All Sun Ultra
//! workstations are connected based on 100 Mbits/sec bandwidth, whereas
//! communication among all other workstations rely on 10 Mbits/sec
//! bandwidth."
//!
//! This crate provides:
//!
//! * [`catalog`] — that testbed as machine configurations (model speeds
//!   calibrated to JDK 1.2.1-era Java floating-point throughput);
//! * [`matmul`] — the `Matrix` distributed class and the master/slave
//!   driver transcribed from the paper's Figure 6, plus the sequential
//!   baseline used for the one-node points;
//! * [`fig5`] — the experiment driver regenerating Figure 5 (execution time
//!   vs. number of nodes, several problem sizes, day/night load);
//! * [`pipeline`] — an additional locality-oriented workload (a stage
//!   pipeline mapped across a site) used by the examples.

#![warn(missing_docs)]

pub mod catalog;
pub mod fig5;
pub mod jacobi;
pub mod matmul;
pub mod pipeline;
