//! Kill-minority-mid-workload (DESIGN.md §10): the replicated directory
//! keeps serving placements after a minority of its replicas — always
//! including the leader — is killed while a counter workload with
//! migrations is in flight.
//!
//! Asserted end to end, for 3- and 5-replica directories:
//!
//! * zero misrouted RMIs — every probe reaches the object wherever the
//!   racing migrations put it, and the serialized add stream returns
//!   strict `+1` increments (no loss, no double delivery);
//! * bounded re-election — a new leader emerges among the survivors
//!   within a fixed number of heartbeat intervals of virtual time.

use jsym_cluster::catalog::{testbed_machines, LoadKind};
use jsym_core::testkit::register_test_classes;
use jsym_core::{Deployment, JsObj, JsShell, MigrateTarget, Placement, Value};
use jsym_net::NodeId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Re-election budget, in leader-heartbeat intervals of virtual time. The
/// detection half is `election_timeout = 4` heartbeats; the rest absorbs
/// vote staggering and real-scheduler jitter leaking into the virtual
/// clock on a loaded test host.
const REELECTION_HEARTBEATS: f64 = 240.0;

fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    for _ in 0..800 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for: {what}");
}

/// Boots `replicas + 2` testbed machines with an n-replica directory, runs
/// a migrating counter workload, and kills a minority of replicas —
/// leader first — part-way through.
fn kill_minority_mid_workload(replicas: u32) {
    let machines = replicas as usize + 2;
    let d: Deployment = JsShell::new()
        .time_scale(1e-3)
        .monitor_period(50.0)
        .failure_timeout(1e9) // NAS stays out of it: this is a quorum test
        .add_machines(testbed_machines(machines, LoadKind::Dedicated, 3))
        .directory_replicas(replicas)
        .boot();
    register_test_classes(&d);

    // Workload lives on the two non-replica machines.
    let home = NodeId(replicas);
    let away = NodeId(replicas + 1);
    let reg = d.register_app_on(home).unwrap();

    // Wait for the first election to settle and note the leader.
    wait_until(
        || {
            d.directory_status()
                .iter()
                .filter(|s| s.role == "leader")
                .count()
                == 1
        },
        "initial directory leader",
    );
    let st = d.directory_status();
    let heartbeat = st[0].heartbeat_interval;
    let old_leader = st.iter().find(|s| s.role == "leader").unwrap().node;
    // Minority to kill: the leader plus the highest-id other replicas.
    let minority = (replicas as usize - 1) / 2;
    let mut victims = vec![NodeId(old_leader)];
    victims.extend(
        (0..replicas)
            .rev()
            .map(NodeId)
            .filter(|n| n.0 != old_leader)
            .take(minority - 1),
    );

    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(home), None).unwrap();
    let prober = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(away), None).unwrap();

    // Serialized add stream: any gap or repeat in the returned sequence is
    // a lost or doubly-delivered RMI.
    let stop = Arc::new(AtomicBool::new(false));
    let adder = {
        let stop = Arc::clone(&stop);
        let obj = obj.handle();
        let reg = d.register_app_on(away).unwrap();
        std::thread::spawn(move || {
            let me = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(away), None).unwrap();
            let mut prev = 0i64;
            let mut adds = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let v = me
                    .sinvoke("add_to", &[Value::Handle(obj), Value::I64(1)])
                    .expect("add_to must never fail across the replica kill");
                let got = v.as_i64().expect("add returns the running count");
                assert_eq!(
                    got,
                    prev + 1,
                    "lost or double-delivered add: {prev} -> {got}"
                );
                prev = got;
                adds += 1;
            }
            me.free().unwrap();
            reg.unregister().unwrap();
            (prev, adds)
        })
    };

    // Migration ping-pong with directory-resolved probes; kill the minority
    // part-way through and keep going.
    let mut kill_at_virt = 0.0_f64;
    let mut dst = away;
    for round in 0..8 {
        let landed = obj.migrate(MigrateTarget::ToPhys(dst), None).unwrap();
        assert_eq!(landed, dst, "migration landed on the wrong node");
        let v = prober
            .sinvoke("add_to", &[Value::Handle(obj.handle()), Value::I64(0)])
            .unwrap();
        assert!(v.as_i64().is_some(), "probe misrouted: {v:?}");
        if round == 2 {
            kill_at_virt = d.clock().now();
            for v in &victims {
                d.kill_node(*v);
            }
        }
        dst = if dst == away { home } else { away };
    }

    // Bounded re-election: exactly one leader among the survivors, within
    // the heartbeat budget of virtual time since the kill.
    wait_until(
        || {
            let st = d.directory_status();
            st.len() == replicas as usize - victims.len()
                && st.iter().filter(|s| s.role == "leader").count() == 1
        },
        "re-election among surviving replicas",
    );
    let elapsed = d.clock().now() - kill_at_virt;
    assert!(
        elapsed <= REELECTION_HEARTBEATS * heartbeat,
        "re-election took {elapsed:.1} virt s (> {REELECTION_HEARTBEATS} heartbeats of {heartbeat:.1} s)"
    );
    let st = d.directory_status();
    let new_leader = st.iter().find(|s| s.role == "leader").unwrap().node;
    assert!(
        victims.iter().all(|v| v.0 != new_leader),
        "a killed replica claims leadership: {st:?}"
    );

    stop.store(true, Ordering::Relaxed);
    let (last, adds) = adder.join().expect("adder thread must not panic");
    assert!(adds > 0, "the invocation stream never ran");
    let total = obj.sinvoke("get", &[]).unwrap();
    assert_eq!(total, Value::I64(last));
    assert_eq!(last as u64, adds, "exactly-once violated");

    // Post-failover commits still happen: the survivors applied the final
    // placements (counter + prober + the adder's freed helper).
    wait_until(
        || d.directory_status().iter().all(|s| s.locations >= 2),
        "surviving replicas to apply post-failover placements",
    );

    obj.free().unwrap();
    prober.free().unwrap();
    reg.unregister().unwrap();
    d.shutdown();
}

#[test]
fn kill_minority_of_three_replicas_mid_workload() {
    kill_minority_mid_workload(3);
}

#[test]
fn kill_minority_of_five_replicas_mid_workload() {
    kill_minority_mid_workload(5);
}
