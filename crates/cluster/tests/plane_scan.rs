//! Dirty-set automigrate scans vs. full scans on a spiking testbed
//! (DESIGN.md §9): both must report the same violations and trigger the
//! same migrations, while the dirty scan evaluates fewer nodes.

use jsym_core::testkit::register_test_classes;
use jsym_core::{JsObj, JsShell, MachineConfig, Placement, Value};
use jsym_net::{LinkClass, NodeId};
use jsym_sysmon::{JsConstraints, LoadModel, LoadProfile, MachineSpec, SysParam};
use jsym_vda::PlaneConfig;
use std::time::{Duration, Instant};

/// Four idle machines plus `spikes` machines that jump from 0% to 90% load
/// at t=200 virtual seconds.
fn spiky_shell(spikes: usize) -> JsShell {
    let mut shell = JsShell::new()
        .time_scale(1e-4)
        .monitor_period(0.5)
        .failure_timeout(1e9);
    for i in 0..4 {
        shell = shell.add_machine(MachineConfig::idle(&format!("idle{i}"), 50.0));
    }
    for i in 0..spikes {
        shell = shell.add_machine(MachineConfig {
            spec: MachineSpec::generic(&format!("spike{i}"), 50.0, 256.0),
            load: LoadModel::new(
                LoadProfile::Spike {
                    base: 0.0,
                    level: 0.9,
                    start: 200.0,
                    end: 1e12,
                },
                i as u64,
            ),
            link: LinkClass::Lan100,
        });
    }
    shell
}

fn idle_constraint() -> JsConstraints {
    let mut c = JsConstraints::new();
    c.set(SysParam::IdlePct, ">=", 50);
    c
}

fn wait_virtual(d: &jsym_core::Deployment, until: f64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while d.vda().pool().now() < until {
        assert!(Instant::now() < deadline, "virtual clock stalled");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn dirty_scan_matches_full_scan_on_spiking_cluster() {
    // Automigration off: scans are driven manually so both modes see the
    // same instants.
    let d = spiky_shell(2).boot();
    // Re-arm the plane with a 25% relative dirty threshold so slow memory
    // noise on the idle machines cannot mark them dirty; only the load
    // spike can.
    d.vda().set_plane_config(PlaneConfig {
        enabled: true,
        ttl: 0.5,
        dirty_threshold: 0.25,
    });

    let constr = idle_constraint();
    let cluster = d.vda().request_cluster(6, Some(&constr)).unwrap();
    assert_eq!(cluster.nr_nodes(), 6);

    // Pre-spike: a full scan sees six conforming constrained nodes and
    // clears the post-allocation dirty marks.
    let before = d.vda().scan_violations(false);
    assert_eq!(before.evaluated, 6);
    assert!(before.violations.is_empty());

    wait_virtual(&d, 260.0);

    // Post-spike: the dirty scan only re-evaluates the nodes whose cached
    // sample moved past the threshold — the two spiking machines — yet
    // reports exactly what the full scan reports.
    let dirty = d.vda().scan_violations(true);
    let full = d.vda().scan_violations(false);
    assert_eq!(full.evaluated, 6);
    assert_eq!(full.violations.len(), 2, "both spiking nodes violate");
    assert_eq!(dirty.violations, full.violations);
    assert!(
        dirty.evaluated < full.evaluated,
        "dirty scan evaluated {} of {} nodes",
        dirty.evaluated,
        full.evaluated
    );
    d.shutdown();
}

/// Boots a two-machine deployment (m0 spikes at t=200, m1 idle), places a
/// Counter on the future-violating machine and waits for automigration to
/// move it. Returns the deployment for counter inspection.
fn run_automigration(dirty_set: bool) -> jsym_core::Deployment {
    let d = JsShell::new()
        .time_scale(1e-4)
        .monitor_period(0.5)
        .failure_timeout(1e9)
        .automigration(true, 0.5)
        .automigrate_dirty_set(dirty_set)
        .add_machine(MachineConfig {
            spec: MachineSpec::generic("m0", 50.0, 256.0),
            load: LoadModel::new(
                LoadProfile::Spike {
                    base: 0.0,
                    level: 0.9,
                    start: 200.0,
                    end: 1e12,
                },
                0,
            ),
            link: LinkClass::Lan100,
        })
        .add_machine(MachineConfig::idle("m1", 50.0))
        .boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let _cluster = d
        .vda()
        .request_cluster(2, Some(&idle_constraint()))
        .unwrap();
    let obj = JsObj::create(
        &reg,
        "Counter",
        &[Value::I64(1)],
        Placement::OnPhys(NodeId(0)),
        None,
    )
    .unwrap();
    assert_eq!(obj.get_location().unwrap(), NodeId(0));

    let deadline = Instant::now() + Duration::from_secs(20);
    while obj.get_location().unwrap() != NodeId(1) {
        assert!(
            Instant::now() < deadline,
            "object never migrated off the spiking machine (dirty_set={dirty_set})"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // The object survived the move.
    assert_eq!(obj.sinvoke("get", &[]).unwrap(), Value::I64(1));
    d
}

#[test]
fn dirty_rounds_migrate_like_full_rounds() {
    // Both modes must reach the same final placement...
    let dirty = run_automigration(true);
    let full = run_automigration(false);

    // ...but the dirty rounds re-evaluate fewer nodes per round. Compare
    // per-mode averages inside the dirty deployment (it interleaves dirty
    // rounds with every-8th full rounds, so both labels are present).
    let snap = dirty.obs().metrics().snapshot();
    let per_mode = |name: &str, mode: &str| -> u64 {
        snap.counters
            .iter()
            .filter(|(k, _)| k.name == name && k.component == mode)
            .map(|(_, v)| v)
            .sum()
    };
    let dirty_rounds = per_mode("automigrate.rounds", "dirty");
    let full_rounds = per_mode("automigrate.rounds", "full");
    assert!(dirty_rounds > 0, "no dirty rounds ran");
    assert!(full_rounds > 0, "no fallback full rounds ran");
    let dirty_avg = per_mode("automigrate.nodes_evaluated", "dirty") as f64 / dirty_rounds as f64;
    let full_avg = per_mode("automigrate.nodes_evaluated", "full") as f64 / full_rounds as f64;
    assert!(
        dirty_avg < full_avg,
        "dirty rounds averaged {dirty_avg:.2} evaluations vs {full_avg:.2} for full rounds"
    );

    dirty.shutdown();
    full.shutdown();
}
