//! Integration tests of the testbed workloads: correctness of the
//! distributed multiplication and of the pipeline, on small instances.

use jsym_cluster::catalog::{testbed_machines, LoadKind};
use jsym_cluster::matmul::{
    register_matmul_classes, run_collective, run_master_slave, run_sequential, MatmulConfig,
    COLLECTIVE_CHUNKS_PER_NODE, MATRIX_ARTIFACT, MATRIX_ARTIFACT_BYTES,
};
use jsym_cluster::pipeline::{
    register_pipeline_classes, PIPELINE_ARTIFACT, PIPELINE_ARTIFACT_BYTES,
};
use jsym_core::{Deployment, JsObj, JsShell, Placement, Value};

fn testbed(n: usize, load: LoadKind, scale: f64) -> Deployment {
    let d = JsShell::new()
        .time_scale(scale)
        .monitor_period(50.0)
        .failure_timeout(1e9)
        .add_machines(testbed_machines(n, load, 3))
        .boot();
    register_matmul_classes(&d);
    register_pipeline_classes(&d);
    d
}

#[test]
fn distributed_product_is_correct() {
    let d = testbed(3, LoadKind::Dedicated, 1e-4);
    let cluster = d.vda().request_cluster(3, None).unwrap();
    let mut cfg = MatmulConfig::new(60);
    cfg.rows_per_task = 7; // deliberately not dividing 60
    let report = run_master_slave(&d, &cluster, &cfg).unwrap();
    assert_eq!(report.correct, Some(true));
    assert_eq!(report.tasks, 9);
    assert_eq!(report.nodes, 3);
    assert!(report.messages > 0);
    assert!(report.setup_seconds > 0.0);
    d.shutdown();
}

#[test]
fn collective_product_is_correct() {
    let d = testbed(3, LoadKind::Dedicated, 1e-4);
    let cluster = d.vda().request_cluster(3, None).unwrap();
    let report = run_collective(&d, &cluster, &MatmulConfig::new(60)).unwrap();
    assert_eq!(report.correct, Some(true));
    assert_eq!(report.nodes, 3);
    // The master's serialization workload may cost it its own chunk at this
    // tiny N; every other node carries `chunks_per_node` chunks.
    assert!(
        report.tasks >= 2 * COLLECTIVE_CHUNKS_PER_NODE
            && report.tasks <= 3 * COLLECTIVE_CHUNKS_PER_NODE,
        "unexpected chunk count {}",
        report.tasks
    );
    assert!(report.messages > 0);
    assert!(report.setup_seconds > 0.0);
    d.shutdown();
}

#[test]
fn collective_product_is_correct_with_batching() {
    let bc = jsym_net::BatchConfig::default();
    let d = JsShell::new()
        .time_scale(1e-4)
        .monitor_period(50.0)
        .failure_timeout(1e9)
        .rmi_batching(bc.flush_window, bc.max_bytes)
        .add_machines(testbed_machines(4, LoadKind::Dedicated, 3))
        .boot();
    register_matmul_classes(&d);
    let cluster = d.vda().request_cluster(4, None).unwrap();
    let report = run_collective(&d, &cluster, &MatmulConfig::new(52)).unwrap();
    assert_eq!(report.correct, Some(true));
    // The teamed fan-out really exercised the coalescing stage.
    let snap = d.obs().snapshot();
    assert!(
        snap.metrics.counter_total("net.batch.coalesced") > 0,
        "no messages were coalesced"
    );
    d.shutdown();
}

#[test]
fn every_cluster_node_participates() {
    let d = testbed(3, LoadKind::Dedicated, 1e-4);
    let cluster = d.vda().request_cluster(3, None).unwrap();
    let mut cfg = MatmulConfig::new(48);
    cfg.rows_per_task = 4; // 12 tasks over 3 nodes
    run_master_slave(&d, &cluster, &cfg).unwrap();
    for m in cluster.machines() {
        let stats = d.node_stats(m).unwrap();
        assert!(stats.invocations > 0, "node {m} executed no methods");
    }
    d.shutdown();
}

#[test]
fn matmul_report_separates_setup_from_compute() {
    let d = testbed(2, LoadKind::Dedicated, 1e-4);
    let cluster = d.vda().request_cluster(2, None).unwrap();
    let report = run_master_slave(&d, &cluster, &MatmulConfig::new(40)).unwrap();
    assert!(report.virt_seconds > 0.0);
    assert!(report.setup_seconds > 0.0);
    d.shutdown();
}

#[test]
fn sequential_baseline_scales_with_machine_speed() {
    // Sleep-based timing only ever inflates, so take the min of three runs
    // to shed descheduling noise from parallel test execution on a
    // single-core host; N=400 keeps even the fast run at ~4 ms real.
    let d = testbed(13, LoadKind::Dedicated, 1e-3);
    let ids = d.machines();
    let fast = d.pool().machine(ids[0]).unwrap(); // Ultra 10/440
    let slow = d.pool().machine(ids[12]).unwrap(); // SPARCstation 10/40
    let min3 = |m: &jsym_sysmon::SimMachine| {
        (0..3)
            .map(|_| run_sequential(m, 400))
            .fold(f64::INFINITY, f64::min)
    };
    let t_fast = min3(&fast);
    let t_slow = min3(&slow);
    // 30 vs 2.4 Mflop/s → ~12.5x.
    assert!(
        t_slow > 5.0 * t_fast,
        "slow {t_slow:.2}s vs fast {t_fast:.2}s"
    );
    d.shutdown();
}

#[test]
fn matmul_runs_under_day_load_too() {
    let d = testbed(2, LoadKind::Day, 1e-4);
    let cluster = d.vda().request_cluster(2, None).unwrap();
    let report = run_master_slave(&d, &cluster, &MatmulConfig::new(40)).unwrap();
    assert_eq!(report.correct, Some(true));
    d.shutdown();
}

#[test]
fn artifact_constants_are_consistent() {
    assert!(!MATRIX_ARTIFACT.is_empty());
    assert!(!PIPELINE_ARTIFACT.is_empty());
    assert_ne!(MATRIX_ARTIFACT, PIPELINE_ARTIFACT);
    let _ = (MATRIX_ARTIFACT_BYTES, PIPELINE_ARTIFACT_BYTES);
}

#[test]
fn pipeline_chains_stages_across_nodes() {
    let d = testbed(3, LoadKind::Dedicated, 1e-5);
    let reg = d.register_app().unwrap();
    let cb = reg.codebase();
    cb.add(PIPELINE_ARTIFACT, PIPELINE_ARTIFACT_BYTES);
    for m in d.machines() {
        cb.load_phys(m).unwrap();
    }
    // Build the chain back-to-front so each stage knows its successor.
    let sink = JsObj::create(
        &reg,
        "Stage",
        &[Value::I64(3), Value::F64(100.0)],
        Placement::OnPhys(d.machines()[2]),
        None,
    )
    .unwrap();
    let mid = JsObj::create(
        &reg,
        "Stage",
        &[
            Value::I64(2),
            Value::F64(100.0),
            Value::Handle(sink.handle()),
        ],
        Placement::OnPhys(d.machines()[1]),
        None,
    )
    .unwrap();
    let head = JsObj::create(
        &reg,
        "Stage",
        &[
            Value::I64(1),
            Value::F64(100.0),
            Value::Handle(mid.handle()),
        ],
        Placement::OnPhys(d.machines()[0]),
        None,
    )
    .unwrap();

    let out = head
        .sinvoke("process", &[Value::floats(vec![8.0, 16.0])])
        .unwrap();
    // Elementwise: stage k maps x to x/2 + k, applied for k = 1, 2, 3:
    // 8 → 5 → 4.5 → 5.25 and 16 → 9 → 6.5 → 6.25.
    let floats = out.as_floats().unwrap();
    assert_eq!(floats.as_ref(), &vec![5.25, 6.25]);

    // Every stage processed exactly one item.
    for s in [&head, &mid, &sink] {
        assert_eq!(s.sinvoke("processed", &[]).unwrap(), Value::I64(1));
    }
    d.shutdown();
}

#[test]
fn pipeline_counts_survive_migration() {
    let d = testbed(3, LoadKind::Dedicated, 1e-5);
    let reg = d.register_app().unwrap();
    let cb = reg.codebase();
    cb.add(PIPELINE_ARTIFACT, PIPELINE_ARTIFACT_BYTES);
    for m in d.machines() {
        cb.load_phys(m).unwrap();
    }
    let sink = JsObj::create(
        &reg,
        "Stage",
        &[Value::I64(9), Value::F64(10.0)],
        Placement::OnPhys(d.machines()[1]),
        None,
    )
    .unwrap();
    let head = JsObj::create(
        &reg,
        "Stage",
        &[
            Value::I64(1),
            Value::F64(10.0),
            Value::Handle(sink.handle()),
        ],
        Placement::OnPhys(d.machines()[0]),
        None,
    )
    .unwrap();
    head.sinvoke("process", &[Value::floats(vec![1.0])])
        .unwrap();
    // Move the sink; the head's stored handle must keep working
    // (re-resolution via the origin AppOA).
    sink.migrate(jsym_core::MigrateTarget::ToPhys(d.machines()[2]), None)
        .unwrap();
    head.sinvoke("process", &[Value::floats(vec![2.0])])
        .unwrap();
    assert_eq!(sink.sinvoke("processed", &[]).unwrap(), Value::I64(2));
    d.shutdown();
}

// ----------------------------------------------------------------- jacobi

mod jacobi_tests {
    use super::testbed;
    use jsym_cluster::catalog::LoadKind;
    use jsym_cluster::jacobi::{register_jacobi_classes, run_jacobi, sequential_jacobi};

    #[test]
    fn distributed_jacobi_matches_sequential() {
        let d = testbed(3, LoadKind::Dedicated, 1e-5);
        register_jacobi_classes(&d);
        let cluster = d.vda().request_cluster(3, None).unwrap();
        let n = 12;
        let iters = 20;
        let report = run_jacobi(&d, &cluster, n, iters, true, true).unwrap();
        let reference = sequential_jacobi(n, iters);
        let grid = report.grid.expect("collected");
        assert_eq!(grid.len(), n * n);
        for (i, (a, b)) in grid.iter().zip(&reference).enumerate() {
            assert!(
                (a - b).abs() < 1e-4,
                "cell {i}: distributed {a} vs sequential {b}"
            );
        }
        assert!(report.residual.is_finite());
        d.shutdown();
    }

    #[test]
    fn jacobi_residual_shrinks_with_iterations() {
        let d = testbed(2, LoadKind::Dedicated, 1e-5);
        register_jacobi_classes(&d);
        let cluster = d.vda().request_cluster(2, None).unwrap();
        let early = run_jacobi(&d, &cluster, 10, 3, true, false).unwrap();
        let late = run_jacobi(&d, &cluster, 10, 60, true, false).unwrap();
        assert!(
            late.residual < early.residual,
            "residual should shrink: {} -> {}",
            early.residual,
            late.residual
        );
        d.shutdown();
    }

    #[test]
    fn jacobi_works_on_a_single_node_cluster() {
        let d = testbed(1, LoadKind::Dedicated, 1e-5);
        register_jacobi_classes(&d);
        let cluster = d.vda().request_cluster(1, None).unwrap();
        let n = 8;
        let report = run_jacobi(&d, &cluster, n, 10, true, true).unwrap();
        let reference = sequential_jacobi(n, 10);
        for (a, b) in report.grid.unwrap().iter().zip(&reference) {
            assert!((a - b).abs() < 1e-4);
        }
        d.shutdown();
    }
}

// ------------------------------------------------- shared-segment fidelity

/// With the slow segment modeled as a shared medium (the paper's actual
/// hubbed 10 Mbit Ethernet), the 13-node configuration gets *worse* than
/// with per-pair capacity — replication to the SPARCstations serializes.
#[test]
fn shared_slow_segment_hurts_wide_configurations() {
    use jsym_cluster::matmul::{register_matmul_classes, run_master_slave, MatmulConfig};
    use jsym_core::JsShell;
    use jsym_net::LinkClass;

    let run = |shared: bool| {
        let mut shell = JsShell::new()
            .time_scale(1e-2)
            .add_machines(testbed_machines(13, LoadKind::Dedicated, 3));
        if shared {
            shell = shell.shared_segment(LinkClass::Lan10);
        }
        let d = shell.boot();
        register_matmul_classes(&d);
        let cluster = d.vda().request_cluster(13, None).unwrap();
        let report =
            run_master_slave(&d, &cluster, &MatmulConfig::new(300).without_verification()).unwrap();
        d.shutdown();
        // Setup includes the B replication that must serialize on the hub.
        report.virt_seconds + report.setup_seconds
    };
    let switched = run(false);
    let shared = run(true);
    assert!(
        shared > switched,
        "shared hub should be slower: shared={shared:.2}s switched={switched:.2}s"
    );
}
