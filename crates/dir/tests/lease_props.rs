//! Lease-read linearizability under leader churn.
//!
//! With `lease_duration > 0` a leader serves read-index requests locally
//! while its lease holds, skipping the heartbeat probe round. The safety
//! claim (DESIGN.md §14): a lease read never returns a placement that the
//! committed directory state contradicts — in particular, a deposed leader
//! with a stale lease must never serve a read after a successor has
//! committed newer placements.
//!
//! The property is checked on a single register written with monotonically
//! increasing values: every read that completes must return a value at
//! least as new as the last write whose commit had been acknowledged when
//! the read was issued. A stale lease read on an old leader would return an
//! older value and fail the assertion.

use jsym_dir::{DirCommand, DirConfig, DirEvent, DirMsg, DirReplica, Role};
use proptest::prelude::*;

const OBJECT: u64 = 7;

fn lease_config() -> DirConfig {
    DirConfig {
        lease_duration: 1.0,
        ..DirConfig::default()
    }
}

/// Deterministic lossless bus with per-message latency (the consensus.rs
/// harness, plus lease config and per-replica event draining).
struct Net {
    replicas: Vec<DirReplica>,
    queue: Vec<(f64, u32, u32, DirMsg)>,
    now: f64,
    seq: u64,
    cut: Vec<u32>,
}

impl Net {
    fn new(n: u32) -> Net {
        let ids: Vec<u32> = (0..n).collect();
        Net {
            replicas: ids
                .iter()
                .map(|&id| DirReplica::new(id, &ids, lease_config(), 0.0))
                .collect(),
            queue: Vec::new(),
            now: 0.0,
            seq: 0,
            cut: Vec::new(),
        }
    }

    fn post(&mut self, from: u32, out: Vec<(u32, DirMsg)>) {
        for (to, msg) in out {
            if self.cut.contains(&from) || self.cut.contains(&to) {
                continue;
            }
            self.seq += 1;
            let msg = DirMsg::from_bytes(&msg.to_bytes()).unwrap();
            self.queue
                .push((self.now + 0.01 + self.seq as f64 * 1e-9, from, to, msg));
        }
    }

    fn step(&mut self) {
        self.now += 0.005;
        for i in 0..self.replicas.len() {
            let id = self.replicas[i].id();
            if self.cut.contains(&id) {
                continue;
            }
            let now = self.now;
            let out = self.replicas[i].tick(now);
            self.post(id, out);
        }
        loop {
            let now = self.now;
            let mut due: Vec<(f64, u32, u32, DirMsg)> = Vec::new();
            let mut i = 0;
            while i < self.queue.len() {
                if self.queue[i].0 <= now {
                    due.push(self.queue.remove(i));
                } else {
                    i += 1;
                }
            }
            if due.is_empty() {
                break;
            }
            due.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for (_, from, to, msg) in due {
                if self.cut.contains(&to) {
                    continue;
                }
                let now = self.now;
                let idx = self.replicas.iter().position(|r| r.id() == to).unwrap();
                let out = self.replicas[idx].receive(from, msg, now);
                self.post(to, out);
            }
        }
    }

    fn leader(&self) -> Option<usize> {
        self.replicas
            .iter()
            .position(|r| !self.cut.contains(&r.id()) && r.role() == Role::Leader)
    }
}

/// One step of the random schedule.
#[derive(Clone, Debug)]
enum Op {
    /// Propose the next monotonic value through the current leader.
    Write,
    /// Issue a read-index request on every replica claiming leadership
    /// (a deposed leader with a live lease will answer too — the case
    /// under test).
    Read,
    /// Cut the current leader off the bus.
    KillLeader,
    /// Heal all partitions.
    Heal,
    /// Let virtual time pass (heartbeats, elections, lease expiry).
    Advance(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Entries are repeated in place of weights (the in-tree proptest stub
    // only supports the unweighted prop_oneof form).
    prop_oneof![
        Just(Op::Write),
        Just(Op::Write),
        Just(Op::Read),
        Just(Op::Read),
        Just(Op::KillLeader),
        Just(Op::Heal),
        (1u8..100).prop_map(Op::Advance),
        (1u8..100).prop_map(Op::Advance),
    ]
}

#[derive(Clone, Copy, Debug)]
struct PendingRead {
    replica: usize,
    seq: u64,
    /// Last write value whose commit had been acknowledged when this read
    /// was issued: the linearizability floor for its answer.
    floor: i64,
}

fn run_schedule(ops: &[Op]) {
    let mut net = Net::new(3);
    // Let the first leader emerge.
    for _ in 0..1000 {
        net.step();
        if net.leader().is_some() {
            break;
        }
    }

    let mut next_val: u32 = 0;
    let mut acked: i64 = -1; // newest write value known committed
    let mut writes: Vec<(usize, u64, u32)> = Vec::new(); // (replica, seq, value)
    let mut reads: Vec<PendingRead> = Vec::new();
    let mut lease_reads = 0u32;

    let drain = |net: &mut Net,
                 acked: &mut i64,
                 writes: &mut Vec<(usize, u64, u32)>,
                 reads: &mut Vec<PendingRead>,
                 lease_reads: &mut u32| {
        for i in 0..net.replicas.len() {
            for ev in net.replicas[i].take_events() {
                match ev {
                    DirEvent::Committed { seq, .. } => {
                        if let Some(&(_, _, val)) =
                            writes.iter().find(|&&(r, s, _)| r == i && s == seq)
                        {
                            *acked = (*acked).max(val as i64);
                        }
                    }
                    DirEvent::ReadReady { seq, lease } => {
                        if let Some(pos) = reads.iter().position(|p| p.replica == i && p.seq == seq)
                        {
                            let p = reads.remove(pos);
                            if lease {
                                *lease_reads += 1;
                            }
                            let got = net.replicas[i]
                                .state()
                                .location_of(OBJECT)
                                .map(|v| v as i64)
                                .unwrap_or(-1);
                            assert!(
                                got >= p.floor,
                                "stale read on replica {i} (lease: {lease}): \
                                 returned {got}, but value {} was already \
                                 committed when the read was issued",
                                p.floor
                            );
                        }
                    }
                    _ => {}
                }
            }
        }
    };

    for op in ops {
        match op {
            Op::Write => {
                if let Some(l) = net.leader() {
                    let now = net.now;
                    if let Ok(seq) = net.replicas[l].propose(
                        DirCommand::SetLocation {
                            object: OBJECT,
                            node: next_val,
                        },
                        now,
                    ) {
                        writes.push((l, seq, next_val));
                        next_val += 1;
                    }
                }
            }
            Op::Read => {
                // Every replica that *believes* it leads gets a read — a
                // deposed leader still holding a lease answers locally.
                for i in 0..net.replicas.len() {
                    if net.replicas[i].role() == Role::Leader {
                        let now = net.now;
                        if let Ok(seq) = net.replicas[i].read_index(now) {
                            reads.push(PendingRead {
                                replica: i,
                                seq,
                                floor: acked,
                            });
                        }
                    }
                }
            }
            Op::KillLeader => {
                if let Some(l) = net.leader() {
                    let id = net.replicas[l].id();
                    if !net.cut.contains(&id) {
                        net.cut.push(id);
                    }
                }
            }
            Op::Heal => net.cut.clear(),
            Op::Advance(ticks) => {
                for _ in 0..*ticks {
                    net.step();
                    drain(
                        &mut net,
                        &mut acked,
                        &mut writes,
                        &mut reads,
                        &mut lease_reads,
                    );
                }
            }
        }
        net.step();
        drain(
            &mut net,
            &mut acked,
            &mut writes,
            &mut reads,
            &mut lease_reads,
        );
    }
    // Settle fully healed so in-flight reads resolve and get checked too.
    net.cut.clear();
    for _ in 0..2000 {
        net.step();
        drain(
            &mut net,
            &mut acked,
            &mut writes,
            &mut reads,
            &mut lease_reads,
        );
        if reads.is_empty() {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 64,
        .. ProptestConfig::default()
    })]

    /// Random write/read/kill/heal schedules: no read — lease-served or
    /// probe-served — ever returns a placement older than the committed
    /// state known when it was issued.
    #[test]
    fn lease_reads_never_contradict_committed_state(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        run_schedule(&ops);
    }
}

/// Deterministic sanity check that the harness actually exercises lease
/// reads (the proptest would pass vacuously if no ReadReady ever carried
/// `lease: true`).
#[test]
fn steady_state_reads_are_lease_served() {
    let mut net = Net::new(3);
    for _ in 0..1000 {
        net.step();
        if net.leader().is_some() {
            break;
        }
    }
    let l = net.leader().unwrap();
    // Commit one write so the current-term no-op guard is satisfied.
    let now = net.now;
    net.replicas[l]
        .propose(
            DirCommand::SetLocation {
                object: OBJECT,
                node: 1,
            },
            now,
        )
        .unwrap();
    for _ in 0..400 {
        net.step();
    }
    net.replicas.iter_mut().for_each(|r| {
        r.take_events();
    });
    // Steady state: reads on the leader must be lease-served.
    let now = net.now;
    let seq = net.replicas[l].read_index(now).unwrap();
    let evs = net.replicas[l].take_events();
    assert!(
        evs.iter()
            .any(|e| matches!(e, DirEvent::ReadReady { seq: s, lease: true } if *s == seq)),
        "expected an immediate lease-served ReadReady, got {evs:?}"
    );
    assert_eq!(net.replicas[l].state().location_of(OBJECT), Some(1));
}
