//! Black-box consensus checks through the public `jsym-dir` API.
//!
//! The in-crate unit tests drive the protocol through a simulated bus; this
//! suite checks the properties the runtime integration depends on: agreed
//! state across replicas after partitions heal, and safety of the log under
//! leader churn.

use jsym_dir::{DirCommand, DirConfig, DirEvent, DirMsg, DirReplica, Role};

/// Deterministic lossless bus with per-message latency.
struct Net {
    replicas: Vec<DirReplica>,
    queue: Vec<(f64, u32, u32, DirMsg)>,
    now: f64,
    seq: u64,
    cut: Vec<u32>,
}

impl Net {
    fn new(n: u32) -> Net {
        let ids: Vec<u32> = (0..n).collect();
        Net {
            replicas: ids
                .iter()
                .map(|&id| DirReplica::new(id, &ids, DirConfig::default(), 0.0))
                .collect(),
            queue: Vec::new(),
            now: 0.0,
            seq: 0,
            cut: Vec::new(),
        }
    }

    fn post(&mut self, from: u32, out: Vec<(u32, DirMsg)>) {
        for (to, msg) in out {
            if self.cut.contains(&from) || self.cut.contains(&to) {
                continue;
            }
            self.seq += 1;
            let msg = DirMsg::from_bytes(&msg.to_bytes()).unwrap();
            self.queue
                .push((self.now + 0.01 + self.seq as f64 * 1e-9, from, to, msg));
        }
    }

    fn step_to(&mut self, t: f64) {
        while self.now < t {
            self.now += 0.005;
            for i in 0..self.replicas.len() {
                let id = self.replicas[i].id();
                if self.cut.contains(&id) {
                    continue;
                }
                let now = self.now;
                let out = self.replicas[i].tick(now);
                self.post(id, out);
            }
            loop {
                let now = self.now;
                let mut due: Vec<(f64, u32, u32, DirMsg)> = Vec::new();
                let mut i = 0;
                while i < self.queue.len() {
                    if self.queue[i].0 <= now {
                        due.push(self.queue.remove(i));
                    } else {
                        i += 1;
                    }
                }
                if due.is_empty() {
                    break;
                }
                due.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                for (_, from, to, msg) in due {
                    if self.cut.contains(&to) {
                        continue;
                    }
                    let now = self.now;
                    let idx = self.replicas.iter().position(|r| r.id() == to).unwrap();
                    let out = self.replicas[idx].receive(from, msg, now);
                    self.post(to, out);
                }
            }
        }
    }

    fn leader(&self) -> Option<u32> {
        self.replicas
            .iter()
            .filter(|r| !self.cut.contains(&r.id()))
            .find(|r| r.role() == Role::Leader)
            .map(|r| r.id())
    }
}

#[test]
fn healed_partition_converges_to_identical_state() {
    let mut net = Net::new(3);
    net.step_to(5.0);
    let leader = net.leader().unwrap();

    // Partition replica 2 away, commit a batch through the majority side.
    net.cut.push(2);
    for i in 0..40u64 {
        let now = net.now;
        let idx = net.replicas.iter().position(|r| r.id() == leader).unwrap();
        net.replicas[idx]
            .propose(
                DirCommand::SetLocation {
                    object: i,
                    node: (i % 4) as u32,
                },
                now,
            )
            .unwrap();
        net.step_to(net.now + 0.1);
    }

    // Heal and let replication settle.
    net.cut.clear();
    net.step_to(net.now + 5.0);

    let reference = net.replicas[0].state().clone();
    for r in &net.replicas {
        assert_eq!(
            *r.state(),
            reference,
            "replica {} diverged after heal",
            r.id()
        );
    }
    assert_eq!(reference.location_count(), 40);
}

#[test]
fn committed_entries_survive_leader_replacement() {
    let mut net = Net::new(5);
    net.step_to(8.0);
    let first = net.leader().unwrap();
    let now = net.now;
    let idx = net.replicas.iter().position(|r| r.id() == first).unwrap();
    let seq = net.replicas[idx]
        .propose(
            DirCommand::SetRole {
                scope: 11,
                manager: Some(3),
                backup: Some(4),
            },
            now,
        )
        .unwrap();
    net.step_to(net.now + 2.0);
    let events = net.replicas[idx].take_events();
    assert!(events
        .iter()
        .any(|e| matches!(e, DirEvent::Committed { seq: s, .. } if *s == seq)));

    // Kill the leader; the committed role assignment must survive.
    net.cut.push(first);
    net.step_to(net.now + 4.0 * DirConfig::default().election_timeout);
    let next = net.leader().expect("replacement leader");
    assert_ne!(next, first);
    let idx = net.replicas.iter().position(|r| r.id() == next).unwrap();
    let role = net.replicas[idx].state().role_of(11).unwrap();
    assert_eq!(role.manager, Some(3));
    assert_eq!(role.backup, Some(4));
}

#[test]
fn at_most_one_leader_per_term() {
    let mut net = Net::new(5);
    // Run with repeated leader kills and heals; after every settle point,
    // check that no two live replicas claim leadership in the same term.
    for round in 0..3u32 {
        net.step_to(net.now + 10.0);
        if let Some(l) = net.leader() {
            net.cut = vec![l];
        }
        net.step_to(net.now + 10.0);
        net.cut.clear();
        net.step_to(net.now + 5.0);
        let mut leaders_by_term: Vec<(u64, u32)> = net
            .replicas
            .iter()
            .filter(|r| r.role() == Role::Leader)
            .map(|r| (r.term(), r.id()))
            .collect();
        leaders_by_term.sort();
        for w in leaders_by_term.windows(2) {
            assert_ne!(w[0].0, w[1].0, "two leaders in one term (round {round})");
        }
    }
}
