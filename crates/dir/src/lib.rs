//! jsym-dir: a replicated object/manager directory with quorum failover.
//!
//! JavaSymphony's object registry and manager roles are single-authority in
//! the paper's prototype: the origin AppOA owns object→node placement and
//! the NA promotes one static backup on manager death. This crate removes
//! that single point of failure with a small replicated directory — two
//! replicated maps (object→node placement, manager-role assignments) behind
//! a leader-based replicated log with majority commit, heartbeat-driven
//! re-election, snapshot/compaction, and read-index leader reads.
//!
//! The consensus core is deliberately *pure*: a [`DirReplica`] is a state
//! machine driven entirely by [`DirReplica::tick`] (virtual-clock time) and
//! [`DirReplica::receive`] (messages from peers). It owns no threads, no
//! sockets and no clocks; outbound messages are returned to the host, which
//! ships them over the simulated delivery plane where they are charged
//! modeled wire bytes like any other traffic — so partitions and faults
//! apply to consensus traffic too. Election timeouts are staggered
//! deterministically by replica rank instead of randomized, which keeps
//! whole-deployment runs reproducible under the virtual clock.
//!
//! The crate is dependency-free; messages and snapshots are encoded with a
//! small hand-rolled binary codec ([`codec`]) so the host can charge real
//! byte counts without a serialization framework.

#![warn(missing_docs)]

pub mod codec;
pub mod replica;
pub mod state;

pub use replica::{
    DirConfig, DirEvent, DirMsg, DirReplica, DirReplicaStatus, LogEntry, NotLeader, Role,
};
pub use state::{DirCommand, DirState, RoleEntry};
