//! The consensus core: a leader-based replicated log with majority commit.
//!
//! This is a compact Raft-family protocol specialised for the simulated
//! runtime:
//!
//! - **Deterministic elections.** Instead of randomized timeouts, each
//!   replica's election timeout is staggered by its rank in the sorted
//!   replica-id list. Under the virtual clock the same deployment always
//!   elects the same leaders at the same virtual times.
//! - **Pure message passing.** [`DirReplica::tick`] and
//!   [`DirReplica::receive`] return outbound `(peer, message)` pairs; the
//!   host ships them over the modeled network, so consensus traffic pays
//!   wire-byte costs and suffers partitions like all other traffic.
//! - **Snapshot/compaction.** Once the applied log grows past
//!   `compact_threshold` entries the replica folds the prefix into a
//!   [`DirState`] snapshot; lagging followers are caught up by snapshot
//!   installation instead of log replay.
//! - **Read-index leader reads.** Reads are served by the leader without a
//!   log append: the leader records its commit index, confirms leadership
//!   with one heartbeat round, then answers from the applied state — the
//!   linearizable-read protocol from the Raft dissertation (§6.4).

use crate::codec::{DecodeError, Reader, Writer};
use crate::state::{DirCommand, DirState};
use std::collections::BTreeMap;

/// Timing and sizing knobs, all in virtual seconds / log entries.
#[derive(Clone, Copy, Debug)]
pub struct DirConfig {
    /// Leader heartbeat (empty AppendEntries) period.
    pub heartbeat_interval: f64,
    /// Base election timeout; replica at rank `r` waits
    /// `election_timeout * (1 + r/2)` before standing for election.
    pub election_timeout: f64,
    /// Applied log entries kept before folding the prefix into a snapshot.
    pub compact_threshold: usize,
    /// Maximum log entries shipped per AppendEntries message.
    pub max_batch: usize,
    /// Leader read-lease duration; `0.0` disables leases entirely, leaving
    /// every code path byte-identical to the lease-free protocol. When
    /// enabled it MUST be strictly less than `election_timeout`: a lease
    /// granted by a heartbeat round sent at `t` is valid until
    /// `t + lease_duration`, and vote suppression only guarantees no rival
    /// leader before `t + election_timeout`.
    pub lease_duration: f64,
}

impl Default for DirConfig {
    fn default() -> Self {
        DirConfig {
            heartbeat_interval: 0.5,
            election_timeout: 2.0,
            compact_threshold: 256,
            max_batch: 64,
            lease_duration: 0.0,
        }
    }
}

/// A replica's protocol role.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Accepts entries from the current leader.
    Follower,
    /// Standing for election.
    Candidate,
    /// Serializes proposals and drives replication.
    Leader,
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Role::Follower => write!(f, "follower"),
            Role::Candidate => write!(f, "candidate"),
            Role::Leader => write!(f, "leader"),
        }
    }
}

/// One replicated log entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// Term in which the entry was appended.
    pub term: u64,
    /// The command.
    pub cmd: DirCommand,
}

/// Consensus messages exchanged between replicas.
#[derive(Clone, Debug, PartialEq)]
pub enum DirMsg {
    /// Candidate solicits a vote.
    RequestVote {
        /// Candidate's term.
        term: u64,
        /// Index of the candidate's last log entry.
        last_log_index: u64,
        /// Term of the candidate's last log entry.
        last_log_term: u64,
    },
    /// Vote response.
    Vote {
        /// Voter's term.
        term: u64,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Log replication / heartbeat.
    Append {
        /// Leader's term.
        term: u64,
        /// Index of the entry preceding `entries`.
        prev_index: u64,
        /// Term of the entry preceding `entries`.
        prev_term: u64,
        /// Entries to append (empty for a pure heartbeat).
        entries: Vec<LogEntry>,
        /// Leader's commit index.
        commit: u64,
        /// Heartbeat round sequence, echoed in the ack (read-index).
        probe: u64,
    },
    /// Append response.
    AppendAck {
        /// Follower's term.
        term: u64,
        /// Whether the append matched.
        success: bool,
        /// Highest index known replicated on the follower.
        match_index: u64,
        /// Echo of the probe sequence.
        probe: u64,
    },
    /// Snapshot installation for a follower that lags behind compaction.
    Snapshot {
        /// Leader's term.
        term: u64,
        /// Index covered by the snapshot.
        last_index: u64,
        /// Term at `last_index`.
        last_term: u64,
        /// Encoded [`DirState`].
        data: Vec<u8>,
    },
    /// Snapshot response.
    SnapshotAck {
        /// Follower's term.
        term: u64,
        /// The snapshot index now replicated.
        match_index: u64,
    },
}

const TAG_REQUEST_VOTE: u8 = 1;
const TAG_VOTE: u8 = 2;
const TAG_APPEND: u8 = 3;
const TAG_APPEND_ACK: u8 = 4;
const TAG_SNAPSHOT: u8 = 5;
const TAG_SNAPSHOT_ACK: u8 = 6;

impl DirMsg {
    /// Encodes to a fresh buffer (the host charges these bytes to the wire).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            DirMsg::RequestVote {
                term,
                last_log_index,
                last_log_term,
            } => {
                w.u8(TAG_REQUEST_VOTE);
                w.u64(*term);
                w.u64(*last_log_index);
                w.u64(*last_log_term);
            }
            DirMsg::Vote { term, granted } => {
                w.u8(TAG_VOTE);
                w.u64(*term);
                w.u8(*granted as u8);
            }
            DirMsg::Append {
                term,
                prev_index,
                prev_term,
                entries,
                commit,
                probe,
            } => {
                w.u8(TAG_APPEND);
                w.u64(*term);
                w.u64(*prev_index);
                w.u64(*prev_term);
                w.u64(*commit);
                w.u64(*probe);
                w.u32(entries.len() as u32);
                for e in entries {
                    w.u64(e.term);
                    e.cmd.encode(&mut w);
                }
            }
            DirMsg::AppendAck {
                term,
                success,
                match_index,
                probe,
            } => {
                w.u8(TAG_APPEND_ACK);
                w.u64(*term);
                w.u8(*success as u8);
                w.u64(*match_index);
                w.u64(*probe);
            }
            DirMsg::Snapshot {
                term,
                last_index,
                last_term,
                data,
            } => {
                w.u8(TAG_SNAPSHOT);
                w.u64(*term);
                w.u64(*last_index);
                w.u64(*last_term);
                w.bytes(data);
            }
            DirMsg::SnapshotAck { term, match_index } => {
                w.u8(TAG_SNAPSHOT_ACK);
                w.u64(*term);
                w.u64(*match_index);
            }
        }
        w.finish()
    }

    /// Decodes from a buffer produced by [`DirMsg::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<Self, DecodeError> {
        let r = &mut Reader::new(buf);
        Ok(match r.u8()? {
            TAG_REQUEST_VOTE => DirMsg::RequestVote {
                term: r.u64()?,
                last_log_index: r.u64()?,
                last_log_term: r.u64()?,
            },
            TAG_VOTE => DirMsg::Vote {
                term: r.u64()?,
                granted: r.u8()? != 0,
            },
            TAG_APPEND => {
                let term = r.u64()?;
                let prev_index = r.u64()?;
                let prev_term = r.u64()?;
                let commit = r.u64()?;
                let probe = r.u64()?;
                let n = r.u32()?;
                let mut entries = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let term = r.u64()?;
                    let cmd = DirCommand::decode(r)?;
                    entries.push(LogEntry { term, cmd });
                }
                DirMsg::Append {
                    term,
                    prev_index,
                    prev_term,
                    entries,
                    commit,
                    probe,
                }
            }
            TAG_APPEND_ACK => DirMsg::AppendAck {
                term: r.u64()?,
                success: r.u8()? != 0,
                match_index: r.u64()?,
                probe: r.u64()?,
            },
            TAG_SNAPSHOT => DirMsg::Snapshot {
                term: r.u64()?,
                last_index: r.u64()?,
                last_term: r.u64()?,
                data: r.bytes()?.to_vec(),
            },
            TAG_SNAPSHOT_ACK => DirMsg::SnapshotAck {
                term: r.u64()?,
                match_index: r.u64()?,
            },
            _ => return Err(DecodeError),
        })
    }
}

/// Notifications produced while ticking/receiving, drained by the host.
#[derive(Clone, Debug, PartialEq)]
pub enum DirEvent {
    /// A committed entry was applied to the state machine.
    Applied {
        /// Global log index of the entry.
        index: u64,
        /// The applied command.
        cmd: DirCommand,
    },
    /// A local proposal reached majority commit.
    Committed {
        /// Proposal sequence returned by [`DirReplica::propose`].
        seq: u64,
        /// Log index the proposal landed at.
        index: u64,
    },
    /// A local proposal was lost to a leadership change; retry elsewhere.
    ProposalDropped {
        /// Proposal sequence.
        seq: u64,
    },
    /// A read-index request was confirmed; the state may be read.
    ReadReady {
        /// Read sequence returned by [`DirReplica::read_index`].
        seq: u64,
        /// Whether the read was served from a still-valid leader lease
        /// (no heartbeat round trip) rather than a probe confirmation.
        lease: bool,
    },
    /// A read-index request was lost to a leadership change.
    ReadDropped {
        /// Read sequence.
        seq: u64,
    },
    /// The replica's view of the leader changed.
    LeaderIs {
        /// The leader, if known.
        leader: Option<u32>,
        /// Current term.
        term: u64,
    },
    /// An election started (this replica became candidate).
    ElectionStarted {
        /// The new term.
        term: u64,
    },
    /// The applied prefix was folded into a snapshot.
    SnapshotTaken {
        /// Last index covered.
        last_index: u64,
        /// Encoded snapshot size.
        bytes: usize,
    },
}

/// Error returned by [`DirReplica::propose`] / [`DirReplica::read_index`]
/// on a non-leader, carrying the best-known leader hint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotLeader {
    /// Best-known current leader id, if any.
    pub hint: Option<u32>,
}

/// Point-in-time status for the shell's `directory` command.
#[derive(Clone, Debug)]
pub struct DirReplicaStatus {
    /// Replica id (physical node id of the host).
    pub id: u32,
    /// Current role.
    pub role: Role,
    /// Current term.
    pub term: u64,
    /// Best-known leader.
    pub leader: Option<u32>,
    /// Commit index.
    pub commit: u64,
    /// Applied index.
    pub applied: u64,
    /// Entries currently retained in the log.
    pub log_entries: usize,
    /// Index folded into the snapshot.
    pub snapshot_index: u64,
    /// Virtual time the leader's read lease expires (`-inf` when no lease
    /// is held or leases are disabled).
    pub lease_expiry: f64,
}

struct PendingPropose {
    seq: u64,
    index: u64,
}

struct PendingRead {
    seq: u64,
    commit_at_request: u64,
    probe: u64,
}

/// One directory replica.
pub struct DirReplica {
    id: u32,
    peers: Vec<u32>,
    config: DirConfig,
    role: Role,
    term: u64,
    voted_for: Option<u32>,
    leader: Option<u32>,
    /// Entries after `snapshot_index` (global index `snapshot_index + 1 + i`).
    log: Vec<LogEntry>,
    snapshot_index: u64,
    snapshot_term: u64,
    commit: u64,
    applied: u64,
    state: DirState,
    // Volatile leader state.
    next_index: BTreeMap<u32, u64>,
    match_index: BTreeMap<u32, u64>,
    probe_seq: u64,
    probe_acks: BTreeMap<u32, u64>,
    /// Send time of each outstanding heartbeat round (lease mode only):
    /// once a quorum acks round `r`, the lease extends to
    /// `probe_times[r] + lease_duration`.
    probe_times: BTreeMap<u64, f64>,
    /// Expiry of the leader read lease (`-inf` when none).
    lease_expiry: f64,
    pending_props: Vec<PendingPropose>,
    pending_reads: Vec<PendingRead>,
    // Volatile candidate state.
    votes: Vec<u32>,
    // Timers (virtual seconds).
    last_leader_contact: f64,
    last_heartbeat: f64,
    /// Last time an Append/Snapshot arrived from a live leader. Unlike
    /// `last_leader_contact` this is never advanced by vote grants or
    /// step-downs, so lease-mode vote suppression can't be defeated by the
    /// solicitation itself refreshing the timer.
    last_leader_msg: f64,
    // Monotonic sequences for the host.
    next_seq: u64,
    events: Vec<DirEvent>,
}

impl DirReplica {
    /// Creates a replica. `replicas` is the full replica-id set (including
    /// `id`); ids are the physical node ids of the hosting machines.
    pub fn new(id: u32, replicas: &[u32], config: DirConfig, now: f64) -> Self {
        let peers: Vec<u32> = replicas.iter().copied().filter(|&p| p != id).collect();
        DirReplica {
            id,
            peers,
            config,
            role: Role::Follower,
            term: 0,
            voted_for: None,
            leader: None,
            log: Vec::new(),
            snapshot_index: 0,
            snapshot_term: 0,
            commit: 0,
            applied: 0,
            state: DirState::new(),
            next_index: BTreeMap::new(),
            match_index: BTreeMap::new(),
            probe_seq: 0,
            probe_acks: BTreeMap::new(),
            probe_times: BTreeMap::new(),
            lease_expiry: f64::NEG_INFINITY,
            pending_props: Vec::new(),
            pending_reads: Vec::new(),
            votes: Vec::new(),
            last_leader_contact: now,
            last_heartbeat: now,
            last_leader_msg: f64::NEG_INFINITY,
            next_seq: 1,
            events: Vec::new(),
        }
    }

    // ------------------------------------------------------------ accessors

    /// This replica's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Current term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Best-known leader id.
    pub fn leader_hint(&self) -> Option<u32> {
        self.leader
    }

    /// Commit index.
    pub fn commit_index(&self) -> u64 {
        self.commit
    }

    /// The applied state (valid up to [`DirReplica::applied_index`]).
    pub fn state(&self) -> &DirState {
        &self.state
    }

    /// The configuration this replica runs with.
    pub fn config(&self) -> &DirConfig {
        &self.config
    }

    /// Applied index.
    pub fn applied_index(&self) -> u64 {
        self.applied
    }

    /// Point-in-time status snapshot.
    pub fn status(&self) -> DirReplicaStatus {
        DirReplicaStatus {
            id: self.id,
            role: self.role,
            term: self.term,
            leader: self.leader,
            commit: self.commit,
            applied: self.applied,
            log_entries: self.log.len(),
            snapshot_index: self.snapshot_index,
            lease_expiry: self.lease_expiry,
        }
    }

    /// Drains accumulated events.
    pub fn take_events(&mut self) -> Vec<DirEvent> {
        std::mem::take(&mut self.events)
    }

    fn last_index(&self) -> u64 {
        self.snapshot_index + self.log.len() as u64
    }

    fn term_at(&self, index: u64) -> Option<u64> {
        if index == self.snapshot_index {
            Some(self.snapshot_term)
        } else if index > self.snapshot_index && index <= self.last_index() {
            Some(self.log[(index - self.snapshot_index - 1) as usize].term)
        } else if index == 0 {
            Some(0)
        } else {
            None
        }
    }

    /// Election timeout staggered by rank: the lowest live replica id stands
    /// first, making clean elections deterministic under the virtual clock.
    fn my_election_timeout(&self) -> f64 {
        let mut ids: Vec<u32> = self.peers.clone();
        ids.push(self.id);
        ids.sort_unstable();
        let rank = ids.iter().position(|&p| p == self.id).unwrap_or(0);
        self.config.election_timeout * (1.0 + rank as f64 * 0.5)
    }

    fn majority(&self) -> usize {
        self.peers.len().div_ceil(2) + 1
    }

    // ------------------------------------------------------------ client API

    /// Appends `cmd` to the log if this replica is the leader. Returns a
    /// proposal sequence resolved later via [`DirEvent::Committed`] /
    /// [`DirEvent::ProposalDropped`].
    pub fn propose(&mut self, cmd: DirCommand, _now: f64) -> Result<u64, NotLeader> {
        if self.role != Role::Leader {
            return Err(NotLeader { hint: self.leader });
        }
        self.log.push(LogEntry {
            term: self.term,
            cmd,
        });
        let index = self.last_index();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending_props.push(PendingPropose { seq, index });
        // Single-replica degenerate case: commit immediately.
        if self.peers.is_empty() {
            self.advance_commit();
        }
        Ok(seq)
    }

    /// Registers a read-index request. Resolved via [`DirEvent::ReadReady`]
    /// once one heartbeat round confirms leadership, after which the state
    /// may be read linearizably. With a valid read lease
    /// ([`DirConfig::lease_duration`]) the confirmation is immediate: a
    /// quorum acknowledged a heartbeat sent less than one lease ago, and
    /// vote suppression guarantees no rival leader within that window.
    pub fn read_index(&mut self, now: f64) -> Result<u64, NotLeader> {
        if self.role != Role::Leader {
            return Err(NotLeader { hint: self.leader });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.peers.is_empty() {
            self.events.push(DirEvent::ReadReady { seq, lease: false });
            return Ok(seq);
        }
        // Lease fast path. The current-term no-op must have committed first
        // (Raft §6.4): before that the leader may not know about entries a
        // predecessor committed, and a lease read could miss them.
        if self.config.lease_duration > 0.0
            && now < self.lease_expiry
            && self.applied >= self.commit
            && self.term_at(self.commit) == Some(self.term)
        {
            self.events.push(DirEvent::ReadReady { seq, lease: true });
            return Ok(seq);
        }
        self.pending_reads.push(PendingRead {
            seq,
            commit_at_request: self.commit,
            probe: self.probe_seq + 1,
        });
        Ok(seq)
    }

    // ------------------------------------------------------------- protocol

    /// Advances timers: elections for followers/candidates, heartbeats and
    /// replication for leaders. Returns outbound `(peer, message)` pairs.
    pub fn tick(&mut self, now: f64) -> Vec<(u32, DirMsg)> {
        match self.role {
            Role::Leader => {
                if now - self.last_heartbeat >= self.config.heartbeat_interval {
                    return self.broadcast_append(now);
                }
                Vec::new()
            }
            Role::Follower | Role::Candidate => {
                if now - self.last_leader_contact >= self.my_election_timeout() {
                    return self.start_election(now);
                }
                Vec::new()
            }
        }
    }

    /// Handles one message from peer `from`. Returns outbound messages.
    pub fn receive(&mut self, from: u32, msg: DirMsg, now: f64) -> Vec<(u32, DirMsg)> {
        match msg {
            DirMsg::RequestVote {
                term,
                last_log_index,
                last_log_term,
            } => self.on_request_vote(from, term, last_log_index, last_log_term, now),
            DirMsg::Vote { term, granted } => self.on_vote(from, term, granted, now),
            DirMsg::Append {
                term,
                prev_index,
                prev_term,
                entries,
                commit,
                probe,
            } => self.on_append(
                from, term, prev_index, prev_term, entries, commit, probe, now,
            ),
            DirMsg::AppendAck {
                term,
                success,
                match_index,
                probe,
            } => self.on_append_ack(from, term, success, match_index, probe, now),
            DirMsg::Snapshot {
                term,
                last_index,
                last_term,
                data,
            } => self.on_snapshot(from, term, last_index, last_term, data, now),
            DirMsg::SnapshotAck { term, match_index } => {
                self.on_snapshot_ack(from, term, match_index)
            }
        }
    }

    fn start_election(&mut self, now: f64) -> Vec<(u32, DirMsg)> {
        self.term += 1;
        self.role = Role::Candidate;
        self.voted_for = Some(self.id);
        self.votes = vec![self.id];
        self.set_leader(None);
        self.last_leader_contact = now;
        self.events
            .push(DirEvent::ElectionStarted { term: self.term });
        if self.votes.len() >= self.majority() {
            return self.become_leader(now);
        }
        let msg = DirMsg::RequestVote {
            term: self.term,
            last_log_index: self.last_index(),
            last_log_term: self.term_at(self.last_index()).unwrap_or(0),
        };
        self.peers.iter().map(|&p| (p, msg.clone())).collect()
    }

    fn become_leader(&mut self, now: f64) -> Vec<(u32, DirMsg)> {
        self.role = Role::Leader;
        self.set_leader(Some(self.id));
        self.next_index = self
            .peers
            .iter()
            .map(|&p| (p, self.last_index() + 1))
            .collect();
        self.match_index = self.peers.iter().map(|&p| (p, 0)).collect();
        self.probe_acks = self.peers.iter().map(|&p| (p, 0)).collect();
        // A fresh leader holds no lease until its own quorum round: a lease
        // inherited across elections could overlap a predecessor's.
        self.probe_times.clear();
        self.lease_expiry = f64::NEG_INFINITY;
        // Commit entries from prior terms by appending a no-op in ours
        // (Raft §5.4.2: a leader may only count replicas for entries of its
        // own term).
        self.log.push(LogEntry {
            term: self.term,
            cmd: DirCommand::Noop,
        });
        if self.peers.is_empty() {
            self.advance_commit();
        }
        self.broadcast_append(now)
    }

    fn step_down(&mut self, term: u64, now: f64) {
        let was_leader = self.role == Role::Leader;
        // One vote per term (Raft §5.2): only a term *increase* clears the
        // vote. A same-term step-down — e.g. a candidate hearing the term's
        // elected leader — must keep it, or this replica could grant a
        // second vote in the same term and elect two leaders.
        if term > self.term {
            self.voted_for = None;
        }
        self.term = term;
        self.role = Role::Follower;
        self.votes.clear();
        self.last_leader_contact = now;
        if was_leader {
            for p in self.pending_props.drain(..) {
                self.events.push(DirEvent::ProposalDropped { seq: p.seq });
            }
            for r in self.pending_reads.drain(..) {
                self.events.push(DirEvent::ReadDropped { seq: r.seq });
            }
            // Invalidate the read lease: once stepped down, stale in-flight
            // acks must never extend it (on_append_ack is role-gated, and
            // the cleared state makes the invariant explicit).
            self.probe_times.clear();
            self.lease_expiry = f64::NEG_INFINITY;
        }
    }

    fn set_leader(&mut self, leader: Option<u32>) {
        if self.leader != leader {
            self.leader = leader;
            self.events.push(DirEvent::LeaderIs {
                leader,
                term: self.term,
            });
        }
    }

    fn broadcast_append(&mut self, now: f64) -> Vec<(u32, DirMsg)> {
        self.last_heartbeat = now;
        self.probe_seq += 1;
        if self.config.lease_duration > 0.0 {
            self.probe_times.insert(self.probe_seq, now);
        }
        let mut out = Vec::with_capacity(self.peers.len());
        for &p in &self.peers.clone() {
            out.push((p, self.append_for(p)));
        }
        out
    }

    /// Builds the replication message for peer `p`: a snapshot if it lags
    /// behind compaction, otherwise entries from its next index.
    fn append_for(&self, p: u32) -> DirMsg {
        let next = *self.next_index.get(&p).unwrap_or(&1);
        if next <= self.snapshot_index {
            return DirMsg::Snapshot {
                term: self.term,
                last_index: self.snapshot_index,
                last_term: self.snapshot_term,
                data: self.state.to_bytes(),
            };
        }
        let prev_index = next - 1;
        let prev_term = self.term_at(prev_index).unwrap_or(0);
        let from = (next - self.snapshot_index - 1) as usize;
        let to = (from + self.config.max_batch).min(self.log.len());
        DirMsg::Append {
            term: self.term,
            prev_index,
            prev_term,
            entries: self.log[from..to].to_vec(),
            commit: self.commit,
            probe: self.probe_seq,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_append(
        &mut self,
        from: u32,
        term: u64,
        prev_index: u64,
        prev_term: u64,
        entries: Vec<LogEntry>,
        commit: u64,
        probe: u64,
        now: f64,
    ) -> Vec<(u32, DirMsg)> {
        if term < self.term {
            return vec![(
                from,
                DirMsg::AppendAck {
                    term: self.term,
                    success: false,
                    match_index: 0,
                    probe,
                },
            )];
        }
        if term > self.term || self.role != Role::Follower {
            self.step_down(term, now);
        }
        self.last_leader_contact = now;
        self.last_leader_msg = now;
        self.set_leader(Some(from));

        // The prefix up to snapshot_index is already committed here; skip
        // any overlap.
        let (prev_index, prev_term, entries) = if prev_index < self.snapshot_index {
            let skip = (self.snapshot_index - prev_index) as usize;
            if skip >= entries.len() {
                (self.snapshot_index, self.snapshot_term, Vec::new())
            } else {
                (
                    self.snapshot_index,
                    self.snapshot_term,
                    entries[skip..].to_vec(),
                )
            }
        } else {
            (prev_index, prev_term, entries)
        };

        if self.term_at(prev_index) != Some(prev_term) {
            // Log mismatch: tell the leader how far we actually are.
            let hint = self.last_index().min(prev_index.saturating_sub(1));
            return vec![(
                from,
                DirMsg::AppendAck {
                    term: self.term,
                    success: false,
                    match_index: hint,
                    probe,
                },
            )];
        }

        // Append, truncating any conflicting suffix.
        let mut index = prev_index;
        for e in entries {
            index += 1;
            let pos = (index - self.snapshot_index - 1) as usize;
            if pos < self.log.len() {
                if self.log[pos].term != e.term {
                    self.log.truncate(pos);
                    self.log.push(e);
                }
            } else {
                self.log.push(e);
            }
        }
        let match_index = index.max(self.last_index().min(index));
        if commit > self.commit {
            self.commit = commit.min(self.last_index());
            self.apply_committed();
        }
        vec![(
            from,
            DirMsg::AppendAck {
                term: self.term,
                success: true,
                match_index,
                probe,
            },
        )]
    }

    fn on_append_ack(
        &mut self,
        from: u32,
        term: u64,
        success: bool,
        match_index: u64,
        probe: u64,
        now: f64,
    ) -> Vec<(u32, DirMsg)> {
        if term > self.term {
            self.step_down(term, now);
            self.set_leader(None);
            return Vec::new();
        }
        if self.role != Role::Leader || term < self.term {
            return Vec::new();
        }
        if success {
            // A heartbeat ack echoes the heartbeat's prev_index, which may
            // sit below an earlier replication ack; keep both indices
            // monotonic so acked entries are never re-sent.
            let matched = self
                .match_index
                .get(&from)
                .copied()
                .unwrap_or(0)
                .max(match_index);
            self.match_index.insert(from, matched);
            let next = self
                .next_index
                .get(&from)
                .copied()
                .unwrap_or(1)
                .max(matched + 1);
            self.next_index.insert(from, next);
            let prev_probe = self.probe_acks.get(&from).copied().unwrap_or(0);
            self.probe_acks.insert(from, prev_probe.max(probe));
            self.refresh_lease();
            self.advance_commit();
            self.confirm_reads();
            // Keep pushing if the follower is still behind.
            if *self.next_index.get(&from).unwrap_or(&1) <= self.last_index() {
                return vec![(from, self.append_for(from))];
            }
        } else {
            let next = (match_index + 1).max(1);
            self.next_index.insert(from, next);
            return vec![(from, self.append_for(from))];
        }
        Vec::new()
    }

    /// Leader read-lease extension (lease mode only): the lease covers
    /// `send_time + lease_duration` of the newest heartbeat round that a
    /// quorum (counting this leader) has acknowledged.
    fn refresh_lease(&mut self) {
        if self.config.lease_duration <= 0.0 {
            return;
        }
        let need = self.majority() - 1; // peers needed besides ourselves
        if need == 0 {
            return;
        }
        let mut acked: Vec<u64> = self.probe_acks.values().copied().collect();
        acked.sort_unstable_by(|a, b| b.cmp(a));
        let quorum_probe = acked.get(need - 1).copied().unwrap_or(0);
        if quorum_probe == 0 {
            return;
        }
        if let Some(&sent) = self.probe_times.get(&quorum_probe) {
            let expiry = sent + self.config.lease_duration;
            if expiry > self.lease_expiry {
                self.lease_expiry = expiry;
            }
        }
        // Rounds at or below the quorum point can never improve the lease
        // again (send times are monotonic); drop them to bound the map.
        self.probe_times.retain(|&p, _| p > quorum_probe);
    }

    fn on_request_vote(
        &mut self,
        from: u32,
        term: u64,
        last_log_index: u64,
        last_log_term: u64,
        now: f64,
    ) -> Vec<(u32, DirMsg)> {
        // Lease-mode leader stickiness (Raft §4.2.3 / §6.4): while this
        // replica has heard from a live leader within the base election
        // timeout — or IS a leader holding a valid lease — it refuses to
        // vote, regardless of the candidate's term. Without this, a rival
        // elected mid-lease could commit a placement the lease holder's
        // local reads would miss. The reply deliberately does not adopt the
        // candidate's term; a genuine leader loss lets elections proceed
        // once the timeout elapses.
        if self.config.lease_duration > 0.0 {
            let leader_alive = self.leader.is_some()
                && self.leader != Some(from)
                && now - self.last_leader_msg < self.config.election_timeout;
            let own_lease = self.role == Role::Leader && now < self.lease_expiry;
            if leader_alive || own_lease {
                return vec![(
                    from,
                    DirMsg::Vote {
                        term: self.term,
                        granted: false,
                    },
                )];
            }
        }
        if term > self.term {
            self.step_down(term, now);
            self.set_leader(None);
        }
        let my_last = self.last_index();
        let my_last_term = self.term_at(my_last).unwrap_or(0);
        let up_to_date = (last_log_term, last_log_index) >= (my_last_term, my_last);
        let granted = term == self.term
            && up_to_date
            && (self.voted_for.is_none() || self.voted_for == Some(from));
        if granted {
            self.voted_for = Some(from);
            self.last_leader_contact = now;
        }
        vec![(
            from,
            DirMsg::Vote {
                term: self.term,
                granted,
            },
        )]
    }

    fn on_vote(&mut self, from: u32, term: u64, granted: bool, now: f64) -> Vec<(u32, DirMsg)> {
        if term > self.term {
            self.step_down(term, now);
            self.set_leader(None);
            return Vec::new();
        }
        if self.role != Role::Candidate || term < self.term || !granted {
            return Vec::new();
        }
        if !self.votes.contains(&from) {
            self.votes.push(from);
        }
        if self.votes.len() >= self.majority() {
            return self.become_leader(now);
        }
        Vec::new()
    }

    fn on_snapshot(
        &mut self,
        from: u32,
        term: u64,
        last_index: u64,
        last_term: u64,
        data: Vec<u8>,
        now: f64,
    ) -> Vec<(u32, DirMsg)> {
        if term < self.term {
            return vec![(
                from,
                DirMsg::SnapshotAck {
                    term: self.term,
                    match_index: 0,
                },
            )];
        }
        if term > self.term || self.role != Role::Follower {
            self.step_down(term, now);
        }
        self.last_leader_contact = now;
        self.last_leader_msg = now;
        self.set_leader(Some(from));
        // A delayed snapshot at or below our commit point must be ignored:
        // installing it would clear entries already acked toward a majority
        // and regress commit/applied, risking loss of a committed entry.
        // (`commit >= snapshot_index` always, so this also covers overlap
        // with the current snapshot.)
        if last_index > self.commit {
            if let Ok(state) = DirState::from_bytes(&data) {
                self.state = state;
                self.snapshot_index = last_index;
                self.snapshot_term = last_term;
                self.log.clear();
                self.commit = last_index;
                self.applied = last_index;
            }
        }
        vec![(
            from,
            DirMsg::SnapshotAck {
                term: self.term,
                // Everything up to our commit is durably held here even when
                // a stale snapshot was rejected above.
                match_index: self.snapshot_index.max(self.commit),
            },
        )]
    }

    fn on_snapshot_ack(&mut self, from: u32, term: u64, match_index: u64) -> Vec<(u32, DirMsg)> {
        if self.role != Role::Leader || term != self.term {
            return Vec::new();
        }
        // Monotonic, like append acks: a reordered stale ack must not
        // regress the follower's progress markers.
        let matched = self
            .match_index
            .get(&from)
            .copied()
            .unwrap_or(0)
            .max(match_index);
        self.match_index.insert(from, matched);
        let next = self
            .next_index
            .get(&from)
            .copied()
            .unwrap_or(1)
            .max(matched + 1);
        self.next_index.insert(from, next);
        if matched < self.last_index() {
            return vec![(from, self.append_for(from))];
        }
        Vec::new()
    }

    /// Leader: recomputes the commit index from match indices (counting
    /// itself), restricted to entries of the current term.
    fn advance_commit(&mut self) {
        let last = self.last_index();
        let mut n = last;
        while n > self.commit {
            let replicated = 1 + self.match_index.values().filter(|&&m| m >= n).count();
            if replicated >= self.majority() && self.term_at(n) == Some(self.term) {
                break;
            }
            n -= 1;
        }
        if n > self.commit {
            self.commit = n;
            self.apply_committed();
            // Resolve proposals at or below the new commit index.
            let commit = self.commit;
            let mut resolved = Vec::new();
            self.pending_props.retain(|p| {
                if p.index <= commit {
                    resolved.push((p.seq, p.index));
                    false
                } else {
                    true
                }
            });
            for (seq, index) in resolved {
                self.events.push(DirEvent::Committed { seq, index });
            }
            self.confirm_reads();
        }
    }

    /// Leader: resolves read-index requests whose probe round has been
    /// acknowledged by a majority and whose commit point has been applied.
    fn confirm_reads(&mut self) {
        if self.pending_reads.is_empty() {
            return;
        }
        let majority = self.majority();
        let applied = self.applied;
        let acks = &self.probe_acks;
        let mut ready = Vec::new();
        self.pending_reads.retain(|r| {
            let confirmed = 1 + acks.values().filter(|&&a| a >= r.probe).count();
            if confirmed >= majority && applied >= r.commit_at_request {
                ready.push(r.seq);
                false
            } else {
                true
            }
        });
        for seq in ready {
            self.events.push(DirEvent::ReadReady { seq, lease: false });
        }
    }

    fn apply_committed(&mut self) {
        while self.applied < self.commit {
            self.applied += 1;
            let pos = (self.applied - self.snapshot_index - 1) as usize;
            let cmd = self.log[pos].cmd.clone();
            self.state.apply(&cmd);
            self.events.push(DirEvent::Applied {
                index: self.applied,
                cmd,
            });
        }
        self.maybe_compact();
    }

    /// Folds the applied prefix into a snapshot once the log grows past the
    /// compaction threshold.
    fn maybe_compact(&mut self) {
        let applied_entries = (self.applied - self.snapshot_index) as usize;
        if applied_entries < self.config.compact_threshold || self.log.len() < applied_entries {
            return;
        }
        let last_term = self.term_at(self.applied).unwrap_or(self.snapshot_term);
        self.log.drain(..applied_entries);
        self.snapshot_index = self.applied;
        self.snapshot_term = last_term;
        self.events.push(DirEvent::SnapshotTaken {
            last_index: self.snapshot_index,
            bytes: self.state.to_bytes().len(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic in-memory bus: fixed 10 ms latency, FIFO per pair.
    struct Bus {
        replicas: Vec<DirReplica>,
        inflight: Vec<(f64, u32, u32, DirMsg)>, // (arrive, from, to, msg)
        now: f64,
        seq: u64,
        down: Vec<u32>,
    }

    const LAT: f64 = 0.01;

    impl Bus {
        fn new(n: u32) -> Bus {
            Bus::new_with(n, DirConfig::default())
        }

        fn new_with(n: u32, config: DirConfig) -> Bus {
            let ids: Vec<u32> = (0..n).collect();
            let replicas = ids
                .iter()
                .map(|&id| DirReplica::new(id, &ids, config, 0.0))
                .collect();
            Bus {
                replicas,
                inflight: Vec::new(),
                now: 0.0,
                seq: 0,
                down: Vec::new(),
            }
        }

        fn replica(&mut self, id: u32) -> &mut DirReplica {
            self.replicas.iter_mut().find(|r| r.id() == id).unwrap()
        }

        fn ship(&mut self, from: u32, out: Vec<(u32, DirMsg)>) {
            for (to, msg) in out {
                if self.down.contains(&from) || self.down.contains(&to) {
                    continue;
                }
                self.seq += 1;
                // Encode/decode round-trip: what the real transport does.
                let msg = DirMsg::from_bytes(&msg.to_bytes()).unwrap();
                self.inflight
                    .push((self.now + LAT + self.seq as f64 * 1e-9, from, to, msg));
            }
        }

        /// Advances virtual time in 5 ms steps, ticking and delivering.
        fn run_until(&mut self, t: f64) {
            while self.now < t {
                self.now += 0.005;
                let ids: Vec<u32> = self.replicas.iter().map(|r| r.id()).collect();
                for id in ids {
                    if self.down.contains(&id) {
                        continue;
                    }
                    let now = self.now;
                    let out = self.replica(id).tick(now);
                    self.ship(id, out);
                }
                loop {
                    let now = self.now;
                    let due: Vec<usize> = self
                        .inflight
                        .iter()
                        .enumerate()
                        .filter(|(_, (at, _, _, _))| *at <= now)
                        .map(|(i, _)| i)
                        .collect();
                    if due.is_empty() {
                        break;
                    }
                    // Deliver in arrival order.
                    let mut batch: Vec<(f64, u32, u32, DirMsg)> = Vec::new();
                    for i in due.into_iter().rev() {
                        batch.push(self.inflight.remove(i));
                    }
                    batch.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                    for (_, from, to, msg) in batch {
                        if self.down.contains(&to) {
                            continue;
                        }
                        let out = self.replica(to).receive(from, msg, now);
                        self.ship(to, out);
                    }
                }
            }
        }

        fn leader(&self) -> Option<u32> {
            self.replicas
                .iter()
                .find(|r| r.role() == Role::Leader && !self.down.contains(&r.id()))
                .map(|r| r.id())
        }
    }

    #[test]
    fn elects_the_lowest_ranked_replica_first() {
        let mut bus = Bus::new(3);
        bus.run_until(5.0);
        assert_eq!(
            bus.leader(),
            Some(0),
            "rank-staggered election is deterministic"
        );
        let term = bus.replicas[0].term();
        assert_eq!(term, 1);
        for r in &bus.replicas {
            assert_eq!(r.leader_hint(), Some(0));
        }
    }

    #[test]
    fn commits_with_majority_and_replicates_state() {
        let mut bus = Bus::new(3);
        bus.run_until(5.0);
        let leader = bus.leader().unwrap();
        let now = bus.now;
        let seq = bus
            .replica(leader)
            .propose(DirCommand::SetLocation { object: 9, node: 2 }, now)
            .unwrap();
        bus.run_until(bus.now + 2.0);
        let events = bus.replica(leader).take_events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, DirEvent::Committed { seq: s, .. } if *s == seq)),
            "proposal must commit: {events:?}"
        );
        for r in &bus.replicas {
            assert_eq!(r.state().location_of(9), Some(2), "replica {}", r.id());
        }
    }

    #[test]
    fn non_leader_rejects_proposals_with_hint() {
        let mut bus = Bus::new(3);
        bus.run_until(5.0);
        let now = bus.now;
        let err = bus.replica(1).propose(DirCommand::Noop, now).unwrap_err();
        assert_eq!(err.hint, Some(0));
    }

    #[test]
    fn read_index_confirms_after_a_heartbeat_round() {
        let mut bus = Bus::new(3);
        bus.run_until(5.0);
        let leader = bus.leader().unwrap();
        let now = bus.now;
        bus.replica(leader).take_events();
        let seq = bus.replica(leader).read_index(now).unwrap();
        bus.run_until(bus.now + 2.0);
        let events = bus.replica(leader).take_events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, DirEvent::ReadReady { seq: s, lease: false } if *s == seq)),
            "read must confirm without a lease: {events:?}"
        );
    }

    #[test]
    fn kill_minority_reelects_within_bounded_heartbeats() {
        let mut bus = Bus::new(3);
        bus.run_until(5.0);
        assert_eq!(bus.leader(), Some(0));
        // Kill the leader (a minority of 1 out of 3).
        bus.down.push(0);
        let killed_at = bus.now;
        // Bound: the rank-1 replica stands after election_timeout * 1.5;
        // give it one more timeout for the vote round trip.
        bus.run_until(killed_at + 2.0 * DirConfig::default().election_timeout + 1.0);
        let leader = bus.leader().expect("a new leader must emerge");
        assert_eq!(leader, 1, "next-ranked live replica takes over");
        // The new leader still serves the replicated state.
        let now = bus.now;
        let seq = bus
            .replica(1)
            .propose(DirCommand::MarkFailed { node: 0 }, now)
            .unwrap();
        bus.run_until(bus.now + 2.0);
        let events = bus.replica(1).take_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, DirEvent::Committed { seq: s, .. } if *s == seq)));
        assert!(bus.replica(2).state().is_failed(0));
    }

    #[test]
    fn five_replicas_survive_two_deaths() {
        let mut bus = Bus::new(5);
        bus.run_until(8.0);
        assert_eq!(bus.leader(), Some(0));
        let now = bus.now;
        bus.replica(0)
            .propose(DirCommand::SetLocation { object: 1, node: 4 }, now)
            .unwrap();
        bus.run_until(bus.now + 1.0);
        bus.down.push(0);
        bus.down.push(2);
        bus.run_until(bus.now + 3.0 * DirConfig::default().election_timeout + 1.0);
        let leader = bus.leader().expect("quorum of 3 must re-elect");
        assert!(leader == 1 || leader == 3 || leader == 4);
        // Replicated data survives the minority loss.
        let now = bus.now;
        let replica = bus.replica(leader);
        assert_eq!(replica.state().location_of(1), Some(4));
        let _ = replica.read_index(now).unwrap();
    }

    #[test]
    fn log_compaction_snapshots_and_catches_up_stragglers() {
        let mut bus = Bus::new(3);
        bus.run_until(5.0);
        // Partition replica 2 away while the leader churns entries.
        bus.down.push(2);
        let threshold = DirConfig::default().compact_threshold;
        for i in 0..(threshold as u64 + 50) {
            let now = bus.now;
            bus.replica(0)
                .propose(
                    DirCommand::SetLocation {
                        object: i,
                        node: (i % 3) as u32,
                    },
                    now,
                )
                .unwrap();
            bus.run_until(bus.now + 0.05);
        }
        let leader_status = bus.replica(0).status();
        assert!(
            leader_status.snapshot_index > 0,
            "leader must have compacted: {leader_status:?}"
        );
        // Heal the partition: the straggler is caught up via snapshot.
        bus.down.clear();
        bus.run_until(bus.now + 5.0);
        let s2 = bus.replica(2).status();
        assert!(
            s2.snapshot_index >= leader_status.snapshot_index,
            "straggler must install the snapshot: {s2:?}"
        );
        assert_eq!(
            bus.replica(2).state().location_of(17),
            Some((17 % 3) as u32)
        );
    }

    #[test]
    fn proposals_drop_on_leadership_loss() {
        let mut bus = Bus::new(3);
        bus.run_until(5.0);
        // Cut the leader off, then propose into it: no quorum, no commit.
        bus.down.push(1);
        bus.down.push(2);
        let now = bus.now;
        let seq = bus.replica(0).propose(DirCommand::Noop, now).unwrap();
        // The isolated ex-leader eventually steps down when a healed
        // majority elects a higher term and contacts it.
        bus.down.clear();
        bus.run_until(bus.now + 6.0 * DirConfig::default().election_timeout);
        let events = bus.replica(0).take_events();
        let committed = events
            .iter()
            .any(|e| matches!(e, DirEvent::Committed { seq: s, .. } if *s == seq));
        let dropped = events
            .iter()
            .any(|e| matches!(e, DirEvent::ProposalDropped { seq: s } if *s == seq));
        assert!(
            committed || dropped,
            "pending proposal must resolve either way: {events:?}"
        );
    }

    #[test]
    fn same_term_step_down_keeps_the_vote() {
        // Replica 1 stands for election in term 1 (voting for itself),
        // then hears the term-1 leader and steps down. One vote per term:
        // it must not grant a second term-1 vote to a rival candidate.
        let ids = [0, 1, 2];
        let mut r = DirReplica::new(1, &ids, DirConfig::default(), 0.0);
        let now = r.my_election_timeout() + 0.1;
        let out = r.tick(now);
        assert_eq!(r.role(), Role::Candidate);
        assert_eq!(out.len(), 2, "candidate solicits both peers");
        r.receive(
            0,
            DirMsg::Append {
                term: 1,
                prev_index: 0,
                prev_term: 0,
                entries: Vec::new(),
                commit: 0,
                probe: 1,
            },
            now,
        );
        assert_eq!(r.role(), Role::Follower);
        let out = r.receive(
            2,
            DirMsg::RequestVote {
                term: 1,
                last_log_index: 5,
                last_log_term: 1,
            },
            now,
        );
        assert_eq!(
            out,
            vec![(
                2,
                DirMsg::Vote {
                    term: 1,
                    granted: false,
                }
            )],
            "already voted for itself in term 1"
        );
    }

    #[test]
    fn stale_snapshot_does_not_regress_commit() {
        let ids = [0, 1];
        let mut r = DirReplica::new(1, &ids, DirConfig::default(), 0.0);
        let entries: Vec<LogEntry> = (0..3)
            .map(|i| LogEntry {
                term: 1,
                cmd: DirCommand::SetLocation { object: i, node: 0 },
            })
            .collect();
        r.receive(
            0,
            DirMsg::Append {
                term: 1,
                prev_index: 0,
                prev_term: 0,
                entries,
                commit: 3,
                probe: 1,
            },
            0.1,
        );
        assert_eq!(r.commit_index(), 3);
        assert_eq!(r.applied_index(), 3);
        // A delayed snapshot below the commit point must be ignored: it
        // would clear acked entries and roll back the applied state.
        let out = r.receive(
            0,
            DirMsg::Snapshot {
                term: 1,
                last_index: 2,
                last_term: 1,
                data: DirState::new().to_bytes(),
            },
            0.2,
        );
        assert_eq!(r.commit_index(), 3);
        assert_eq!(r.applied_index(), 3);
        assert_eq!(r.state().location_of(2), Some(0));
        // The ack still reports the commit point, not the stale snapshot.
        assert_eq!(
            out,
            vec![(
                0,
                DirMsg::SnapshotAck {
                    term: 1,
                    match_index: 3,
                }
            )]
        );
    }

    #[test]
    fn heartbeat_ack_does_not_regress_follower_progress() {
        let ids = [0, 1, 2];
        let mut r = DirReplica::new(0, &ids, DirConfig::default(), 0.0);
        let now = r.my_election_timeout() + 0.1;
        r.tick(now);
        r.receive(
            1,
            DirMsg::Vote {
                term: 1,
                granted: true,
            },
            now,
        );
        assert_eq!(r.role(), Role::Leader);
        for i in 0..4 {
            r.propose(DirCommand::SetLocation { object: i, node: 1 }, now)
                .unwrap();
        }
        let last = r.last_index();
        r.receive(
            1,
            DirMsg::AppendAck {
                term: 1,
                success: true,
                match_index: last,
                probe: 1,
            },
            now,
        );
        assert_eq!(r.commit_index(), last);
        // A reordered heartbeat ack echoing an older prev_index must not
        // pull next_index back and re-send entries the follower has.
        let out = r.receive(
            1,
            DirMsg::AppendAck {
                term: 1,
                success: true,
                match_index: 1,
                probe: 2,
            },
            now,
        );
        assert!(
            out.is_empty(),
            "stale ack must not re-send acked entries: {out:?}"
        );
    }

    fn lease_config() -> DirConfig {
        DirConfig {
            // 2x the heartbeat, safely below the 2.0 s election timeout.
            lease_duration: 1.0,
            ..DirConfig::default()
        }
    }

    #[test]
    fn lease_serves_reads_without_a_probe_round() {
        let mut bus = Bus::new_with(3, lease_config());
        bus.run_until(5.0);
        let leader = bus.leader().unwrap();
        let now = bus.now;
        bus.replica(leader).take_events();
        let seq = bus.replica(leader).read_index(now).unwrap();
        // ReadReady must already be queued — no further bus activity needed.
        let events = bus.replica(leader).take_events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, DirEvent::ReadReady { seq: s, lease: true } if *s == seq)),
            "lease read must confirm immediately: {events:?}"
        );
    }

    #[test]
    fn lease_expires_when_quorum_acks_stop() {
        let mut bus = Bus::new_with(3, lease_config());
        bus.run_until(5.0);
        let leader = bus.leader().unwrap();
        // Cut both followers off; the leader's lease runs out one
        // lease_duration after its last quorum-acked heartbeat.
        bus.down.push(1);
        bus.down.push(2);
        bus.run_until(bus.now + lease_config().lease_duration + 1.0);
        let now = bus.now;
        bus.replica(leader).take_events();
        let _ = bus.replica(leader).read_index(now).unwrap();
        let events = bus.replica(leader).take_events();
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, DirEvent::ReadReady { .. })),
            "expired lease must fall back to the probe path: {events:?}"
        );
    }

    #[test]
    fn follower_suppresses_votes_while_its_leader_is_alive() {
        let mut bus = Bus::new_with(3, lease_config());
        bus.run_until(5.0);
        assert_eq!(bus.leader(), Some(0));
        // Replica 2 solicits a vote with a higher term while replica 1
        // still hears leader 0: the vote must be refused and replica 1
        // must not adopt the rival's term.
        let now = bus.now;
        let term_before = bus.replica(1).term();
        let out = bus.replica(1).receive(
            2,
            DirMsg::RequestVote {
                term: term_before + 5,
                last_log_index: 1_000,
                last_log_term: term_before + 5,
            },
            now,
        );
        assert_eq!(
            out,
            vec![(
                2,
                DirMsg::Vote {
                    term: term_before,
                    granted: false,
                }
            )]
        );
        assert_eq!(bus.replica(1).term(), term_before);
        assert_eq!(bus.replica(1).role(), Role::Follower);
    }

    #[test]
    fn partitioned_leader_lease_expires_before_successor_commits() {
        let mut bus = Bus::new_with(3, lease_config());
        bus.run_until(5.0);
        assert_eq!(bus.leader(), Some(0));
        // Partition the old leader (it keeps running, its traffic is
        // dropped) and wait for the successor.
        bus.down.push(0);
        bus.run_until(bus.now + 4.0 * lease_config().election_timeout);
        let new_leader = bus
            .replicas
            .iter()
            .find(|r| r.role() == Role::Leader && r.id() != 0)
            .map(|r| r.id())
            .expect("a successor must be elected despite vote suppression");
        // By the time the successor can commit anything, the partitioned
        // ex-leader's lease must have lapsed — the no-overlap invariant
        // that makes lease reads linearizable.
        let now = bus.now;
        let seq = bus
            .replica(new_leader)
            .propose(DirCommand::SetLocation { object: 7, node: 1 }, now)
            .unwrap();
        bus.run_until(bus.now + 2.0);
        let events = bus.replica(new_leader).take_events();
        let commit_by = bus.now;
        assert!(events
            .iter()
            .any(|e| matches!(e, DirEvent::Committed { seq: s, .. } if *s == seq)));
        let old = bus.replica(0).status();
        assert!(
            old.lease_expiry < commit_by,
            "old lease {} must lapse before successor commit at {commit_by}",
            old.lease_expiry
        );
        // And the stale leader indeed refuses lease reads now.
        let now = bus.now;
        bus.replica(0).take_events();
        let _ = bus.replica(0).read_index(now);
        let events = bus.replica(0).take_events();
        assert!(!events
            .iter()
            .any(|e| matches!(e, DirEvent::ReadReady { .. })));
    }

    #[test]
    fn lease_disabled_stays_byte_identical_on_votes() {
        // Without a lease, a higher-term solicitation must win votes even
        // from followers that just heard a leader (today's behavior).
        let mut bus = Bus::new(3);
        bus.run_until(5.0);
        let now = bus.now;
        let term = bus.replica(1).term();
        let out = bus.replica(1).receive(
            2,
            DirMsg::RequestVote {
                term: term + 1,
                last_log_index: 1_000,
                last_log_term: term + 1,
            },
            now,
        );
        assert_eq!(
            out,
            vec![(
                2,
                DirMsg::Vote {
                    term: term + 1,
                    granted: true,
                }
            )]
        );
    }

    #[test]
    fn message_encoding_round_trips() {
        let msgs = [
            DirMsg::RequestVote {
                term: 3,
                last_log_index: 17,
                last_log_term: 2,
            },
            DirMsg::Vote {
                term: 3,
                granted: true,
            },
            DirMsg::Append {
                term: 4,
                prev_index: 9,
                prev_term: 3,
                entries: vec![
                    LogEntry {
                        term: 4,
                        cmd: DirCommand::SetLocation { object: 1, node: 2 },
                    },
                    LogEntry {
                        term: 4,
                        cmd: DirCommand::Noop,
                    },
                ],
                commit: 8,
                probe: 12,
            },
            DirMsg::AppendAck {
                term: 4,
                success: false,
                match_index: 6,
                probe: 12,
            },
            DirMsg::Snapshot {
                term: 5,
                last_index: 100,
                last_term: 4,
                data: DirState::new().to_bytes(),
            },
            DirMsg::SnapshotAck {
                term: 5,
                match_index: 100,
            },
        ];
        for m in &msgs {
            assert_eq!(*m, DirMsg::from_bytes(&m.to_bytes()).unwrap());
        }
    }
}
