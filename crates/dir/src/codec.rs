//! Minimal binary codec for directory messages and snapshots.
//!
//! Fixed-width little-endian encoding. The point is not compactness but an
//! honest, deterministic byte count: the host charges consensus traffic to
//! the modeled network by the length of these encodings.

/// Byte writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Finishes, returning the encoded buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Byte reader over an encoded buffer.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Decoding failure (truncated or malformed input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError;

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed directory encoding")
    }
}

impl std::error::Error for DecodeError {}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a single byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// True when the whole buffer has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.bytes(b"quorum");
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.bytes().unwrap(), b"quorum");
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_input_errors() {
        let mut w = Writer::new();
        w.u64(42);
        let buf = w.finish();
        let mut r = Reader::new(&buf[..5]);
        assert_eq!(r.u64(), Err(DecodeError));
    }
}
