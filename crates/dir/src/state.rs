//! The replicated state machine: two maps and a failed set.
//!
//! Every replica applies the same committed log prefix to an identical
//! [`DirState`]. Commands are deliberately idempotent — re-applying a
//! duplicate `MarkFailed` or an identical `SetRole` is a no-op — because
//! independent failure detectors may propose the same transition more than
//! once.

use crate::codec::{DecodeError, Reader, Writer};
use std::collections::{BTreeMap, BTreeSet};

/// A command appended to the replicated log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirCommand {
    /// Record (or move) an object's hosting node.
    SetLocation {
        /// Object id (the runtime's `ObjectId.0`).
        object: u64,
        /// Hosting physical node (the runtime's `NodeId.0`).
        node: u32,
    },
    /// Forget an object (freed or unregistered).
    RemoveLocation {
        /// Object id.
        object: u64,
    },
    /// Record a manager-role assignment for a virtual-architecture scope.
    SetRole {
        /// Scope key (an opaque id for a cluster/site/domain).
        scope: u64,
        /// The manager, if any live candidate exists.
        manager: Option<u32>,
        /// The standby that takes over on manager death.
        backup: Option<u32>,
    },
    /// Record that a physical node has been declared failed.
    MarkFailed {
        /// The failed physical node.
        node: u32,
    },
    /// No-op entry a fresh leader appends to commit prior-term entries.
    Noop,
}

const TAG_SET_LOCATION: u8 = 1;
const TAG_REMOVE_LOCATION: u8 = 2;
const TAG_SET_ROLE: u8 = 3;
const TAG_MARK_FAILED: u8 = 4;
const TAG_NOOP: u8 = 5;

fn opt_node(w: &mut Writer, v: Option<u32>) {
    match v {
        Some(n) => {
            w.u8(1);
            w.u32(n);
        }
        None => w.u8(0),
    }
}

fn read_opt_node(r: &mut Reader<'_>) -> Result<Option<u32>, DecodeError> {
    Ok(match r.u8()? {
        0 => None,
        _ => Some(r.u32()?),
    })
}

impl DirCommand {
    /// Encodes into `w`.
    pub fn encode(&self, w: &mut Writer) {
        match self {
            DirCommand::SetLocation { object, node } => {
                w.u8(TAG_SET_LOCATION);
                w.u64(*object);
                w.u32(*node);
            }
            DirCommand::RemoveLocation { object } => {
                w.u8(TAG_REMOVE_LOCATION);
                w.u64(*object);
            }
            DirCommand::SetRole {
                scope,
                manager,
                backup,
            } => {
                w.u8(TAG_SET_ROLE);
                w.u64(*scope);
                opt_node(w, *manager);
                opt_node(w, *backup);
            }
            DirCommand::MarkFailed { node } => {
                w.u8(TAG_MARK_FAILED);
                w.u32(*node);
            }
            DirCommand::Noop => w.u8(TAG_NOOP),
        }
    }

    /// Decodes one command from `r`.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.u8()? {
            TAG_SET_LOCATION => DirCommand::SetLocation {
                object: r.u64()?,
                node: r.u32()?,
            },
            TAG_REMOVE_LOCATION => DirCommand::RemoveLocation { object: r.u64()? },
            TAG_SET_ROLE => DirCommand::SetRole {
                scope: r.u64()?,
                manager: read_opt_node(r)?,
                backup: read_opt_node(r)?,
            },
            TAG_MARK_FAILED => DirCommand::MarkFailed { node: r.u32()? },
            TAG_NOOP => DirCommand::Noop,
            _ => return Err(DecodeError),
        })
    }

    /// Convenience: encodes to a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.finish()
    }

    /// Convenience: decodes from a whole buffer.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, DecodeError> {
        DirCommand::decode(&mut Reader::new(buf))
    }
}

/// A manager-role assignment for one scope.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct RoleEntry {
    /// The scope's manager.
    pub manager: Option<u32>,
    /// The scope's standby.
    pub backup: Option<u32>,
}

/// The directory's replicated state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DirState {
    locations: BTreeMap<u64, u32>,
    roles: BTreeMap<u64, RoleEntry>,
    failed: BTreeSet<u32>,
}

impl DirState {
    /// Empty state.
    pub fn new() -> Self {
        DirState::default()
    }

    /// Applies one committed command. Idempotent for every command kind.
    pub fn apply(&mut self, cmd: &DirCommand) {
        match cmd {
            DirCommand::SetLocation { object, node } => {
                self.locations.insert(*object, *node);
            }
            DirCommand::RemoveLocation { object } => {
                self.locations.remove(object);
            }
            DirCommand::SetRole {
                scope,
                manager,
                backup,
            } => {
                self.roles.insert(
                    *scope,
                    RoleEntry {
                        manager: *manager,
                        backup: *backup,
                    },
                );
            }
            DirCommand::MarkFailed { node } => {
                self.failed.insert(*node);
            }
            DirCommand::Noop => {}
        }
    }

    /// The hosting node recorded for `object`.
    pub fn location_of(&self, object: u64) -> Option<u32> {
        self.locations.get(&object).copied()
    }

    /// The role entry recorded for `scope`.
    pub fn role_of(&self, scope: u64) -> Option<RoleEntry> {
        self.roles.get(&scope).copied()
    }

    /// Whether `node` has been declared failed.
    pub fn is_failed(&self, node: u32) -> bool {
        self.failed.contains(&node)
    }

    /// Number of recorded object locations.
    pub fn location_count(&self) -> usize {
        self.locations.len()
    }

    /// Number of recorded role scopes.
    pub fn role_count(&self) -> usize {
        self.roles.len()
    }

    /// Iterates over `(object, node)` placements.
    pub fn locations(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.locations.iter().map(|(k, v)| (*k, *v))
    }

    /// Snapshot encoding (used for log compaction and lagging followers).
    pub fn encode(&self, w: &mut Writer) {
        w.u32(self.locations.len() as u32);
        for (object, node) in &self.locations {
            w.u64(*object);
            w.u32(*node);
        }
        w.u32(self.roles.len() as u32);
        for (scope, entry) in &self.roles {
            w.u64(*scope);
            opt_node(w, entry.manager);
            opt_node(w, entry.backup);
        }
        w.u32(self.failed.len() as u32);
        for node in &self.failed {
            w.u32(*node);
        }
    }

    /// Decodes a snapshot produced by [`DirState::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let mut s = DirState::new();
        for _ in 0..r.u32()? {
            let object = r.u64()?;
            let node = r.u32()?;
            s.locations.insert(object, node);
        }
        for _ in 0..r.u32()? {
            let scope = r.u64()?;
            let manager = read_opt_node(r)?;
            let backup = read_opt_node(r)?;
            s.roles.insert(scope, RoleEntry { manager, backup });
        }
        for _ in 0..r.u32()? {
            let node = r.u32()?;
            s.failed.insert(node);
        }
        Ok(s)
    }

    /// Convenience: encodes to a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.finish()
    }

    /// Convenience: decodes from a whole buffer.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, DecodeError> {
        DirState::decode(&mut Reader::new(buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_round_trip() {
        let cmds = [
            DirCommand::SetLocation {
                object: 42,
                node: 3,
            },
            DirCommand::RemoveLocation { object: 42 },
            DirCommand::SetRole {
                scope: 7,
                manager: Some(1),
                backup: None,
            },
            DirCommand::MarkFailed { node: 2 },
            DirCommand::Noop,
        ];
        for cmd in &cmds {
            let back = DirCommand::from_bytes(&cmd.to_bytes()).unwrap();
            assert_eq!(*cmd, back);
        }
    }

    #[test]
    fn apply_is_idempotent() {
        let mut s = DirState::new();
        let cmd = DirCommand::SetLocation { object: 1, node: 2 };
        s.apply(&cmd);
        let once = s.clone();
        s.apply(&cmd);
        assert_eq!(s, once);
        s.apply(&DirCommand::MarkFailed { node: 2 });
        let once = s.clone();
        s.apply(&DirCommand::MarkFailed { node: 2 });
        assert_eq!(s, once);
    }

    #[test]
    fn snapshot_round_trips() {
        let mut s = DirState::new();
        for i in 0..100u64 {
            s.apply(&DirCommand::SetLocation {
                object: i,
                node: (i % 7) as u32,
            });
        }
        s.apply(&DirCommand::SetRole {
            scope: 1,
            manager: Some(0),
            backup: Some(3),
        });
        s.apply(&DirCommand::MarkFailed { node: 6 });
        let back = DirState::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(s, back);
        assert_eq!(back.location_of(13), Some(6));
        assert!(back.is_failed(6));
    }
}
