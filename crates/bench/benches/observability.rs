//! Criterion micro-bench: observability overhead guard.
//!
//! The obs subsystem is compiled into every hot path (RMI issue, message
//! send, network delivery), so its cost must stay negligible. This bench
//! runs the E1 sinvoke ping path on two otherwise identical deployments —
//! one with observability enabled (the default), one with it disabled — so
//! `cargo bench --bench observability` shows both distributions side by
//! side. The budget is ≤5% overhead for the enabled configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};
use jsym_core::{CostModel, Deployment, JsObj, JsRegistration, Placement};
use jsym_net::NodeId;
use std::time::Duration;

fn ping_deployment(observability: bool) -> (Deployment, JsRegistration, JsObj) {
    let d = shell_with_idle_machines(2)
        .time_scale(1e-6)
        .cost_model(CostModel::free())
        .observability(observability)
        .boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap();
    (d, reg, obj)
}

fn bench_observability(c: &mut Criterion) {
    let (d_on, reg_on, obj_on) = ping_deployment(true);
    let (d_off, reg_off, obj_off) = ping_deployment(false);
    assert!(d_on.obs().is_enabled());
    assert!(!d_off.obs().is_enabled());

    let mut g = c.benchmark_group("observability");
    g.sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    g.bench_function("sinvoke_ping_instrumented", |b| {
        b.iter(|| obj_on.sinvoke("get", &[]).unwrap())
    });
    g.bench_function("sinvoke_ping_noop", |b| {
        b.iter(|| obj_off.sinvoke("get", &[]).unwrap())
    });
    g.finish();

    reg_on.unregister().unwrap();
    reg_off.unregister().unwrap();
    d_on.shutdown();
    d_off.shutdown();
}

criterion_group!(benches, bench_observability);
criterion_main!(benches);
