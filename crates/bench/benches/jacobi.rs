//! Criterion bench: a small distributed Jacobi run end-to-end (boot, ghost
//! exchange rounds, teardown) — the communication-bound counterpart to the
//! compute-bound matmul bench.

use criterion::{criterion_group, criterion_main, Criterion};
use jsym_cluster::catalog::{testbed_machines, LoadKind};
use jsym_cluster::jacobi::{register_jacobi_classes, run_jacobi};
use jsym_core::JsShell;
use std::time::Duration;

fn bench_jacobi(c: &mut Criterion) {
    let mut g = c.benchmark_group("jacobi");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(6));

    g.bench_function("grid32_2nodes_10iters", |b| {
        b.iter(|| {
            let d = JsShell::new()
                .time_scale(1e-4)
                // Monitoring off: at this scale the default failure timeout
                // (10 virtual s = 1 ms real) would misfire under load.
                .monitor_period(1e9)
                .failure_timeout(1e12)
                .add_machines(testbed_machines(2, LoadKind::Dedicated, 1))
                .boot();
            register_jacobi_classes(&d);
            let cluster = d.vda().request_cluster(2, None).unwrap();
            let report = run_jacobi(&d, &cluster, 32, 10, false, false).unwrap();
            d.shutdown();
            report.virt_seconds
        })
    });
    g.finish();
}

criterion_group!(benches, bench_jacobi);
criterion_main!(benches);
