//! Criterion micro-benches: migration round trips (E2 companion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};
use jsym_core::{CostModel, JsObj, MigrateTarget, Placement, Value};
use jsym_net::NodeId;
use std::time::Duration;

fn bench_migration(c: &mut Criterion) {
    let d = shell_with_idle_machines(2)
        .time_scale(1e-6)
        .cost_model(CostModel::free())
        .boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let cb = reg.codebase();
    cb.add("blob.jar", 1000);
    for m in d.machines() {
        cb.load_phys(m).unwrap();
    }

    let mut g = c.benchmark_group("migration");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    for &size in &[1usize << 10, 1 << 16, 1 << 20] {
        let obj = JsObj::create(
            &reg,
            "Blob",
            &[Value::I64(size as i64)],
            Placement::OnPhys(NodeId(0)),
            None,
        )
        .unwrap();
        g.bench_with_input(BenchmarkId::new("ping_pong", size), &size, |b, _| {
            let mut at = obj.get_location().unwrap();
            b.iter(|| {
                let dst = if at == NodeId(0) {
                    NodeId(1)
                } else {
                    NodeId(0)
                };
                obj.migrate(MigrateTarget::ToPhys(dst), None).unwrap();
                at = dst;
            })
        });
        obj.free().unwrap();
    }
    g.finish();
    reg.unregister().unwrap();
    d.shutdown();
}

criterion_group!(benches, bench_migration);
criterion_main!(benches);
