//! Criterion micro-benches: monitoring building blocks (E6).
//!
//! The NAS samples ~44 parameters per node per period, evaluates constraint
//! sets against them and averages snapshots up the manager hierarchy. These
//! are the per-round CPU costs of that machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use jsym_net::SimClock;
use jsym_sysmon::{
    aggregate, JsConstraints, LoadModel, LoadProfile, MachineSpec, SimMachine, SysParam,
};
use std::time::Duration;

fn bench_monitoring(c: &mut Criterion) {
    let clock = SimClock::default();
    let machines: Vec<SimMachine> = (0..13)
        .map(|i| {
            SimMachine::new(
                MachineSpec::generic(&format!("m{i}"), 30.0, 256.0),
                LoadModel::new(LoadProfile::Day, i as u64),
                clock.clone(),
            )
        })
        .collect();

    let mut g = c.benchmark_group("monitoring");
    g.sample_size(50)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    g.bench_function("snapshot_44_params", |b| b.iter(|| machines[0].snapshot()));

    let snaps: Vec<_> = machines.iter().map(|m| m.snapshot()).collect();
    g.bench_function("average_13_nodes", |b| {
        b.iter(|| aggregate::average(&snaps))
    });

    let mut constr = JsConstraints::new();
    constr.set(SysParam::NodeName, "!=", "milena");
    constr.set(SysParam::CpuSysPct, "<=", 10);
    constr.set(SysParam::IdlePct, ">=", 50);
    constr.set(SysParam::AvailMem, ">=", 50);
    constr.set(SysParam::SwapSpaceRatio, "<=", 0.3);
    g.bench_function("constraints_eval_5_terms", |b| {
        b.iter(|| constr.holds(&snaps[0]))
    });

    g.bench_function("violating_scan_13_nodes", |b| {
        b.iter(|| snaps.iter().filter(|s| !constr.holds(s)).count())
    });
    g.finish();
}

criterion_group!(benches, bench_monitoring);
criterion_main!(benches);
