//! Criterion micro-benches: the locality fast path (loopback RMI).
//!
//! Measures the real per-call overhead of a synchronous ping along four
//! locality tiers — same-node with the loopback fast path, same-node forced
//! through the sharded delivery plane, same-cluster (Lan100), and WAN — plus
//! a multi-sender fan-out that contends on the delivery plane. Modeled costs
//! are free and the time scale is tiny, so the numbers are pure runtime
//! machinery: the fast path's win is skipping the delay-queue heap and the
//! cross-thread hand-off.

use criterion::{criterion_group, criterion_main, Criterion};
use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};
use jsym_core::{CostModel, Deployment, JsObj, JsShell, MachineConfig, Placement};
use jsym_net::{LinkClass, NodeId};
use std::time::Duration;

fn single_node(fast_path: bool) -> Deployment {
    let d = shell_with_idle_machines(1)
        .time_scale(1e-6)
        .cost_model(CostModel::free())
        .loopback_fast_path(fast_path)
        .boot();
    register_test_classes(&d);
    d
}

fn bench_hotpath(c: &mut Criterion) {
    let mut g = c.benchmark_group("rmi_hotpath");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Same node, fast path on (the default): delivered inline on the
    // caller's thread.
    {
        let d = single_node(true);
        let reg = d.register_app().unwrap();
        let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(0)), None).unwrap();
        g.bench_function("loopback_sinvoke_fast", |b| {
            b.iter(|| obj.sinvoke("get", &[]).unwrap())
        });
        reg.unregister().unwrap();
        d.shutdown();
    }

    // Same node, fast path disabled: every send crosses the sharded
    // delivery plane (heap push + shard thread + hook).
    {
        let d = single_node(false);
        let reg = d.register_app().unwrap();
        let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(0)), None).unwrap();
        g.bench_function("loopback_sinvoke_slow", |b| {
            b.iter(|| obj.sinvoke("get", &[]).unwrap())
        });
        reg.unregister().unwrap();
        d.shutdown();
    }

    // Same cluster: two Lan100 machines, object on the remote one.
    {
        let d = shell_with_idle_machines(2)
            .time_scale(1e-6)
            .cost_model(CostModel::free())
            .boot();
        register_test_classes(&d);
        let reg = d.register_app().unwrap();
        let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap();
        g.bench_function("lan100_sinvoke", |b| {
            b.iter(|| obj.sinvoke("get", &[]).unwrap())
        });
        reg.unregister().unwrap();
        d.shutdown();
    }

    // WAN: the callee sits behind a wide-area link.
    {
        let far = {
            let mut m = MachineConfig::idle("far", 50.0);
            m.link = LinkClass::Wan;
            m
        };
        let d = JsShell::new()
            .add_machine(MachineConfig::idle("near", 50.0))
            .add_machine(far)
            .time_scale(1e-6)
            .monitor_period(1.0)
            .failure_timeout(1e9)
            .cost_model(CostModel::free())
            .boot();
        register_test_classes(&d);
        let reg = d.register_app().unwrap();
        let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap();
        g.bench_function("wan_sinvoke", |b| {
            b.iter(|| obj.sinvoke("get", &[]).unwrap())
        });
        reg.unregister().unwrap();
        d.shutdown();
    }

    // Multi-sender contention: eight asynchronous pings fanned out over
    // three remote nodes, all in flight at once, then drained. Exercises
    // the sharded delivery plane under concurrent senders.
    {
        let d = shell_with_idle_machines(4)
            .time_scale(1e-6)
            .cost_model(CostModel::free())
            .boot();
        register_test_classes(&d);
        let reg = d.register_app().unwrap();
        let objs: Vec<JsObj> = (1..4)
            .map(|i| {
                JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(i)), None).unwrap()
            })
            .collect();
        g.bench_function("ainvoke_fanout_3nodes", |b| {
            b.iter(|| {
                let handles: Vec<_> = (0..8)
                    .map(|i| objs[i % objs.len()].ainvoke("get", &[]).unwrap())
                    .collect();
                for h in handles {
                    h.get_result().unwrap();
                }
            })
        });
        reg.unregister().unwrap();
        d.shutdown();
    }

    g.finish();
}

criterion_group!(benches, bench_hotpath);
criterion_main!(benches);
