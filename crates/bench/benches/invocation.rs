//! Criterion micro-benches: invocation-mode real overhead (E1 companion).
//!
//! Measures the *harness* cost of each invocation mode on a live two-node
//! deployment at a tiny time scale (modeled costs ≈ 0, so the numbers are
//! the real per-operation overhead of the runtime machinery).

use criterion::{criterion_group, criterion_main, Criterion};
use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};
use jsym_core::{CostModel, JsObj, Placement, Value};
use jsym_net::NodeId;
use std::time::Duration;

fn bench_invocations(c: &mut Criterion) {
    let d = shell_with_idle_machines(2)
        .time_scale(1e-6)
        .cost_model(CostModel::free())
        .boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap();

    let mut g = c.benchmark_group("invocation");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    g.bench_function("sinvoke_null", |b| {
        b.iter(|| obj.sinvoke("get", &[]).unwrap())
    });
    g.bench_function("sinvoke_64k", |b| {
        let payload = Value::floats(vec![0.0; 16 * 1024]);
        b.iter(|| obj.sinvoke("echo", std::slice::from_ref(&payload)).unwrap())
    });
    g.bench_function("ainvoke_issue_and_wait", |b| {
        b.iter(|| {
            let h = obj.ainvoke("get", &[]).unwrap();
            h.get_result().unwrap()
        })
    });
    g.bench_function("oinvoke_issue", |b| {
        b.iter(|| obj.oinvoke("add", &[Value::I64(1)]).unwrap())
    });
    g.finish();

    reg.unregister().unwrap();
    d.shutdown();
}

criterion_group!(benches, bench_invocations);
criterion_main!(benches);
