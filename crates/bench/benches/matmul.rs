//! Criterion bench: one Figure 5 cell end-to-end (N=200, 4 dedicated
//! nodes), exercising the whole stack — boot, codebase, replication, task
//! farming, teardown. The statistical run backs the fig5 harness numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use jsym_cluster::catalog::LoadKind;
use jsym_cluster::fig5::run_cell;
use std::time::Duration;

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(8));

    g.bench_function("fig5_cell_n200_4nodes_dedicated", |b| {
        b.iter(|| run_cell(200, 4, LoadKind::Dedicated, 1e-3, 7, false))
    });
    g.bench_function("fig5_cell_n200_sequential", |b| {
        b.iter(|| run_cell(200, 1, LoadKind::Dedicated, 1e-3, 7, false))
    });
    g.finish();
}

criterion_group!(benches, bench_matmul);
criterion_main!(benches);
