//! # jsym-bench — the evaluation harness
//!
//! Regenerates the paper's evaluation (Figure 5 — the only measured result
//! in the paper) and a set of ablation experiments for the design choices
//! DESIGN.md calls out. Each experiment is a binary printing the series the
//! paper (or EXPERIMENTS.md) reports, plus machine-readable JSON:
//!
//! * `fig5` — execution time vs. nodes for several N, day and night;
//! * `ablate_invoke` — sinvoke/ainvoke/oinvoke latency and overlap (E1);
//! * `ablate_migration` — migration cost vs. object state size (E2);
//! * `ablate_codebase` — selective vs. full classloading (E3);
//! * `ablate_automigrate` — constraint-driven rebalancing (E4);
//! * `ablate_failover` — manager failover latency vs. heartbeat period (E5).
//!
//! Criterion micro-benches (`cargo bench`) cover the same mechanisms at
//! statistical depth on small deployments.

use serde::Serialize;
use std::io::Write;
use std::path::PathBuf;

/// Where experiment outputs are written (`bench_results/` at the workspace
/// root, or `$JSYM_BENCH_DIR`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("JSYM_BENCH_DIR").unwrap_or_else(|_| {
        // CARGO_MANIFEST_DIR = crates/bench → workspace root is two up.
        format!("{}/../../bench_results", env!("CARGO_MANIFEST_DIR"))
    });
    PathBuf::from(dir)
}

/// Serializes `rows` as JSON into `bench_results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, rows: &[T]) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    let json = serde_json::to_string_pretty(rows).expect("serialize rows");
    f.write_all(json.as_bytes())?;
    f.write_all(b"\n")?;
    Ok(path)
}

/// Writes a pre-rendered JSON string into `bench_results/<name>.json` — for
/// exports that serialize themselves, e.g. `jsym-obs` snapshots.
pub fn write_raw_json(name: &str, json: &str) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(json.as_bytes())?;
    f.write_all(b"\n")?;
    Ok(path)
}

/// Formats a virtual-seconds value for table output.
pub fn fmt_secs(s: f64) -> String {
    format!("{s:9.2}")
}

/// Writes rows as CSV into `bench_results/<name>.csv` (for plotting).
/// `header` names the columns; `row_fn` renders one record.
pub fn write_csv<T>(
    name: &str,
    header: &str,
    rows: &[T],
    mut row_fn: impl FnMut(&T) -> String,
) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{header}")?;
    for row in rows {
        writeln!(f, "{}", row_fn(row))?;
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_respects_env() {
        // Not setting the env var here (tests run in parallel); just check
        // the default points at bench_results.
        let d = results_dir();
        assert!(d.to_string_lossy().contains("bench_results"));
    }

    #[test]
    fn write_json_round_trips() {
        #[derive(serde::Serialize)]
        struct Row {
            x: u32,
        }
        std::env::set_var(
            "JSYM_BENCH_DIR",
            std::env::temp_dir().join("jsym-bench-test"),
        );
        let path = write_json("unit-test", &[Row { x: 1 }, Row { x: 2 }]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"x\": 2"));
        std::env::remove_var("JSYM_BENCH_DIR");
    }

    #[test]
    fn write_raw_json_passes_content_through() {
        std::env::set_var(
            "JSYM_BENCH_DIR",
            std::env::temp_dir().join("jsym-bench-test-raw"),
        );
        let path = write_raw_json("unit-test-raw", "{\"k\": 1}").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"k\": 1}\n");
        std::env::remove_var("JSYM_BENCH_DIR");
    }

    #[test]
    fn fmt_secs_is_fixed_width() {
        assert_eq!(fmt_secs(1.5), "     1.50");
        assert_eq!(fmt_secs(123.456), "   123.46");
    }
}
