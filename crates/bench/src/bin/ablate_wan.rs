//! E9 — wide-area ablation: the same master/slave multiplication on one
//! site vs. a domain of two WAN-joined sites.
//!
//! The paper positions JavaSymphony "ranging from small-scale cluster
//! computing to large scale wide-area meta-computing" but only evaluates a
//! LAN cluster. This experiment shows why: master/slave task farming with a
//! centralized master pays the WAN on every task round trip, so remote-site
//! machines contribute far less than their flops — quantifying how much
//! locality-aware decomposition (one master per site) would matter.

use jsym_bench::write_json;
use jsym_cluster::catalog::{testbed_machines, LoadKind};
use jsym_cluster::matmul::{register_matmul_classes, run_master_slave, MatmulConfig};
use jsym_core::JsShell;
use jsym_net::LinkClass;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    topology: String,
    nodes: usize,
    virt_seconds: f64,
    setup_seconds: f64,
}

fn run(nodes: usize, wan_split: Option<usize>) -> Row {
    let d = JsShell::new()
        .time_scale(2e-2)
        .add_machines(testbed_machines(nodes, LoadKind::Dedicated, 7))
        .boot();
    let label = match wan_split {
        None => "single-site".to_owned(),
        Some(k) => {
            // Machines [0, k) form site A; [k, nodes) sit behind a WAN.
            let m = d.machines();
            let topo = d.network().topology();
            let mut topo = topo.write();
            for &a in &m[..k] {
                for &b in &m[k..] {
                    topo.set_pair_class(a, b, LinkClass::Wan);
                }
            }
            format!("two-site ({k}+{})", nodes - k)
        }
    };
    register_matmul_classes(&d);
    let cluster = d.vda().request_cluster(nodes, None).unwrap();
    let report =
        run_master_slave(&d, &cluster, &MatmulConfig::new(600).without_verification()).unwrap();
    d.shutdown();
    Row {
        topology: label,
        nodes,
        virt_seconds: report.virt_seconds,
        setup_seconds: report.setup_seconds,
    }
}

fn main() {
    println!(
        "{:>16} {:>6} {:>10} {:>10}",
        "topology", "nodes", "mult[s]", "setup[s]"
    );
    let mut rows = Vec::new();
    for (nodes, split) in [(4usize, None), (8, None), (8, Some(4))] {
        let row = run(nodes, split);
        println!(
            "{:>16} {:>6} {:>10.2} {:>10.2}",
            row.topology, row.nodes, row.virt_seconds, row.setup_seconds
        );
        rows.push(row);
    }
    let single4 = rows[0].virt_seconds;
    let single8 = rows[1].virt_seconds;
    let split8 = rows[2].virt_seconds;
    println!(
        "\ngoing 4 → 8 machines helps {:.2}x on one site but only {:.2}x when the extra \
         four sit behind a WAN — centralized task farming does not survive the wide area, \
         which is exactly why the paper's model lets the programmer place per-site masters.",
        single4 / single8,
        single4 / split8
    );
    if let Ok(path) = write_json("ablate_wan", &rows) {
        eprintln!("wrote {}", path.display());
    }
}
