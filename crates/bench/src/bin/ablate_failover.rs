//! E5 — manager-failover latency vs heartbeat period (paper §5.1).
//!
//! A cluster manager is killed; its backup must detect the silence (no
//! heartbeats past the failure timeout) and take over. Detection latency
//! should track `failure_timeout` (here 3× the monitoring period), the
//! knob the JS-Shell exposes.

use jsym_bench::write_json;
use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    monitor_period: f64,
    failure_timeout: f64,
    detection_virt_seconds: f64,
    backup_took_over: bool,
}

fn run(period: f64) -> Row {
    let timeout = period * 3.0;
    let d = shell_with_idle_machines(4)
        .time_scale(2e-3)
        .monitor_period(period)
        .failure_timeout(timeout)
        .boot();
    register_test_classes(&d);
    let cluster = d.vda().request_cluster(4, None).unwrap();
    let manager = cluster.manager().unwrap();
    let backup = cluster.backup_manager().unwrap();
    let clock = d.clock().clone();

    // Let heartbeats establish (a few periods).
    clock.sleep(period * 4.0);

    let killed_at = clock.now();
    d.kill_node(manager.phys());
    // Wait for the registry to mark the failure.
    let deadline = killed_at + timeout * 20.0 + 200.0;
    while !d.vda().is_failed(manager.phys()) && clock.now() < deadline {
        clock.sleep(period / 4.0);
    }
    let detected_at = clock.now();
    let row = Row {
        monitor_period: period,
        failure_timeout: timeout,
        detection_virt_seconds: detected_at - killed_at,
        backup_took_over: cluster.manager() == Some(backup),
    };
    d.shutdown();
    row
}

fn main() {
    println!(
        "{:>10} {:>10} {:>14} {:>10}",
        "period[s]", "timeout[s]", "detection[s]", "takeover"
    );
    let mut rows = Vec::new();
    for period in [2.0, 5.0, 10.0, 20.0] {
        let row = run(period);
        println!(
            "{:>10.1} {:>10.1} {:>14.2} {:>10}",
            row.monitor_period,
            row.failure_timeout,
            row.detection_virt_seconds,
            row.backup_took_over
        );
        rows.push(row);
    }
    if let Ok(path) = write_json("ablate_failover", &rows) {
        eprintln!("wrote {}", path.display());
    }
}
