//! E5 — manager-failover latency vs heartbeat period (paper §5.1).
//!
//! A cluster manager is killed; its backup must detect the silence (no
//! heartbeats past the failure timeout) and take over. Detection latency
//! should track `failure_timeout` (here 3× the monitoring period), the
//! knob the JS-Shell exposes.
//!
//! Each run also drives a probe workload through the failover window —
//! serialized `add_to` increments resolved via `resolve_location` — and
//! panics on any misrouted or doubly-delivered RMI, so a wiring regression
//! fails the process rather than skewing a column.
//!
//! Ablation axis (DESIGN.md §10): the same sweep with the replicated
//! directory serving placements. Flags:
//!
//! * `--replicas <n>` — run only with an n-replica directory (0 = legacy
//!   origin-authority resolution). Default: both 0 and 3.
//! * `--quick` — two periods instead of four (CI smoke mode).
//!
//! When the killed manager hosted a directory replica, the row records how
//! long the surviving replicas took to present a leader again.

use jsym_bench::write_json;
use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};
use jsym_core::{JsObj, Placement, Value};
use jsym_net::NodeId;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    monitor_period: f64,
    failure_timeout: f64,
    directory_replicas: u32,
    detection_virt_seconds: f64,
    backup_took_over: bool,
    probes: u64,
    misrouted_rmis: u64,
    dir_reelection_virt_seconds: Option<f64>,
}

fn run(period: f64, replicas: u32) -> Row {
    let timeout = period * 3.0;
    let d = shell_with_idle_machines(4)
        .time_scale(2e-3)
        .monitor_period(period)
        .failure_timeout(timeout)
        .directory_replicas(replicas)
        .boot();
    register_test_classes(&d);
    let cluster = d.vda().request_cluster(4, None).unwrap();
    let manager = cluster.manager().unwrap();
    let backup = cluster.backup_manager().unwrap();
    let clock = d.clock().clone();

    // Probe workload on two surviving machines: the prober reaches the
    // counter through its handle, the resolution path under ablation.
    let survivors: Vec<NodeId> = d
        .machines()
        .into_iter()
        .filter(|&n| n != manager.phys())
        .collect();
    let reg = d.register_app_on(survivors[0]).unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(survivors[1]), None).unwrap();
    let prober =
        JsObj::create(&reg, "Counter", &[], Placement::OnPhys(survivors[0]), None).unwrap();

    // Let heartbeats establish (a few periods).
    clock.sleep(period * 4.0);

    let killed_at = clock.now();
    d.kill_node(manager.phys());
    // Wait for the registry to mark the failure, probing throughout.
    let deadline = killed_at + timeout * 20.0 + 200.0;
    let mut expected = 0i64;
    let mut probes = 0u64;
    while !d.vda().is_failed(manager.phys()) && clock.now() < deadline {
        let got = prober
            .sinvoke("add_to", &[Value::Handle(obj.handle()), Value::I64(1)])
            .expect("probe RMI failed during failover");
        expected += 1;
        assert_eq!(
            got,
            Value::I64(expected),
            "misrouted or double-delivered probe"
        );
        probes += 1;
        clock.sleep(period / 4.0);
    }
    let detected_at = clock.now();

    // If the dead manager hosted a directory replica, time how long the
    // survivors take to present a single leader again.
    let dir_reelection_virt_seconds = if replicas > 0 && manager.phys().0 < replicas {
        loop {
            let st = d.directory_status();
            if !st.is_empty() && st.iter().filter(|s| s.role == "leader").count() == 1 {
                break Some(clock.now() - killed_at);
            }
            if clock.now() > deadline {
                break None; // recorded as null, visible in the artifact
            }
            clock.sleep(period / 4.0);
        }
    } else {
        None
    };

    let row = Row {
        monitor_period: period,
        failure_timeout: timeout,
        directory_replicas: replicas,
        detection_virt_seconds: detected_at - killed_at,
        backup_took_over: cluster.manager() == Some(backup),
        probes,
        misrouted_rmis: 0, // a misroute panics above; surviving means zero
        dir_reelection_virt_seconds,
    };
    obj.free().unwrap();
    prober.free().unwrap();
    reg.unregister().unwrap();
    d.shutdown();
    row
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let replicas: Option<u32> = args
        .windows(2)
        .find(|w| w[0] == "--replicas")
        .map(|w| w[1].parse().expect("--replicas takes a number"));
    let periods: &[f64] = if quick {
        &[2.0, 5.0]
    } else {
        &[2.0, 5.0, 10.0, 20.0]
    };
    let modes: Vec<u32> = match replicas {
        Some(n) => vec![n],
        None => vec![0, 3],
    };

    println!(
        "{:>10} {:>10} {:>8} {:>14} {:>10} {:>7} {:>9} {:>14}",
        "period[s]",
        "timeout[s]",
        "dir",
        "detection[s]",
        "takeover",
        "probes",
        "misroutes",
        "reelection[s]"
    );
    let mut rows = Vec::new();
    for &r in &modes {
        for &period in periods {
            let row = run(period, r);
            println!(
                "{:>10.1} {:>10.1} {:>8} {:>14.2} {:>10} {:>7} {:>9} {:>14}",
                row.monitor_period,
                row.failure_timeout,
                if row.directory_replicas == 0 {
                    "legacy".to_owned()
                } else {
                    format!("{}rep", row.directory_replicas)
                },
                row.detection_virt_seconds,
                row.backup_took_over,
                row.probes,
                row.misrouted_rmis,
                row.dir_reelection_virt_seconds
                    .map(|s| format!("{s:.2}"))
                    .unwrap_or_else(|| "-".to_owned()),
            );
            rows.push(row);
        }
    }
    if let Ok(path) = write_json("ablate_failover", &rows) {
        eprintln!("wrote {}", path.display());
    }
}
