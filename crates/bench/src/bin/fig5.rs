//! Figure 5 reproduction: "JavaSymphony matrix multiplication performance
//! for different problem sizes and system loads."
//!
//! Prints one line per measured cell (the paper plots execution time against
//! the number of nodes for several N, one solid line per N during the day
//! and one dashed line per N at night) and writes `bench_results/fig5.json`.
//!
//! Usage:
//!   cargo run --release -p jsym-bench --bin fig5            # full sweep
//!   cargo run --release -p jsym-bench --bin fig5 -- --quick # smoke sweep

use jsym_bench::{write_json, write_raw_json};
use jsym_cluster::fig5::{run_fig5_instrumented, Fig5Config, Fig5Kernel, Fig5Row};

fn print_header() {
    println!(
        "{:>5} {:>6} {:>6} {:>12} {:>10} {:>8} {:>11} {:>9}",
        "N", "nodes", "load", "kernel", "time[s]", "speedup", "efficiency", "messages"
    );
}

fn print_row(r: &Fig5Row) {
    println!(
        "{:>5} {:>6} {:>6} {:>12} {:>10.2} {:>8.2} {:>11.2} {:>9}",
        r.n, r.nodes, r.load, r.kernel, r.seconds, r.speedup, r.efficiency, r.messages
    );
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    // Default to the DistCol collective kernel with RMI batching (the
    // committed curves); `--kernel master_slave` reproduces the historical
    // unbatched task farm.
    let mut cfg = if quick {
        let mut cfg = Fig5Config::smoke();
        cfg.kernel = Fig5Kernel::Collective;
        cfg.batching = true;
        cfg
    } else {
        Fig5Config::paper_collective()
    };
    if let Some(kernel) = parse_flag::<String>(&args, "--kernel") {
        match kernel.as_str() {
            "master_slave" => {
                cfg.kernel = Fig5Kernel::MasterSlave;
                cfg.batching = false;
                cfg.sizes.retain(|&n| n < 2000); // impractically slow there
            }
            "collective" => {
                cfg.kernel = Fig5Kernel::Collective;
                cfg.batching = true;
            }
            other => {
                eprintln!("unknown --kernel {other} (use master_slave|collective)");
                std::process::exit(2);
            }
        }
    }
    // Researcher knobs: --seed N, --scale S (real s per virtual s),
    // --size N (restrict to one problem size).
    if let Some(seed) = parse_flag::<u64>(&args, "--seed") {
        cfg.seed = seed;
    }
    if let Some(scale) = parse_flag::<f64>(&args, "--scale") {
        cfg.time_scale = scale;
    }
    if let Some(size) = parse_flag::<usize>(&args, "--size") {
        cfg.sizes = vec![size];
    }
    // --executor N: run every cell on an N-worker work-stealing executor
    // instead of the thread-per-node runtime (0 = thread-per-node).
    if let Some(threads) = parse_flag::<usize>(&args, "--executor") {
        cfg.executor = threads;
    }
    eprintln!(
        "Figure 5 sweep: N ∈ {:?}, nodes ∈ {:?}, loads {:?} (base time scale {}, per-size ×[0.5, 8] for fidelity; ~minutes of wall time)",
        cfg.sizes,
        cfg.node_counts,
        cfg.loads.iter().map(|l| l.label()).collect::<Vec<_>>(),
        cfg.time_scale,
    );
    print_header();
    // Each cell also exports its per-node/per-RMI metrics (counters and
    // histograms; spans stripped) as bench_results/fig5_obs_<cell>.json.
    let mut obs_errors = 0usize;
    let rows = run_fig5_instrumented(&cfg, |row, obs_json| {
        print_row(row);
        let name = format!("fig5_obs_{}_{}_{}", row.load, row.n, row.nodes);
        if write_raw_json(&name, obs_json).is_err() {
            obs_errors += 1;
        }
    });
    if obs_errors > 0 {
        eprintln!("could not write {obs_errors} per-cell metrics artifact(s)");
    } else {
        eprintln!(
            "wrote {} per-cell metrics artifacts (fig5_obs_*.json)",
            rows.len()
        );
    }

    // The qualitative claims of paper §6, checked on the fly.
    summarize(&rows);
    match write_json("fig5", &rows) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    match jsym_bench::write_csv(
        "fig5",
        "n,nodes,load,kernel,seconds,speedup,efficiency,messages",
        &rows,
        |r| {
            format!(
                "{},{},{},{},{:.4},{:.4},{:.4},{}",
                r.n, r.nodes, r.load, r.kernel, r.seconds, r.speedup, r.efficiency, r.messages
            )
        },
    ) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write csv: {e}"),
    }
}

fn cell(rows: &[Fig5Row], n: usize, nodes: usize, load: &str) -> Option<f64> {
    rows.iter()
        .find(|r| r.n == n && r.nodes == nodes && r.load == load)
        .map(|r| r.seconds)
}

fn summarize(rows: &[Fig5Row]) {
    println!("\n--- shape checks against paper §6 ---");
    let sizes: Vec<usize> = {
        let mut v: Vec<usize> = rows.iter().map(|r| r.n).collect();
        v.sort();
        v.dedup();
        v
    };
    for &n in &sizes {
        for load in ["night", "day"] {
            let series: Vec<(usize, f64)> = rows
                .iter()
                .filter(|r| r.n == n && r.load == load)
                .map(|r| (r.nodes, r.seconds))
                .collect();
            if series.len() < 3 {
                continue;
            }
            let best = series
                .iter()
                .cloned()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            let last = *series.last().unwrap();
            println!(
                "N={n} {load}: best {:.2}s at {} nodes; {} nodes takes {:.2}s ({})",
                best.1,
                best.0,
                last.0,
                last.1,
                if last.1 > best.1 {
                    "worse — matches the paper's >10-node degradation"
                } else {
                    "NOT worse"
                }
            );
        }
        // Night faster than day at equal configuration.
        if let (Some(night), Some(day)) = (cell(rows, n, 6, "night"), cell(rows, n, 6, "day")) {
            println!(
                "N={n}: 6-node night {night:.2}s vs day {day:.2}s ({})",
                if night < day {
                    "night wins — matches"
                } else {
                    "MISMATCH"
                }
            );
        }
    }
}
