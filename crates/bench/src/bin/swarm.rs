//! E12 — the `swarm` macro-benchmark: sustained mixed traffic at scale on
//! the work-stealing executor.
//!
//! The thread-per-node runtime needs 5+ OS threads per simulated node, which
//! caps a deployment near a few hundred nodes. `JsShell::executor(n)` runs
//! every node on `n` shared workers, so one process can host 10 000 nodes
//! and 1 000 000 objects. This benchmark boots exactly that, then drives a
//! sustained mix of the paper's three invocation modes plus object churn,
//! migration and injected network partitions, and reports throughput and
//! modeled RMI latency percentiles from the observability registry.
//!
//! Phases:
//!   1. boot `--nodes` machines in executor mode;
//!   2. create `--objects` Counters round-robin over all nodes (parallel
//!      driver threads, one slice each);
//!   3. `--ops` mixed operations per driver (one-sided / sync / async
//!      invocations, reads, migrations, free+create churn) while a fault
//!      injector partitions the app's home node away from victim nodes and
//!      heals it again — calls into the partitioned span fail fast and are
//!      counted, not retried;
//!   4. quiesce, then export counters, executor stats and interpolated
//!      p50/p90/p99 of the virtual `rmi.caller_seconds` histograms.
//!
//! Usage:
//!   cargo run --release -p jsym-bench --bin swarm             # 10k nodes / 1M objects
//!   cargo run --release -p jsym-bench --bin swarm -- --quick  # 64 nodes / 2k objects
//!   (knobs: --nodes N --objects N --ops N --drivers N --executor N
//!           --scale S --seed N)
//!
//! `--legacy-contention` reverts every PR 10 hot-path layout (single-stripe
//! delivery-plane state, endpoint cache off, global-injector executor) for a
//! contention baseline. `--compare-contention` runs the storm twice — legacy
//! layout first, then the striped default — writes both rows into
//! `swarm.json` and prints the measured speedup.

use jsym_bench::write_json;
use jsym_core::obs::HistogramSnapshot;
use jsym_core::testkit::register_test_classes;
use jsym_core::{
    CostModel, Deployment, JsObj, JsRegistration, JsShell, MachineConfig, MigrateTarget, Placement,
    Value,
};
use jsym_net::NodeId;
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// xorshift64* — deterministic per-driver op stream without external crates.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[derive(Clone, Copy, Debug)]
struct Config {
    nodes: usize,
    objects: usize,
    /// Mixed operations per driver thread.
    ops: usize,
    drivers: usize,
    executor: usize,
    time_scale: f64,
    seed: u64,
    quick: bool,
    /// Revert the PR 10 hot-path layouts (stripes, endpoint cache, striped
    /// injector) to their legacy single-lock forms.
    legacy_contention: bool,
}

impl Config {
    fn full() -> Config {
        Config {
            nodes: 10_000,
            objects: 1_000_000,
            ops: 50_000,
            drivers: 8,
            executor: 4,
            time_scale: 1e-6,
            seed: 2000,
            quick: false,
            legacy_contention: false,
        }
    }

    fn quick() -> Config {
        Config {
            nodes: 64,
            objects: 2_000,
            ops: 2_000,
            drivers: 2,
            executor: 2,
            time_scale: 1e-5,
            seed: 2000,
            quick: true,
            legacy_contention: false,
        }
    }
}

/// Per-driver tallies, summed into the report.
#[derive(Default)]
struct Tally {
    ok: u64,
    failed: u64,
    migrations: u64,
    churn_creates: u64,
    churn_frees: u64,
}

#[derive(Serialize)]
struct LatencyReport {
    count: u64,
    mean_s: f64,
    p50_s: f64,
    p90_s: f64,
    p99_s: f64,
    max_s: f64,
}

#[derive(Serialize)]
struct Report {
    /// OS / arch / CPU count the row was measured on — rows are only
    /// comparable within one machine string.
    machine: String,
    /// True when the run reverted the PR 10 hot paths to their legacy
    /// single-lock layouts (`--legacy-contention`).
    legacy_contention: bool,
    nodes: usize,
    objects: usize,
    drivers: usize,
    ops_per_driver: usize,
    executor_threads: usize,
    time_scale: f64,
    seed: u64,
    quick: bool,
    boot_wall_s: f64,
    create_wall_s: f64,
    mix_wall_s: f64,
    total_wall_s: f64,
    virt_seconds: f64,
    creates_per_s: f64,
    /// Mixed-phase operations per real second (all drivers combined).
    ops_per_s: f64,
    ops_ok: u64,
    ops_failed: u64,
    migrations: u64,
    churn_creates: u64,
    churn_frees: u64,
    partitions_injected: u64,
    /// Virtual caller-observed RMI latency (merged over nodes and modes).
    rmi_latency: LatencyReport,
    /// Per-RMI-mode call counts from the same histograms.
    rmi_calls_by_mode: Vec<(String, u64)>,
    msgs_sent: u64,
    msgs_delivered: u64,
    msgs_dropped: u64,
    msgs_rejected: u64,
    bytes_sent: u64,
    exec_steals: u64,
    exec_parks: u64,
    exec_spare_spawns: u64,
    exec_blocked_at_end: usize,
    /// Spawns that woke the parked owner of the stripe they pushed to.
    exec_wakes_targeted: u64,
    /// Wakes escalated past the stripe owner (owner busy, or backlog).
    exec_wakes_escalated: u64,
    /// Effective delivery-plane stripe count.
    net_state_shards: usize,
    /// Contended stripe acquisitions: pair state / batching / gap windows.
    net_pair_contended: u64,
    net_pending_contended: u64,
    net_gaps_contended: u64,
    /// Per-thread endpoint-cache hits (sends with zero directory reads).
    net_ep_cache_hits: u64,
    net_ep_cache_misses: u64,
}

fn machine_note() -> String {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    format!(
        "{}-{} {cpus} cpus",
        std::env::consts::OS,
        std::env::consts::ARCH
    )
}

/// Linear-interpolated quantile over the histogram's buckets, clamped to the
/// observed [min, max].
fn percentile(h: &HistogramSnapshot, q: f64) -> f64 {
    if h.count == 0 {
        return 0.0;
    }
    let target = q * h.count as f64;
    let mut cum = 0u64;
    for (i, &b) in h.buckets.iter().enumerate() {
        let below = cum as f64;
        cum += b;
        if b > 0 && cum as f64 >= target {
            let lo = if i == 0 {
                h.min
            } else {
                h.bounds[i - 1].max(h.min)
            };
            let hi = if i < h.bounds.len() {
                h.bounds[i].min(h.max)
            } else {
                h.max
            };
            let frac = ((target - below) / b as f64).clamp(0.0, 1.0);
            return lo + (hi - lo).max(0.0) * frac;
        }
    }
    h.max
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// One driver's slice of the mixed-op phase.
fn drive(
    cfg: &Config,
    reg: &JsRegistration,
    objs: &mut [JsObj],
    driver: usize,
    finished: &AtomicUsize,
) -> Tally {
    let mut rng = Rng::new(cfg.seed ^ ((driver as u64 + 1) << 32));
    let mut t = Tally::default();
    let mut inflight: Vec<jsym_core::ResultHandle> = Vec::new();
    let record = |r: Result<(), jsym_core::JsError>, t: &mut Tally| match r {
        Ok(()) => t.ok += 1,
        Err(_) => t.failed += 1,
    };
    for _ in 0..cfg.ops {
        let idx = (rng.next() as usize) % objs.len();
        let obj = &objs[idx];
        match rng.next() % 100 {
            0..=54 => record(obj.oinvoke("add", &[Value::I64(1)]).map(|_| ()), &mut t),
            55..=69 => record(obj.sinvoke("add", &[Value::I64(1)]).map(|_| ()), &mut t),
            70..=79 => {
                match obj.ainvoke("add", &[Value::I64(1)]) {
                    Ok(h) => inflight.push(h),
                    Err(_) => t.failed += 1,
                }
                if inflight.len() >= 32 {
                    for h in inflight.drain(..) {
                        record(h.get_result().map(|_| ()), &mut t);
                    }
                }
            }
            80..=89 => record(obj.sinvoke("get", &[]).map(|_| ()), &mut t),
            90..=94 => {
                let dst = NodeId((rng.next() as usize % cfg.nodes) as u32);
                let r = obj.migrate(MigrateTarget::ToPhys(dst), None);
                if r.is_ok() {
                    t.migrations += 1;
                }
                record(r.map(|_| ()), &mut t);
            }
            _ => {
                // Churn: retire this object, create a replacement elsewhere.
                // Async results against the retiring object must land first.
                for h in inflight.drain(..) {
                    record(h.get_result().map(|_| ()), &mut t);
                }
                if objs[idx].free().is_ok() {
                    t.churn_frees += 1;
                }
                let dst = NodeId((rng.next() as usize % cfg.nodes) as u32);
                match JsObj::create(reg, "Counter", &[], Placement::OnPhys(dst), None) {
                    Ok(o) => {
                        objs[idx] = o;
                        t.churn_creates += 1;
                        t.ok += 1;
                    }
                    Err(_) => t.failed += 1,
                }
            }
        }
    }
    for h in inflight.drain(..) {
        record(h.get_result().map(|_| ()), &mut t);
    }
    finished.fetch_add(1, Ordering::Relaxed);
    t
}

/// Partitions the app's home node away from a rotating victim while drivers
/// run, healing each cut after a short window. Returns injections done.
fn inject_partitions(d: &Deployment, cfg: &Config, home: NodeId, finished: &AtomicUsize) -> u64 {
    let net = d.network();
    let mut rng = Rng::new(cfg.seed ^ 0xFA17);
    let window = std::time::Duration::from_millis(if cfg.quick { 20 } else { 100 });
    let mut injected = 0u64;
    while finished.load(Ordering::Relaxed) < cfg.drivers {
        // Never cut home from itself; any other node hosts driver objects.
        let victim = NodeId((1 + rng.next() as usize % (cfg.nodes - 1)) as u32);
        net.partition(home, victim);
        injected += 1;
        std::thread::sleep(window);
        net.heal(home, victim);
        std::thread::sleep(window);
    }
    injected
}

/// Boots, runs the three phases under `cfg` and returns the report row.
fn run_once(cfg: &Config) -> Report {
    eprintln!(
        "swarm: {} nodes / {} objects on a {}-worker executor, {} drivers x {} ops{}",
        cfg.nodes,
        cfg.objects,
        cfg.executor,
        cfg.drivers,
        cfg.ops,
        if cfg.legacy_contention {
            " [legacy contention layout]"
        } else {
            ""
        }
    );

    let t0 = Instant::now();
    // NA monitoring and failure detection are quiesced (far-future periods):
    // at this scale the counters should reflect application traffic, and the
    // partitions injected below must not trigger failure handling.
    let mut shell = JsShell::new()
        .add_machines((0..cfg.nodes).map(|i| MachineConfig::idle(&format!("sw{i}"), 50.0)))
        .time_scale(cfg.time_scale)
        .monitor_period(1e9)
        .failure_timeout(1e9)
        .cost_model(CostModel::free())
        .executor(cfg.executor);
    if cfg.legacy_contention {
        shell = shell
            .net_state_shards(1)
            .net_endpoint_cache(false)
            .executor_legacy_injector(true);
    }
    let d = shell.boot();
    register_test_classes(&d);
    let reg = d.register_app().expect("register app");
    let home = d.machines()[0];
    let boot_wall_s = t0.elapsed().as_secs_f64();
    eprintln!("booted {} nodes in {boot_wall_s:.2}s", cfg.nodes);

    // Phase 2: parallel creation, one contiguous object slice per driver,
    // placement round-robin over every node.
    let t1 = Instant::now();
    let per = cfg.objects / cfg.drivers;
    let mut slices: Vec<Vec<JsObj>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.drivers)
            .map(|t| {
                let reg = &reg;
                let nodes = cfg.nodes;
                let count = if t == cfg.drivers - 1 {
                    cfg.objects - per * (cfg.drivers - 1)
                } else {
                    per
                };
                s.spawn(move || {
                    (0..count)
                        .map(|i| {
                            let dst = NodeId(((t * per + i) % nodes) as u32);
                            JsObj::create(reg, "Counter", &[], Placement::OnPhys(dst), None)
                                .expect("create object")
                        })
                        .collect::<Vec<JsObj>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let create_wall_s = t1.elapsed().as_secs_f64();
    eprintln!(
        "created {} objects in {create_wall_s:.2}s ({:.0} creates/s)",
        cfg.objects,
        cfg.objects as f64 / create_wall_s.max(1e-9)
    );

    // Phase 3: the mixed-op storm with partition injection on the side.
    let t2 = Instant::now();
    let finished = AtomicUsize::new(0);
    let (tallies, partitions_injected): (Vec<Tally>, u64) = std::thread::scope(|s| {
        let handles: Vec<_> = slices
            .iter_mut()
            .enumerate()
            .map(|(t, objs)| {
                let reg = &reg;
                let finished = &finished;
                let cfg = &cfg;
                s.spawn(move || drive(cfg, reg, objs, t, finished))
            })
            .collect();
        let injected = inject_partitions(&d, cfg, home, &finished);
        (
            handles.into_iter().map(|h| h.join().unwrap()).collect(),
            injected,
        )
    });
    let mix_wall_s = t2.elapsed().as_secs_f64();
    let ops_total = (cfg.ops * cfg.drivers) as f64;
    eprintln!(
        "mixed phase: {ops_total} ops in {mix_wall_s:.2}s ({:.0} ops/s)",
        ops_total / mix_wall_s.max(1e-9)
    );

    // Phase 4: let trailing one-sided traffic drain, then read everything.
    d.clock().sleep(1.0);
    std::thread::sleep(std::time::Duration::from_millis(50));
    let snap = d.obs().snapshot();
    let mut merged = HistogramSnapshot::empty();
    let mut by_mode: std::collections::BTreeMap<String, u64> = Default::default();
    for (k, h) in &snap.metrics.histograms {
        if k.name == "rmi.caller_seconds" {
            let _ = merged.merge(h);
            *by_mode.entry(k.component.to_string()).or_insert(0) += h.count;
        }
    }
    let net = d.net_stats();
    let hot = d.net_hot_stats();
    let exec = d.exec_stats().expect("executor mode");
    let virt_seconds = d.clock().now();

    let mut t = Tally::default();
    for x in &tallies {
        t.ok += x.ok;
        t.failed += x.failed;
        t.migrations += x.migrations;
        t.churn_creates += x.churn_creates;
        t.churn_frees += x.churn_frees;
    }
    let report = Report {
        machine: machine_note(),
        legacy_contention: cfg.legacy_contention,
        nodes: cfg.nodes,
        objects: cfg.objects,
        drivers: cfg.drivers,
        ops_per_driver: cfg.ops,
        executor_threads: cfg.executor,
        time_scale: cfg.time_scale,
        seed: cfg.seed,
        quick: cfg.quick,
        boot_wall_s,
        create_wall_s,
        mix_wall_s,
        total_wall_s: t0.elapsed().as_secs_f64(),
        virt_seconds,
        creates_per_s: cfg.objects as f64 / create_wall_s.max(1e-9),
        ops_per_s: ops_total / mix_wall_s.max(1e-9),
        ops_ok: t.ok,
        ops_failed: t.failed,
        migrations: t.migrations,
        churn_creates: t.churn_creates,
        churn_frees: t.churn_frees,
        partitions_injected,
        rmi_latency: LatencyReport {
            count: merged.count,
            mean_s: merged.mean().unwrap_or(0.0),
            p50_s: percentile(&merged, 0.50),
            p90_s: percentile(&merged, 0.90),
            p99_s: percentile(&merged, 0.99),
            max_s: if merged.count > 0 { merged.max } else { 0.0 },
        },
        rmi_calls_by_mode: by_mode.into_iter().collect(),
        msgs_sent: net.msgs_sent,
        msgs_delivered: net.msgs_delivered,
        msgs_dropped: net.msgs_dropped,
        msgs_rejected: net.msgs_rejected,
        bytes_sent: net.bytes_sent,
        exec_steals: exec.steals,
        exec_parks: exec.parks,
        exec_spare_spawns: exec.spare_spawns,
        exec_blocked_at_end: exec.blocked,
        exec_wakes_targeted: exec.wakes_targeted,
        exec_wakes_escalated: exec.wakes_escalated,
        net_state_shards: hot.state_shards,
        net_pair_contended: hot.pair_contended,
        net_pending_contended: hot.pending_contended,
        net_gaps_contended: hot.gaps_contended,
        net_ep_cache_hits: hot.ep_cache_hits,
        net_ep_cache_misses: hot.ep_cache_misses,
    };
    println!(
        "ops ok {} / failed {} (partitions {}), migrations {}, churn +{}/-{}",
        report.ops_ok,
        report.ops_failed,
        report.partitions_injected,
        report.migrations,
        report.churn_creates,
        report.churn_frees
    );
    println!(
        "rmi latency (virtual s): n={} mean={:.2e} p50={:.2e} p90={:.2e} p99={:.2e} max={:.2e}",
        report.rmi_latency.count,
        report.rmi_latency.mean_s,
        report.rmi_latency.p50_s,
        report.rmi_latency.p90_s,
        report.rmi_latency.p99_s,
        report.rmi_latency.max_s
    );
    println!(
        "net: {} sent / {} delivered / {} rejected; exec: {} steals, {} parks, {} spare spawns",
        report.msgs_sent,
        report.msgs_delivered,
        report.msgs_rejected,
        report.exec_steals,
        report.exec_parks,
        report.exec_spare_spawns
    );

    // Sanity: traffic flowed, the op mix mostly succeeded (partition-window
    // failures are expected, wholesale failure is not), nothing leaked a
    // permanently blocked worker and nothing is still in flight after the
    // quiesce. These hold in `--quick` CI runs too.
    assert!(report.ops_ok > 0, "no operation succeeded");
    assert!(
        report.ops_ok as f64 / (report.ops_ok + report.ops_failed) as f64 > 0.5,
        "most ops failed: {} ok vs {} failed",
        report.ops_ok,
        report.ops_failed
    );
    assert!(report.rmi_latency.count > 0, "no RMI latencies recorded");
    // Every sent message is accounted for: delivered, or dropped because a
    // partition cut it mid-flight. Anything else is still in flight.
    assert_eq!(
        report.msgs_sent,
        report.msgs_delivered + report.msgs_dropped,
        "messages still in flight after quiesce"
    );

    reg.unregister().ok();
    d.shutdown();
    report
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = if args.iter().any(|a| a == "--quick") {
        Config::quick()
    } else {
        Config::full()
    };
    if let Some(v) = parse_flag::<usize>(&args, "--nodes") {
        cfg.nodes = v.max(2);
    }
    if let Some(v) = parse_flag::<usize>(&args, "--objects") {
        cfg.objects = v.max(cfg.drivers);
    }
    if let Some(v) = parse_flag::<usize>(&args, "--ops") {
        cfg.ops = v;
    }
    if let Some(v) = parse_flag::<usize>(&args, "--drivers") {
        cfg.drivers = v.clamp(1, 64);
    }
    if let Some(v) = parse_flag::<usize>(&args, "--executor") {
        cfg.executor = v.max(1);
    }
    if let Some(v) = parse_flag::<f64>(&args, "--scale") {
        cfg.time_scale = v;
    }
    if let Some(v) = parse_flag::<u64>(&args, "--seed") {
        cfg.seed = v;
    }
    cfg.legacy_contention = args.iter().any(|a| a == "--legacy-contention");

    let rows = if args.iter().any(|a| a == "--compare-contention") {
        // Same storm twice on the same machine: legacy single-lock layouts
        // first, then the striped default, with the speedup printed.
        let legacy = run_once(&Config {
            legacy_contention: true,
            ..cfg
        });
        let striped = run_once(&Config {
            legacy_contention: false,
            ..cfg
        });
        eprintln!(
            "contention speedup: {:.2}x ({:.0} vs {:.0} ops/s legacy)",
            striped.ops_per_s / legacy.ops_per_s.max(1e-9),
            striped.ops_per_s,
            legacy.ops_per_s
        );
        vec![legacy, striped]
    } else {
        vec![run_once(&cfg)]
    };
    match write_json("swarm", &rows) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
