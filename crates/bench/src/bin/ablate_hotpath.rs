//! E6 — locality fast-path ablation: loopback RMI with and without the
//! inline delivery path, against the same-cluster and WAN tiers.
//!
//! Two claims are checked: (a) the fast path cuts the *real* per-call
//! overhead of a same-node synchronous ping (it skips the delay-queue heap,
//! its mutex and the cross-thread hand-off), and (b) it is invisible to the
//! model — charged wire bytes per call are identical with the fast path on
//! and off, and the modeled (virtual) latency per tier is unchanged.

use jsym_bench::write_json;
use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};
use jsym_core::{CostModel, Deployment, JsObj, JsShell, MachineConfig, Placement};
use jsym_net::{LinkClass, NodeId};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    scenario: String,
    calls: usize,
    wall_micros_per_call: f64,
    virt_seconds_per_call: f64,
    bytes_per_call: f64,
    note: String,
}

/// Runs `calls` synchronous pings against `obj`, returning
/// (real µs/call, virtual s/call, charged bytes/call).
fn ping(d: &Deployment, obj: &JsObj, calls: usize) -> (f64, f64, f64) {
    // Warm up: executor threads, interner, symbol tables.
    for _ in 0..50 {
        obj.sinvoke("get", &[]).unwrap();
    }
    let bytes0 = d.net_stats().bytes_sent;
    let virt0 = d.clock().now();
    let t0 = Instant::now();
    for _ in 0..calls {
        obj.sinvoke("get", &[]).unwrap();
    }
    let wall = t0.elapsed().as_secs_f64() * 1e6 / calls as f64;
    let virt = (d.clock().now() - virt0) / calls as f64;
    let bytes = (d.net_stats().bytes_sent - bytes0) as f64 / calls as f64;
    (wall, virt, bytes)
}

fn single_node(fast_path: bool) -> Deployment {
    let d = shell_with_idle_machines(1)
        .time_scale(1e-6)
        .cost_model(CostModel::free())
        .loopback_fast_path(fast_path)
        .boot();
    register_test_classes(&d);
    d
}

fn main() {
    const CALLS: usize = 2000;
    let mut rows = Vec::new();
    println!(
        "{:>24} {:>12} {:>14} {:>12}",
        "scenario", "wall[µs]", "virt[s]", "bytes/call"
    );

    let mut run = |scenario: &str, d: Deployment, target: NodeId, calls: usize, note: &str| {
        let reg = d.register_app().unwrap();
        let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(target), None).unwrap();
        let (wall, virt, bytes) = ping(&d, &obj, calls);
        println!("{scenario:>24} {wall:>12.2} {virt:>14.6e} {bytes:>12.1}");
        rows.push(Row {
            scenario: scenario.into(),
            calls,
            wall_micros_per_call: wall,
            virt_seconds_per_call: virt,
            bytes_per_call: bytes,
            note: note.into(),
        });
        reg.unregister().unwrap();
        d.shutdown();
    };

    run(
        "loopback_fast",
        single_node(true),
        NodeId(0),
        CALLS,
        "same node, inline delivery (default)",
    );
    run(
        "loopback_slow",
        single_node(false),
        NodeId(0),
        CALLS,
        "same node, forced through the sharded delivery plane",
    );
    run(
        "lan100",
        {
            let d = shell_with_idle_machines(2)
                .time_scale(1e-6)
                .cost_model(CostModel::free())
                .boot();
            register_test_classes(&d);
            d
        },
        NodeId(1),
        CALLS,
        "same cluster, 100 Mbit/s switched Ethernet",
    );
    run(
        "wan",
        {
            let far = {
                let mut m = MachineConfig::idle("far", 50.0);
                m.link = LinkClass::Wan;
                m
            };
            let d = JsShell::new()
                .add_machine(MachineConfig::idle("near", 50.0))
                .add_machine(far)
                .time_scale(1e-6)
                .monitor_period(1.0)
                .failure_timeout(1e9)
                .cost_model(CostModel::free())
                .boot();
            register_test_classes(&d);
            d
        },
        NodeId(1),
        500,
        "wide-area link between sites",
    );

    let bc = jsym_net::BatchConfig::default();
    run(
        "lan100_batched",
        {
            let d = shell_with_idle_machines(2)
                .time_scale(1e-6)
                .cost_model(CostModel::free())
                .rmi_batching(bc.flush_window, bc.max_bytes)
                .boot();
            register_test_classes(&d);
            d
        },
        NodeId(1),
        CALLS,
        "same cluster, coalescing stage armed (sync pings batch alone: window latency added, bytes unchanged)",
    );
    run(
        "wan_batched",
        {
            let far = {
                let mut m = MachineConfig::idle("far", 50.0);
                m.link = LinkClass::Wan;
                m
            };
            let d = JsShell::new()
                .add_machine(MachineConfig::idle("near", 50.0))
                .add_machine(far)
                .time_scale(1e-6)
                .monitor_period(1.0)
                .failure_timeout(1e9)
                .cost_model(CostModel::free())
                .rmi_batching(bc.flush_window, bc.max_bytes)
                .boot();
            register_test_classes(&d);
            d
        },
        NodeId(1),
        500,
        "wide-area link, coalescing stage armed",
    );

    // Batching must never change the charged wire bytes of a call.
    for (plain, batched) in [("lan100", "lan100_batched"), ("wan", "wan_batched")] {
        let p = rows.iter().find(|r| r.scenario == plain).unwrap();
        let b = rows.iter().find(|r| r.scenario == batched).unwrap();
        assert!(
            (p.bytes_per_call - b.bytes_per_call).abs() < 1e-9,
            "batching changed charged wire bytes on {plain}: {} vs {}",
            p.bytes_per_call,
            b.bytes_per_call
        );
    }

    // The parity the proptests enforce, restated as an artifact: bytes per
    // call must match between the two loopback rows.
    let fast = rows.iter().find(|r| r.scenario == "loopback_fast").unwrap();
    let slow = rows.iter().find(|r| r.scenario == "loopback_slow").unwrap();
    assert!(
        (fast.bytes_per_call - slow.bytes_per_call).abs() < 1e-9,
        "fast path changed charged wire bytes: {} vs {}",
        fast.bytes_per_call,
        slow.bytes_per_call
    );
    println!(
        "\nfast path speedup: {:.2}x (bytes/call identical: {:.1})",
        slow.wall_micros_per_call / fast.wall_micros_per_call,
        fast.bytes_per_call
    );

    if let Ok(path) = write_json("ablate_hotpath", &rows) {
        eprintln!("wrote {}", path.display());
    }
}
