//! E11 — RMI batching ablation: flush window × max batch bytes × workload.
//!
//! Each cell runs one workload on a fresh testbed deployment, either with
//! the coalescing stage disabled (the baseline plane) or with a specific
//! `(flush_window, max_bytes)` configuration, and records the modeled run
//! time together with the `net.batch.*` counters. Three workloads cover the
//! traffic shapes that matter:
//!
//! * `scatter_gather` — a pure `DistCol` collective: many same-destination
//!   payloads in flight at once, the best case for coalescing;
//! * `matmul` — the collective multiplication kernel (compute-bound, two
//!   chunks per node);
//! * `jacobi` — iterative ghost-row exchange (latency-bound, small
//!   messages, neighbours only).
//!
//! Usage:
//!   cargo run --release -p jsym-bench --bin ablate_batch             # full sweep
//!   cargo run --release -p jsym-bench --bin ablate_batch -- --quick  # smoke
//!   cargo run --release -p jsym-bench --bin ablate_batch -- --quick --unbatched-only

use jsym_bench::write_json;
use jsym_cluster::catalog::{testbed_machines, LoadKind};
use jsym_cluster::jacobi::{register_jacobi_classes, run_jacobi};
use jsym_cluster::matmul::{register_matmul_classes, run_collective, MatmulConfig};
use jsym_col::{partition_weighted, register_col_classes, DistCol};
use jsym_core::{Deployment, JsShell};
use jsym_net::BatchConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    batched: bool,
    /// Whether the flush window adapts to each pair's send cadence.
    adaptive: bool,
    /// Coalescing window in virtual seconds (0 when unbatched; the ceiling
    /// when adaptive).
    flush_window: f64,
    /// Batch overflow threshold in bytes (0 when unbatched).
    max_bytes: usize,
    virt_seconds: f64,
    messages: u64,
    coalesced: u64,
    flushed: u64,
    batched_msgs: u64,
    bytes_saved: u64,
    mean_batch_size: f64,
}

fn deployment(nodes: usize, batching: Option<BatchConfig>, scale: f64) -> Deployment {
    let mut shell = JsShell::new()
        .time_scale(scale)
        .monitor_period(50.0)
        .failure_timeout(1e9)
        .add_machines(testbed_machines(nodes, LoadKind::Night, 11));
    if let Some(bc) = batching {
        shell = if bc.adaptive {
            shell.rmi_batching_adaptive(bc.flush_window, bc.max_bytes)
        } else {
            shell.rmi_batching(bc.flush_window, bc.max_bytes)
        };
    }
    shell.boot()
}

/// Scatter + gather of `elems` f32s over the cluster, four chunks per node.
fn scatter_gather(d: &Deployment, elems: usize) -> f64 {
    register_col_classes(d);
    let reg = d.register_app().unwrap();
    let weights: Vec<_> = d
        .machines()
        .iter()
        .map(|&m| (m, d.pool().machine(m).unwrap().spec().peak_mflops))
        .collect();
    let specs = partition_weighted(elems, &weights, 4);
    let col = DistCol::<f32>::create_default(&reg, &specs).unwrap();
    let data: Vec<f32> = (0..elems).map(|i| i as f32).collect();
    let t0 = d.clock().now();
    col.scatter(&data).unwrap();
    let back = col.gather().unwrap();
    let t = d.clock().now() - t0;
    assert_eq!(back.len(), elems);
    col.free().unwrap();
    reg.unregister().unwrap();
    t
}

fn matmul(d: &Deployment, n: usize) -> f64 {
    register_matmul_classes(d);
    let cluster = d.vda().request_cluster(6, None).unwrap();
    let report = run_collective(d, &cluster, &MatmulConfig::new(n).without_verification()).unwrap();
    report.virt_seconds
}

fn jacobi(d: &Deployment, n: usize, iters: usize) -> f64 {
    register_jacobi_classes(d);
    let cluster = d.vda().request_cluster(4, None).unwrap();
    let report = run_jacobi(d, &cluster, n, iters, false, false).unwrap();
    report.virt_seconds
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let unbatched_only = args.iter().any(|a| a == "--unbatched-only");

    let scale = if quick { 1e-3 } else { 5e-3 };
    let (elems, mat_n, jac_n, jac_iters) = if quick {
        (20_000, 120, 48, 5)
    } else {
        (200_000, 200, 64, 15)
    };

    // Windows are virtual seconds; at these time scales the interesting
    // range spans "barely wider than a back-to-back send gap" to "swallows
    // a whole fan-out burst".
    let windows: &[f64] = if quick { &[5e-3] } else { &[1e-4, 1e-3, 1e-2] };
    let sizes: &[usize] = if quick {
        &[256 * 1024]
    } else {
        &[4 * 1024, 64 * 1024, 256 * 1024]
    };

    let mut configs: Vec<Option<BatchConfig>> = vec![None];
    if !unbatched_only {
        for &w in windows {
            for &s in sizes {
                configs.push(Some(BatchConfig {
                    flush_window: w,
                    max_bytes: s,
                    adaptive: false,
                    compression: 1.0,
                }));
            }
        }
        // Adaptive flush: each window value becomes the per-pair ceiling;
        // one cell per window at the largest overflow threshold.
        let s = *sizes.last().unwrap();
        for &w in windows {
            configs.push(Some(BatchConfig {
                flush_window: w,
                max_bytes: s,
                adaptive: true,
                compression: 1.0,
            }));
        }
    }

    type Workload = (&'static str, usize, Box<dyn Fn(&Deployment) -> f64>);
    let workloads: Vec<Workload> = vec![
        (
            "scatter_gather",
            6,
            Box::new(move |d: &Deployment| scatter_gather(d, elems)),
        ),
        (
            "matmul",
            6,
            Box::new(move |d: &Deployment| matmul(d, mat_n)),
        ),
        (
            "jacobi",
            4,
            Box::new(move |d: &Deployment| jacobi(d, jac_n, jac_iters)),
        ),
    ];

    println!(
        "{:>15} {:>8} {:>9} {:>9} {:>9} {:>10} {:>9} {:>10} {:>8} {:>11} {:>10}",
        "workload",
        "batched",
        "adaptive",
        "window",
        "max_kB",
        "virt[s]",
        "msgs",
        "coalesced",
        "flushed",
        "mean_batch",
        "saved[kB]"
    );

    let mut rows = Vec::new();
    for (name, nodes, work) in &workloads {
        for cfg in &configs {
            let d = deployment(*nodes, cfg.clone(), scale);
            let msgs0 = d.net_stats().msgs_sent;
            let virt_seconds = work(&d);
            let messages = d.net_stats().msgs_sent - msgs0;
            // Let trailing one-way traffic (frees, unregister) drain out of
            // any still-open coalescing windows before reading counters.
            d.clock().sleep(1.0);
            let snap = d.obs().snapshot();
            let coalesced = snap.metrics.counter_total("net.batch.coalesced");
            let flushed = snap.metrics.counter_total("net.batch.flushed");
            let batched_msgs = snap.metrics.counter_total("net.batch.msgs");
            let bytes_saved = snap.metrics.counter_total("net.batch.bytes_saved");
            d.shutdown();
            let mean_batch = if flushed > 0 {
                batched_msgs as f64 / flushed as f64
            } else {
                0.0
            };
            let row = Row {
                workload: (*name).to_owned(),
                batched: cfg.is_some(),
                adaptive: cfg.as_ref().is_some_and(|c| c.adaptive),
                flush_window: cfg.as_ref().map_or(0.0, |c| c.flush_window),
                max_bytes: cfg.as_ref().map_or(0, |c| c.max_bytes),
                virt_seconds,
                messages,
                coalesced,
                flushed,
                batched_msgs,
                bytes_saved,
                mean_batch_size: mean_batch,
            };
            println!(
                "{:>15} {:>8} {:>9} {:>9.1e} {:>9} {:>10.4} {:>9} {:>10} {:>8} {:>11.2} {:>10.1}",
                row.workload,
                row.batched,
                row.adaptive,
                row.flush_window,
                row.max_bytes / 1024,
                row.virt_seconds,
                row.messages,
                row.coalesced,
                row.flushed,
                row.mean_batch_size,
                row.bytes_saved as f64 / 1024.0
            );
            rows.push(row);
        }
    }

    // Shape checks: the coalescing stage must actually engage on the
    // collective workloads, and an unbatched run must report no batch
    // activity at all.
    for row in &rows {
        if !row.batched {
            assert_eq!(
                row.coalesced, 0,
                "{}: unbatched run coalesced",
                row.workload
            );
            assert_eq!(row.flushed, 0, "{}: unbatched run flushed", row.workload);
        }
    }
    if !unbatched_only {
        let engaged = rows
            .iter()
            .any(|r| r.workload == "scatter_gather" && r.batched && r.coalesced > 0);
        assert!(engaged, "scatter_gather never coalesced anything");
    }

    match write_json("ablate_batch", &rows) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
