//! E4 — constraint-driven automatic migration under a load shift
//! (paper §4.6, §5.2).
//!
//! Eight objects live on a 4-node cluster constrained to ≥50% idle. At
//! t=100 virtual seconds two of the machines get hit by heavy user load.
//! The runtime must move every affected object to the still-idle machines;
//! we measure how long the system takes to return to a constraint-clean
//! placement for several auto-migration check periods.

use jsym_bench::write_json;
use jsym_core::testkit::register_test_classes;
use jsym_core::{JsObj, JsShell, MachineConfig, Placement, Value};
use jsym_net::LinkClass;
use jsym_sysmon::{JsConstraints, LoadModel, LoadProfile, MachineSpec, SysParam};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    check_period: f64,
    objects: usize,
    rebalance_virt_seconds: f64,
    all_escaped: bool,
}

const SPIKE_AT: f64 = 100.0;

fn run(period: f64) -> Row {
    let mut shell = JsShell::new()
        .time_scale(2e-3)
        .monitor_period(2.0)
        .automigration(true, period);
    for i in 0..4u32 {
        let profile = if i < 2 {
            // These two get loaded at t=SPIKE_AT.
            LoadProfile::Spike {
                base: 0.02,
                level: 0.9,
                start: SPIKE_AT,
                end: 1e12,
            }
        } else {
            LoadProfile::Idle
        };
        shell = shell.add_machine(MachineConfig {
            spec: MachineSpec::generic(&format!("m{i}"), 30.0, 256.0),
            load: LoadModel::new(profile, i as u64),
            link: LinkClass::Lan100,
        });
    }
    let d = shell.boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();

    let mut constr = JsConstraints::new();
    constr.set(SysParam::IdlePct, ">=", 50);
    let _cluster = d.vda().request_cluster(4, Some(&constr)).unwrap();

    // Eight objects, two per machine.
    let machines = d.machines();
    let objects: Vec<JsObj> = (0..8)
        .map(|k| {
            JsObj::create(
                &reg,
                "Counter",
                &[Value::I64(k)],
                Placement::OnPhys(machines[(k as usize) % 4]),
                None,
            )
            .unwrap()
        })
        .collect();

    let clock = d.clock().clone();
    let loaded: Vec<_> = machines[..2].to_vec();
    // Wait for the spike, then time until no object remains on a loaded
    // machine.
    while clock.now() < SPIKE_AT {
        clock.sleep(5.0);
    }
    let deadline = SPIKE_AT + 600.0;
    let mut rebalanced_at = None;
    while clock.now() < deadline {
        let stranded = objects
            .iter()
            .filter(|o| loaded.contains(&o.get_location().unwrap()))
            .count();
        if stranded == 0 {
            rebalanced_at = Some(clock.now());
            break;
        }
        clock.sleep(2.0);
    }
    let all_escaped = rebalanced_at.is_some();
    let row = Row {
        check_period: period,
        objects: objects.len(),
        rebalance_virt_seconds: rebalanced_at.unwrap_or(deadline) - SPIKE_AT,
        all_escaped,
    };
    reg.unregister().unwrap();
    d.shutdown();
    row
}

fn main() {
    println!(
        "{:>14} {:>8} {:>16} {:>8}",
        "check period", "objects", "rebalance[s]", "clean"
    );
    let mut rows = Vec::new();
    for period in [2.0, 8.0, 32.0] {
        let row = run(period);
        println!(
            "{:>14.1} {:>8} {:>16.1} {:>8}",
            row.check_period, row.objects, row.rebalance_virt_seconds, row.all_escaped
        );
        rows.push(row);
    }
    if let Ok(path) = write_json("ablate_automigrate", &rows) {
        eprintln!("wrote {}", path.display());
    }
}
