//! E7 — locality ablation: the value of programmer-controlled placement
//! (the paper's central thesis, §1/§3).
//!
//! A 4-stage pipeline over two sites joined by a WAN, mapped three ways:
//! locality-aware (one WAN crossing), scattered (every hand-off crosses),
//! and single-site (no crossing, but half the machines unused for other
//! work). Also: Jacobi ghost exchange on one cluster vs split across the
//! WAN — neighbour exchange is exactly the pattern the paper says should be
//! co-located.

use jsym_bench::write_json;
use jsym_cluster::jacobi::{register_jacobi_classes, run_jacobi};
use jsym_cluster::pipeline::{
    register_pipeline_classes, PIPELINE_ARTIFACT, PIPELINE_ARTIFACT_BYTES,
};
use jsym_core::{Deployment, JsObj, JsShell, MachineConfig, Placement, Value};
use jsym_net::{LinkClass, NodeId};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    mapping: String,
    virt_seconds: f64,
}

fn two_site_deployment() -> Deployment {
    let mut shell = JsShell::new().time_scale(2e-3);
    for name in ["a0", "a1", "b0", "b1"] {
        shell = shell.add_machine(MachineConfig::idle(name, 25.0));
    }
    let d = shell.boot();
    // A↔B pairs cross a WAN.
    let m = d.machines();
    {
        let topo = d.network().topology();
        let mut topo = topo.write();
        for &a in &m[0..2] {
            for &b in &m[2..4] {
                topo.set_pair_class(a, b, LinkClass::Wan);
            }
        }
    }
    register_pipeline_classes(&d);
    register_jacobi_classes(&d);
    d
}

fn run_pipeline(d: &Deployment, order: [usize; 4], items: usize) -> f64 {
    let m = d.machines();
    let reg = d.register_app().unwrap();
    let cb = reg.codebase();
    cb.add(PIPELINE_ARTIFACT, PIPELINE_ARTIFACT_BYTES);
    for &n in &m {
        cb.load_phys(n).unwrap();
    }
    let mut next = None;
    for (k, &slot) in order.iter().enumerate().rev() {
        let mut args = vec![Value::I64(k as i64), Value::F64(100.0)];
        if let Some(h) = next {
            args.push(Value::Handle(h));
        }
        let stage = JsObj::create(&reg, "Stage", &args, Placement::OnPhys(m[slot]), None).unwrap();
        next = Some(stage.handle());
        if k == 0 {
            let clock = d.clock().clone();
            let payload = Value::floats(vec![1.0; 100_000]);
            let t0 = clock.now();
            for _ in 0..items {
                stage
                    .sinvoke("process", std::slice::from_ref(&payload))
                    .unwrap();
            }
            let out = clock.now() - t0;
            reg.unregister().unwrap();
            return out;
        }
    }
    unreachable!()
}

fn main() {
    let mut rows = Vec::new();
    println!("{:>10} {:>16} {:>12}", "workload", "mapping", "time[s]");

    // Pipeline mappings.
    let d = two_site_deployment();
    for (label, order) in [
        ("locality-aware", [0usize, 1, 2, 3]), // sites [A,A,B,B]
        ("scattered", [0, 2, 1, 3]),           // A,B,A,B
        ("single-site", [0, 1, 0, 1]),         // all at site A
    ] {
        let t = run_pipeline(&d, order, 8);
        println!("{:>10} {:>16} {:>12.2}", "pipeline", label, t);
        rows.push(Row {
            workload: "pipeline".into(),
            mapping: label.into(),
            virt_seconds: t,
        });
    }
    d.shutdown();

    // Jacobi: neighbours within one cluster vs split across the WAN.
    for (label, wan) in [("one-cluster", false), ("wan-split", true)] {
        let mut shell = JsShell::new().time_scale(2e-3);
        for name in ["j0", "j1"] {
            shell = shell.add_machine(MachineConfig::idle(name, 25.0));
        }
        let d = shell.boot();
        if wan {
            d.network()
                .topology()
                .write()
                .set_pair_class(NodeId(0), NodeId(1), LinkClass::Wan);
        }
        register_jacobi_classes(&d);
        let cluster = d.vda().request_cluster(2, None).unwrap();
        let report = run_jacobi(&d, &cluster, 64, 30, false, false).unwrap();
        println!(
            "{:>10} {:>16} {:>12.2}",
            "jacobi", label, report.virt_seconds
        );
        rows.push(Row {
            workload: "jacobi".into(),
            mapping: label.into(),
            virt_seconds: report.virt_seconds,
        });
        d.shutdown();
    }

    if let Ok(path) = write_json("ablate_locality", &rows) {
        eprintln!("wrote {}", path.display());
    }
}
