//! E2 — migration-cost ablation: explicit migration time vs object state
//! size, within the fast segment and across the slow one.
//!
//! The paper's migration protocol (Figure 3) ships the serialized object;
//! the dominant costs are state (de)serialization on both agents and the
//! transfer itself, so time should grow linearly in state size with a slope
//! set by the link.

use jsym_bench::write_json;
use jsym_core::testkit::register_test_classes;
use jsym_core::{JsObj, JsShell, MachineConfig, MigrateTarget, Placement, Value};
use jsym_net::{LinkClass, NodeId};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    state_bytes: usize,
    link: String,
    virt_seconds: f64,
}

fn main() {
    // Nodes 0,1 on 100 Mbit/s; node 2 on the 10 Mbit/s segment.
    let mut shell = JsShell::new().time_scale(1e-2);
    for (name, link) in [
        ("fast-a", LinkClass::Lan100),
        ("fast-b", LinkClass::Lan100),
        ("slow-c", LinkClass::Lan10),
    ] {
        let mut m = MachineConfig::idle(name, 50.0);
        m.link = link;
        shell = shell.add_machine(m);
    }
    let d = shell.boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let cb = reg.codebase();
    cb.add("blob.jar", 100_000);
    for m in d.machines() {
        cb.load_phys(m).unwrap();
    }
    let clock = d.clock().clone();
    let mut rows = Vec::new();

    println!("{:>12} {:>10} {:>12}", "state[B]", "link", "time[s]");
    for &size in &[1usize << 10, 1 << 14, 1 << 18, 1 << 20, 4 << 20] {
        let obj = JsObj::create(
            &reg,
            "Blob",
            &[Value::I64(size as i64)],
            Placement::OnPhys(NodeId(0)),
            None,
        )
        .unwrap();
        // Within the fast segment: 0 → 1.
        let t0 = clock.now();
        obj.migrate(MigrateTarget::ToPhys(NodeId(1)), None).unwrap();
        let fast = clock.now() - t0;
        // Across to the slow segment: 1 → 2.
        let t0 = clock.now();
        obj.migrate(MigrateTarget::ToPhys(NodeId(2)), None).unwrap();
        let slow = clock.now() - t0;
        println!("{:>12} {:>10} {:>12.4}", size, "lan100", fast);
        println!("{:>12} {:>10} {:>12.4}", size, "lan10", slow);
        rows.push(Row {
            state_bytes: size,
            link: "lan100".into(),
            virt_seconds: fast,
        });
        rows.push(Row {
            state_bytes: size,
            link: "lan10".into(),
            virt_seconds: slow,
        });
        obj.free().unwrap();
    }

    if let Ok(path) = write_json("ablate_migration", &rows) {
        eprintln!("wrote {}", path.display());
    }
    reg.unregister().unwrap();
    d.shutdown();
}
