//! Figure 5 robustness appendix: the same cells under three different load
//! seeds, reporting mean and spread. The paper ran each configuration twice
//! (once per regime) with whatever load the office happened to produce; this
//! quantifies how much our synthetic day/night streams move the curves.

use jsym_bench::write_json;
use jsym_cluster::catalog::LoadKind;
use jsym_cluster::fig5::run_cell;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    n: usize,
    nodes: usize,
    load: String,
    mean_seconds: f64,
    min_seconds: f64,
    max_seconds: f64,
    spread_pct: f64,
}

fn main() {
    const N: usize = 600;
    const SCALE: f64 = 2e-2;
    let seeds = [11u64, 22, 33];
    println!(
        "{:>5} {:>6} {:>6} {:>10} {:>10} {:>10} {:>9}",
        "N", "nodes", "load", "mean[s]", "min[s]", "max[s]", "spread%"
    );
    let mut rows = Vec::new();
    for load in [LoadKind::Night, LoadKind::Day] {
        for nodes in [1usize, 2, 6, 10, 13] {
            let times: Vec<f64> = seeds
                .iter()
                .map(|&s| run_cell(N, nodes, load, SCALE, s, false))
                .collect();
            let mean = times.iter().sum::<f64>() / times.len() as f64;
            let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let spread = 100.0 * (max - min) / mean;
            println!(
                "{:>5} {:>6} {:>6} {:>10.2} {:>10.2} {:>10.2} {:>9.1}",
                N,
                nodes,
                load.label(),
                mean,
                min,
                max,
                spread
            );
            rows.push(Row {
                n: N,
                nodes,
                load: load.label().to_owned(),
                mean_seconds: mean,
                min_seconds: min,
                max_seconds: max,
                spread_pct: spread,
            });
        }
    }
    // The qualitative orderings must hold for the means as well.
    let mean_of = |nodes: usize, load: &str| {
        rows.iter()
            .find(|r| r.nodes == nodes && r.load == load)
            .map(|r| r.mean_seconds)
            .unwrap()
    };
    println!("\nmean-level shape checks:");
    for load in ["night", "day"] {
        let ok1 = mean_of(6, load) < mean_of(1, load);
        let ok2 = mean_of(13, load) > mean_of(10, load);
        println!("  {load}: 6 nodes beat sequential: {ok1}; 13 worse than 10: {ok2}");
    }
    if let Ok(path) = write_json("fig5_variance", &rows) {
        eprintln!("wrote {}", path.display());
    }
}
