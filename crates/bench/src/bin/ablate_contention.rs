//! E14 — `ablate_contention`: hot-path contention ablation (PR 10).
//!
//! Sweeps the delivery-plane stripe count against the executor worker count
//! and measures mixed-storm throughput per cell, alongside the lock, steal
//! and wake counters the de-contended paths export. The `shards = 1` column
//! runs with *all* legacy toggles (single-stripe pair state, endpoint cache
//! off, global-injector executor) and is the contention baseline; every
//! other cell runs the striped delivery plane, the per-thread endpoint
//! cache and the striped-injector executor.
//!
//! Workload per cell: boot `--nodes` machines in executor mode with RMI
//! batching armed (so the `pending` and `gaps` stripes are live), create
//! `--objects` Counters round-robin, then `--drivers` threads each run
//! `--ops` mixed operations (one-sided / sync / async adds, reads,
//! migrations). No partitions: every op must succeed, and after quiescing
//! `sent == delivered` is asserted per cell.
//!
//! Usage:
//!   cargo run --release -p jsym-bench --bin ablate_contention
//!   cargo run --release -p jsym-bench --bin ablate_contention -- --quick
//!   (knobs: --nodes N --objects N --ops N --drivers N --seed N)

use jsym_bench::write_json;
use jsym_core::testkit::register_test_classes;
use jsym_core::{CostModel, JsObj, JsShell, MachineConfig, MigrateTarget, Placement, Value};
use jsym_net::NodeId;
use serde::Serialize;
use std::time::Instant;

/// xorshift64* — deterministic per-driver op stream without external crates.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[derive(Clone, Copy)]
struct Config {
    nodes: usize,
    objects: usize,
    /// Mixed operations per driver thread.
    ops: usize,
    drivers: usize,
    seed: u64,
    quick: bool,
}

impl Config {
    fn full() -> Config {
        Config {
            nodes: 128,
            objects: 2_048,
            ops: 4_000,
            drivers: 4,
            seed: 1000,
            quick: false,
        }
    }

    fn quick() -> Config {
        Config {
            nodes: 16,
            objects: 256,
            ops: 400,
            drivers: 2,
            seed: 1000,
            quick: true,
        }
    }
}

/// One grid cell: a (stripe count, worker count) combination and everything
/// the hot paths counted while the storm ran under it.
#[derive(Serialize)]
struct Cell {
    machine: String,
    /// Requested stripe count (1 = full legacy toggles).
    state_shards: usize,
    /// Effective stripe count after power-of-two rounding.
    effective_shards: usize,
    workers: usize,
    /// True for the `shards = 1` baseline column: endpoint cache off and the
    /// legacy global-injector executor.
    legacy: bool,
    drivers: usize,
    ops_per_driver: usize,
    mix_wall_s: f64,
    ops_per_s: f64,
    ops_ok: u64,
    ops_failed: u64,
    msgs_sent: u64,
    msgs_delivered: u64,
    // Delivery-plane contention counters (contended stripe acquisitions).
    pair_contended: u64,
    pending_contended: u64,
    gaps_contended: u64,
    ep_cache_hits: u64,
    ep_cache_misses: u64,
    // Executor counters.
    exec_steals: u64,
    exec_parks: u64,
    exec_spare_spawns: u64,
    wakes_targeted: u64,
    wakes_escalated: u64,
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn machine_note() -> String {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    format!(
        "{}-{} {cpus} cpus",
        std::env::consts::OS,
        std::env::consts::ARCH
    )
}

fn run_cell(cfg: &Config, shards: usize, workers: usize) -> Cell {
    let legacy = shards == 1;
    let d = JsShell::new()
        .add_machines((0..cfg.nodes).map(|i| MachineConfig::idle(&format!("ct{i}"), 50.0)))
        .time_scale(1e-6)
        .monitor_period(1e9)
        .failure_timeout(1e9)
        .cost_model(CostModel::free())
        .rmi_batching(1.0, 64 * 1024)
        .net_state_shards(shards)
        .net_endpoint_cache(!legacy)
        .executor(workers)
        .executor_legacy_injector(legacy)
        .boot();
    register_test_classes(&d);
    let reg = d.register_app().expect("register app");
    let objs: Vec<JsObj> = (0..cfg.objects)
        .map(|i| {
            JsObj::create(
                &reg,
                "Counter",
                &[],
                Placement::OnPhys(NodeId((i % cfg.nodes) as u32)),
                None,
            )
            .expect("create object")
        })
        .collect();

    let t0 = Instant::now();
    let tallies: Vec<(u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.drivers)
            .map(|t| {
                let objs = &objs;
                s.spawn(move || {
                    let mut rng = Rng::new(cfg.seed ^ ((t as u64 + 1) << 32));
                    let (mut ok, mut failed) = (0u64, 0u64);
                    let mut inflight: Vec<jsym_core::ResultHandle> = Vec::new();
                    for _ in 0..cfg.ops {
                        let obj = &objs[(rng.next() as usize) % objs.len()];
                        let r = match rng.next() % 100 {
                            0..=54 => obj.oinvoke("add", &[Value::I64(1)]).map(|_| ()),
                            55..=69 => obj.sinvoke("add", &[Value::I64(1)]).map(|_| ()),
                            70..=79 => match obj.ainvoke("add", &[Value::I64(1)]) {
                                Ok(h) => {
                                    inflight.push(h);
                                    if inflight.len() >= 32 {
                                        for h in inflight.drain(..) {
                                            match h.get_result() {
                                                Ok(_) => ok += 1,
                                                Err(_) => failed += 1,
                                            }
                                        }
                                    }
                                    continue;
                                }
                                Err(e) => Err(e),
                            },
                            80..=94 => obj.sinvoke("get", &[]).map(|_| ()),
                            _ => {
                                let dst = NodeId((rng.next() as usize % cfg.nodes) as u32);
                                obj.migrate(MigrateTarget::ToPhys(dst), None).map(|_| ())
                            }
                        };
                        match r {
                            Ok(()) => ok += 1,
                            Err(_) => failed += 1,
                        }
                    }
                    for h in inflight.drain(..) {
                        match h.get_result() {
                            Ok(_) => ok += 1,
                            Err(_) => failed += 1,
                        }
                    }
                    (ok, failed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mix_wall_s = t0.elapsed().as_secs_f64();

    // Quiesce trailing one-sided traffic, then read the counters.
    d.clock().sleep(1.0);
    std::thread::sleep(std::time::Duration::from_millis(50));
    let net = d.net_stats();
    let hot = d.net_hot_stats();
    let exec = d.exec_stats().expect("executor mode");
    let (ok, failed) = tallies
        .iter()
        .fold((0, 0), |(a, b), &(o, f)| (a + o, b + f));
    let ops_total = (cfg.ops * cfg.drivers) as f64;
    let cell = Cell {
        machine: machine_note(),
        state_shards: shards,
        effective_shards: hot.state_shards,
        workers,
        legacy,
        drivers: cfg.drivers,
        ops_per_driver: cfg.ops,
        mix_wall_s,
        ops_per_s: ops_total / mix_wall_s.max(1e-9),
        ops_ok: ok,
        ops_failed: failed,
        msgs_sent: net.msgs_sent,
        msgs_delivered: net.msgs_delivered,
        pair_contended: hot.pair_contended,
        pending_contended: hot.pending_contended,
        gaps_contended: hot.gaps_contended,
        ep_cache_hits: hot.ep_cache_hits,
        ep_cache_misses: hot.ep_cache_misses,
        exec_steals: exec.steals,
        exec_parks: exec.parks,
        exec_spare_spawns: exec.spare_spawns,
        wakes_targeted: exec.wakes_targeted,
        wakes_escalated: exec.wakes_escalated,
    };
    reg.unregister().ok();
    d.shutdown();

    // No partitions are injected: the whole mix must succeed, and after the
    // quiesce nothing may still be in flight.
    assert_eq!(cell.ops_failed, 0, "ops failed in a partition-free storm");
    assert_eq!(
        cell.msgs_sent, cell.msgs_delivered,
        "messages in flight after quiesce"
    );
    cell
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = if args.iter().any(|a| a == "--quick") {
        Config::quick()
    } else {
        Config::full()
    };
    if let Some(v) = parse_flag::<usize>(&args, "--nodes") {
        cfg.nodes = v.max(2);
    }
    if let Some(v) = parse_flag::<usize>(&args, "--objects") {
        cfg.objects = v.max(1);
    }
    if let Some(v) = parse_flag::<usize>(&args, "--ops") {
        cfg.ops = v;
    }
    if let Some(v) = parse_flag::<usize>(&args, "--drivers") {
        cfg.drivers = v.clamp(1, 64);
    }
    if let Some(v) = parse_flag::<u64>(&args, "--seed") {
        cfg.seed = v;
    }
    let (shard_grid, worker_grid): (&[usize], &[usize]) = if cfg.quick {
        (&[1, 8], &[2])
    } else {
        (&[1, 8, 64], &[2, 4, 8])
    };
    eprintln!(
        "ablate_contention: {} nodes / {} objects, {} drivers x {} ops; shards {:?} x workers {:?}",
        cfg.nodes, cfg.objects, cfg.drivers, cfg.ops, shard_grid, worker_grid
    );

    let mut cells = Vec::new();
    println!("shards workers legacy    ops/s  pair_cont pend_cont gaps_cont cache_hit/miss   steals  wake_t/wake_e");
    for &workers in worker_grid {
        for &shards in shard_grid {
            let cell = run_cell(&cfg, shards, workers);
            println!(
                "{:6} {:7} {:6} {:8.0} {:10} {:9} {:9} {:9}/{:<6} {:8} {:7}/{}",
                cell.state_shards,
                cell.workers,
                cell.legacy,
                cell.ops_per_s,
                cell.pair_contended,
                cell.pending_contended,
                cell.gaps_contended,
                cell.ep_cache_hits,
                cell.ep_cache_misses,
                cell.exec_steals,
                cell.wakes_targeted,
                cell.wakes_escalated
            );
            cells.push(cell);
        }
    }

    // Legacy baseline vs. the widest striped cell at each worker count.
    for &workers in worker_grid {
        let base = cells
            .iter()
            .find(|c| c.workers == workers && c.legacy)
            .expect("baseline cell");
        let best = cells
            .iter()
            .filter(|c| c.workers == workers && !c.legacy)
            .max_by(|a, b| a.ops_per_s.total_cmp(&b.ops_per_s))
            .expect("striped cell");
        eprintln!(
            "workers {}: striped x{} = {:.2}x legacy ({:.0} vs {:.0} ops/s)",
            workers,
            best.state_shards,
            best.ops_per_s / base.ops_per_s.max(1e-9),
            best.ops_per_s,
            base.ops_per_s
        );
    }

    match write_json("ablate_contention", &cells) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
