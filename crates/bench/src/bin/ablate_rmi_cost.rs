//! E8 — RMI-cost ablation: how much of the Figure 5 >10-node degradation
//! is the RMI/serialization software overhead (the paper's own explanation:
//! "mostly due to a larger number of RMIs")?
//!
//! Runs the same Figure 5 cells under the calibrated JDK-1.2.1-era cost
//! model and under a zero-cost model (network latency/bandwidth and compute
//! heterogeneity remain). What survives with free RMI is the straggler and
//! slow-segment contribution.

use jsym_bench::{write_json, write_raw_json};
use jsym_cluster::catalog::{testbed_machines, LoadKind};
use jsym_cluster::matmul::{register_matmul_classes, run_master_slave, MatmulConfig};
use jsym_core::{CostModel, JsShell};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    n: usize,
    nodes: usize,
    cost_model: String,
    virt_seconds: f64,
    /// RMI calls issued, from the observability counters.
    rmi_calls: u64,
    /// Total caller-side RMI latency (issue → reply, virtual seconds),
    /// summed from the per-call span-derived histograms.
    rmi_caller_seconds: f64,
}

fn run(n: usize, nodes: usize, cost: CostModel, label: &str) -> Row {
    let d = JsShell::new()
        .time_scale(2e-2)
        .cost_model(cost)
        .add_machines(testbed_machines(nodes, LoadKind::Night, 3))
        .boot();
    register_matmul_classes(&d);
    let cluster = d.vda().request_cluster(nodes, None).unwrap();
    let cfg = MatmulConfig::new(n).without_verification();
    let report = run_master_slave(&d, &cluster, &cfg).unwrap();
    let snap = d.obs().snapshot();
    // Per-cell metrics artifact (spans stripped: the caller-latency
    // histograms carry the span-derived timing this experiment needs).
    {
        let mut metrics_only = snap.clone();
        metrics_only.spans.clear();
        let name = format!("ablate_rmi_cost_obs_{nodes}_{label}");
        if let Ok(path) = write_raw_json(&name, &metrics_only.to_json()) {
            eprintln!("wrote {}", path.display());
        }
    }
    d.shutdown();
    Row {
        n,
        nodes,
        cost_model: label.into(),
        virt_seconds: report.virt_seconds,
        rmi_calls: snap.metrics.counter_total("rmi.calls"),
        rmi_caller_seconds: snap.metrics.histogram_sum("rmi.caller_seconds"),
    }
}

fn main() {
    const N: usize = 600;
    println!(
        "{:>5} {:>6} {:>12} {:>10} {:>9} {:>12}",
        "N", "nodes", "cost model", "time[s]", "rmi calls", "rmi wait[s]"
    );
    let mut rows = Vec::new();
    for nodes in [6usize, 10, 13] {
        for (label, cost) in [
            ("jdk-1.2", CostModel::default()),
            ("free", CostModel::free()),
        ] {
            let row = run(N, nodes, cost, label);
            println!(
                "{:>5} {:>6} {:>12} {:>10.2} {:>9} {:>12.2}",
                row.n,
                row.nodes,
                row.cost_model,
                row.virt_seconds,
                row.rmi_calls,
                row.rmi_caller_seconds
            );
            rows.push(row);
        }
    }
    // Attribution summary.
    let get = |nodes: usize, label: &str| {
        rows.iter()
            .find(|r| r.nodes == nodes && r.cost_model == label)
            .map(|r| r.virt_seconds)
            .unwrap()
    };
    let degradation_full = get(13, "jdk-1.2") - get(6, "jdk-1.2");
    let degradation_free = get(13, "free") - get(6, "free");
    let rmi_share_13 = 100.0 * (get(13, "jdk-1.2") - get(13, "free")) / get(13, "jdk-1.2");
    println!(
        "\n6→13-node degradation: {degradation_full:.2}s with modeled RMI costs, {degradation_free:.2}s with them zeroed."
    );
    println!(
        "RMI/serialization software cost is ~{rmi_share_13:.0}% of the 13-node time; the 6→13 \
         degradation itself persists with free RMI — in this model it is driven by stragglers \
         (fixed task grain on 2.4–3.4 Mflop/s machines) and the 10 Mbit segment, refining the \
         paper's \"mostly due to a larger number of RMIs\" attribution."
    );
    // Span-derived attribution: caller-side RMI wait recorded by the
    // observability subsystem (issue → reply, per call).
    let span_wait = |nodes: usize, label: &str| {
        rows.iter()
            .find(|r| r.nodes == nodes && r.cost_model == label)
            .map(|r| (r.rmi_calls, r.rmi_caller_seconds))
            .unwrap()
    };
    let (calls_6, wait_6) = span_wait(6, "jdk-1.2");
    let (calls_13, wait_13) = span_wait(13, "jdk-1.2");
    println!(
        "Span data: {calls_6} RMIs / {wait_6:.2}s caller wait at 6 nodes vs {calls_13} RMIs / \
         {wait_13:.2}s at 13 nodes — the recorded per-call wait grows with node count while \
         per-node task compute shrinks, which is the degradation mechanism measured rather than \
         inferred."
    );
    if let Ok(path) = write_json("ablate_rmi_cost", &rows) {
        eprintln!("wrote {}", path.display());
    }
}
