//! E13 — affinity co-location + directory lease ablation (DESIGN.md §14).
//!
//! A caller-skewed workload: every target object starts crowded on one
//! landing-zone machine while its callers live elsewhere over a WAN link,
//! and 90% of each target's nested calls come from a single dominant
//! caller node. The grid crosses static placement vs. the affinity plane
//! with directory read leases off vs. on:
//!
//! * static — every call stays remote and pays the WAN round trip;
//! * affinity — the co-location loop migrates each target toward its
//!   dominant caller, after which 9 calls in 10 are loopback-local;
//! * leases — steady-state `resolve_location` reads are served from the
//!   directory leader's lease instead of running a probe round.
//!
//! Calls are issued by per-node `Driver` objects (one batched `drive`
//! request fans out into many nested invokes), so the recorded traffic is
//! dominated by driver→target calls from the driver's machine and the
//! drivers themselves stay below the affinity hotness floor.
//!
//! Usage:
//!   cargo run --release -p jsym-bench --bin ablate_affinity              # full grid
//!   cargo run --release -p jsym-bench --bin ablate_affinity -- --quick   # smoke
//!   cargo run --release -p jsym-bench --bin ablate_affinity -- --quick --executor 4

use jsym_bench::write_json;
use jsym_core::testkit::register_test_classes;
use jsym_core::{
    snapshot_state, AffinityConfig, Deployment, InvokeCtx, JsClass, JsError, JsObj, JsShell,
    MachineConfig, Placement, Value,
};
use jsym_net::{LinkClass, NodeId};
use serde::{Deserialize, Serialize};

/// Nested calls per `drive` request to a dominant target (9:1 skew against
/// [`MINORITY_REPS`], scaled up so targets cross the hotness floor while
/// the drivers — touched twice per round — never do).
const DOMINANT_REPS: i64 = 18;
/// Nested calls per `drive` request from a minority caller.
const MINORITY_REPS: i64 = 2;

/// Issues batched nested invokes: `drive(reps, h1, h2, ...)` invokes
/// `add(1)` on every handle `reps` times from this object's node.
#[derive(Debug, Serialize, Deserialize)]
struct Driver;

impl JsClass for Driver {
    fn class_name(&self) -> &str {
        "Driver"
    }

    fn invoke(
        &mut self,
        method: &str,
        args: &[Value],
        ctx: &mut InvokeCtx<'_>,
    ) -> jsym_core::Result<Value> {
        match method {
            "drive" => {
                let reps = args
                    .first()
                    .and_then(Value::as_i64)
                    .ok_or_else(|| JsError::BadArguments("drive(reps, handle...)".into()))?;
                let mut calls = 0i64;
                for arg in &args[1..] {
                    let Some(h) = arg.as_handle() else { continue };
                    for _ in 0..reps {
                        ctx.invoke(h, "add", &[Value::I64(1)])?;
                        calls += 1;
                    }
                }
                Ok(Value::I64(calls))
            }
            _ => Err(JsError::NoSuchMethod {
                class: "Driver".into(),
                method: method.to_owned(),
            }),
        }
    }

    fn snapshot(&self) -> jsym_core::Result<Vec<u8>> {
        snapshot_state(self)
    }
}

#[derive(Serialize)]
struct Row {
    /// Affinity-guided re-placement on?
    placement: bool,
    /// Directory read leases on?
    leases: bool,
    /// Virtual seconds spent in the measured call phase.
    virt_seconds: f64,
    /// Nested calls issued in the measured phase.
    calls: i64,
    /// Objects the affinity loop moved toward a dominant caller.
    affinity_migrations: u64,
    /// Directory reads observed after the deployment settled.
    dir_reads: u64,
    /// Of those, reads served locally from the leader's lease.
    lease_local_reads: u64,
    /// `lease_local_reads / dir_reads` (0 when no reads).
    lease_ratio: f64,
}

struct Scenario {
    nodes: usize,
    targets: usize,
    warmup_rounds: usize,
    measure_rounds: usize,
    scale: f64,
    executor: usize,
}

/// Virtual seconds between automigrate supervisor wake-ups; the warmup
/// sleeps below must span several of these so the affinity loop gets to act.
const SUPERVISOR_PERIOD: f64 = 5.0;

fn deployment(s: &Scenario, affinity: AffinityConfig) -> Deployment {
    // Callers reach the landing zone over a WAN so the remote/local gap the
    // plane removes dwarfs the harness's own real-time overhead.
    let machines: Vec<MachineConfig> = (0..s.nodes)
        .map(|i| {
            let mut m = MachineConfig::idle(&format!("m{i}"), 400.0);
            m.link = LinkClass::Wan;
            m
        })
        .collect();
    let mut shell = JsShell::new()
        .time_scale(s.scale)
        .monitor_period(50.0)
        .failure_timeout(1e9)
        .automigration(false, SUPERVISOR_PERIOD)
        .directory_replicas(3)
        .affinity(affinity)
        .add_machines(machines);
    if s.executor > 0 {
        shell = shell.executor(s.executor);
    }
    shell.boot()
}

/// The dominant caller node of target `i` (targets land on node 0; callers
/// occupy every other node round-robin).
fn dominant(s: &Scenario, i: usize) -> usize {
    1 + i % (s.nodes - 1)
}

/// A secondary caller distinct from the dominant one, for the minority
/// traffic that the hysteresis must shrug off.
fn minority(s: &Scenario, i: usize) -> usize {
    1 + (i + 1) % (s.nodes - 1)
}

/// One skewed round: every driver fires one dominant batch (18 calls per
/// assigned target) and one minority batch (2 calls per assigned target).
/// Returns the number of nested calls issued.
fn skewed_round(targets: &[JsObj], drivers: &[JsObj], s: &Scenario) -> i64 {
    let mut calls = 0;
    for (node, driver) in drivers.iter().enumerate().skip(1) {
        for (reps, pick) in [
            (DOMINANT_REPS, dominant as fn(&Scenario, usize) -> usize),
            (MINORITY_REPS, minority as fn(&Scenario, usize) -> usize),
        ] {
            let mut args = vec![Value::I64(reps)];
            args.extend(
                targets
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| pick(s, i) == node)
                    .map(|(_, t)| Value::Handle(t.handle())),
            );
            if args.len() == 1 {
                continue;
            }
            match driver.sinvoke("drive", &args).expect("drive batch") {
                Value::I64(n) => calls += n,
                other => panic!("drive returned {other:?}"),
            }
        }
    }
    calls
}

fn run_cell(s: &Scenario, placement: bool, leases: bool) -> Row {
    let affinity = AffinityConfig {
        placement,
        leases,
        half_life: 50.0,
        min_share: 0.6,
        // Between the drivers' 2 batched touches per round and the targets'
        // 18 nested calls per round: targets cross, drivers never do.
        min_calls: 12.0,
        cooldown: 10.0,
    };
    let d = deployment(s, affinity);
    register_test_classes(&d);
    d.classes()
        .register_class::<Driver, _>("Driver", None, |_| Ok(Driver));
    let reg = d.register_app().unwrap();

    // Targets crowd the landing zone; one driver per caller machine.
    let targets: Vec<JsObj> = (0..s.targets)
        .map(|_| JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(0)), None).unwrap())
        .collect();
    let drivers: Vec<JsObj> = (0..s.nodes)
        .map(|i| {
            JsObj::create(
                &reg,
                "Driver",
                &[],
                Placement::OnPhys(NodeId(i as u32)),
                None,
            )
            .unwrap()
        })
        .collect();

    // Let elections finish and the leader's lease establish, then read all
    // counters as deltas from here so election-era probe reads don't
    // pollute the lease ratio.
    d.clock().sleep(6.0 * SUPERVISOR_PERIOD);
    let snap0 = d.obs().snapshot();

    // Train the affinity counters, giving the supervisor a few rounds to
    // act between bursts.
    for _ in 0..s.warmup_rounds {
        skewed_round(&targets, &drivers, s);
        d.clock().sleep(2.0 * SUPERVISOR_PERIOD);
    }

    let t0 = d.clock().now();
    let mut calls = 0;
    for _ in 0..s.measure_rounds {
        calls += skewed_round(&targets, &drivers, s);
    }
    let virt_seconds = d.clock().now() - t0;
    let snap = d.obs().snapshot();

    let dir_reads =
        snap.metrics.counter_total("dir.reads") - snap0.metrics.counter_total("dir.reads");
    let lease_local = snap.metrics.counter_total("dir.lease.local_reads")
        - snap0.metrics.counter_total("dir.lease.local_reads");
    let migrations = d.affinity_stats().migrations;
    d.shutdown();

    Row {
        placement,
        leases,
        virt_seconds,
        calls,
        affinity_migrations: migrations,
        dir_reads,
        lease_local_reads: lease_local,
        lease_ratio: if dir_reads > 0 {
            lease_local as f64 / dir_reads as f64
        } else {
            0.0
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let executor = args
        .iter()
        .position(|a| a == "--executor")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    let s = if quick {
        Scenario {
            nodes: 4,
            targets: 6,
            warmup_rounds: 1,
            measure_rounds: 2,
            scale: 5e-3,
            executor,
        }
    } else {
        Scenario {
            nodes: 8,
            targets: 21,
            warmup_rounds: 2,
            measure_rounds: 3,
            scale: 1e-2,
            executor,
        }
    };
    // The quick grid keeps its assertion margin loose: fewer calls mean the
    // harness's real-time overhead weighs more against the modeled WAN gap.
    let min_speedup = if quick { 1.2 } else { 1.5 };

    println!(
        "{:>10} {:>7} {:>10} {:>7} {:>11} {:>10} {:>12} {:>7}",
        "placement",
        "leases",
        "virt[s]",
        "calls",
        "migrations",
        "dir_reads",
        "lease_local",
        "ratio"
    );
    let mut rows = Vec::new();
    for placement in [false, true] {
        for leases in [false, true] {
            let row = run_cell(&s, placement, leases);
            println!(
                "{:>10} {:>7} {:>10.3} {:>7} {:>11} {:>10} {:>12} {:>7.3}",
                row.placement,
                row.leases,
                row.virt_seconds,
                row.calls,
                row.affinity_migrations,
                row.dir_reads,
                row.lease_local_reads,
                row.lease_ratio
            );
            rows.push(row);
        }
    }

    // Shape checks — the grid must actually demonstrate the two effects.
    let cell = |placement: bool, leases: bool| {
        rows.iter()
            .find(|r| r.placement == placement && r.leases == leases)
            .unwrap()
    };
    for r in &rows {
        if r.placement {
            assert!(
                r.affinity_migrations as usize >= s.targets,
                "affinity on but only {} of {} targets migrated",
                r.affinity_migrations,
                s.targets
            );
        } else {
            assert_eq!(r.affinity_migrations, 0, "affinity off must never migrate");
        }
        assert!(r.dir_reads > 0, "no directory reads after settling");
        if r.leases {
            assert!(
                r.lease_local_reads * 10 >= r.dir_reads * 9,
                "steady-state reads should be >=90% lease-served: {}/{}",
                r.lease_local_reads,
                r.dir_reads
            );
        } else {
            assert_eq!(r.lease_local_reads, 0, "leases off must never lease-read");
        }
    }
    for leases in [false, true] {
        let speedup = cell(false, leases).virt_seconds / cell(true, leases).virt_seconds;
        println!(
            "affinity speedup on the caller-skewed workload (leases {}): {speedup:.2}x",
            if leases { "on" } else { "off" }
        );
        assert!(
            speedup >= min_speedup,
            "expected >= {min_speedup}x from co-location, got {speedup:.2}x"
        );
    }

    match write_json("ablate_affinity", &rows) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
