//! E7 — parameter-aggregation-plane ablation: constraint-aware placement
//! and component parameter queries with the plane on and off
//! (DESIGN.md §9).
//!
//! Two claims are checked: (a) the indexed fast path (sample cache +
//! placement heap + incremental rollups) makes repeated `alloc_any` and
//! component `get_sys_param` queries substantially cheaper than the
//! recompute-from-scratch slow path on a 64-machine domain, and (b) it is
//! invisible to the model — both paths pick the exact same machines in the
//! exact same order for the whole run.
//!
//! The clock is effectively frozen (1e9 real seconds per virtual second),
//! so both sides see bit-identical samples and the comparison is exact.

use jsym_bench::write_json;
use jsym_net::{NodeId, SimClock, TimeScale};
use jsym_sysmon::{JsConstraints, LoadModel, LoadProfile, MachineSpec, SimMachine, SysParam};
use jsym_vda::{PlaneConfig, ResourcePool, VdaRegistry};
use serde::Serialize;
use std::time::Instant;

const MACHINES: usize = 64;
const CLUSTER: usize = 16;
const ALLOCS_PER_ITER: usize = 8;

#[derive(Serialize)]
struct Row {
    scenario: String,
    nodes: usize,
    iters: usize,
    wall_seconds: f64,
    micros_per_op: f64,
    speedup_vs_slow: f64,
    identical_decisions: bool,
}

fn build_pool(clock: &SimClock) -> ResourcePool {
    let pool = ResourcePool::new();
    for i in 0..MACHINES {
        pool.add_machine(SimMachine::new(
            MachineSpec::generic(&format!("m{i}"), 50.0, 256.0),
            LoadModel::new(
                LoadProfile::Constant((i * 37 % 90) as f64 / 100.0),
                i as u64,
            ),
            clock.clone(),
        ));
    }
    pool
}

fn constraints() -> JsConstraints {
    let mut c = JsConstraints::new();
    c.set(SysParam::CpuLoad1, "<=", 0.8);
    c.set(SysParam::NodeName, "!=", "m13");
    c
}

/// One workload pass: `iters` rounds of (8 constrained single-node
/// allocations, one cluster-level parameter query, free the 8). Returns the
/// wall time and the full placement-decision sequence.
fn run(reg: &VdaRegistry, iters: usize) -> (f64, Vec<NodeId>) {
    let cluster = reg
        .request_cluster(CLUSTER, None)
        .expect("component cluster");
    let constr = constraints();
    let mut decisions = Vec::with_capacity(iters * ALLOCS_PER_ITER);
    let t0 = Instant::now();
    for _ in 0..iters {
        let mut batch = Vec::with_capacity(ALLOCS_PER_ITER);
        for _ in 0..ALLOCS_PER_ITER {
            let n = reg
                .request_node_constrained(&constr)
                .expect("pool has satisfying free machines");
            decisions.push(n.phys());
            batch.push(n);
        }
        cluster
            .get_sys_param(SysParam::CpuLoad1)
            .expect("component parameter");
        for n in batch {
            n.free().expect("allocated node frees");
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    cluster.free().expect("cluster frees");
    (wall, decisions)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters = if quick { 40 } else { 2000 };
    // Ops per iteration: 8 allocations + 8 frees + 1 component query.
    let ops = iters * (2 * ALLOCS_PER_ITER + 1);

    let clock = SimClock::new(TimeScale::new(1e9));
    let slow = VdaRegistry::new(build_pool(&clock));
    let fast = VdaRegistry::new(build_pool(&clock));
    fast.set_plane_config(PlaneConfig {
        enabled: true,
        ttl: 60.0,
        ..PlaneConfig::default()
    });

    let (slow_wall, slow_decisions) = run(&slow, iters);
    let (fast_wall, fast_decisions) = run(&fast, iters);
    let identical = slow_decisions == fast_decisions;
    assert!(
        identical,
        "fast path diverged from slow path: {} vs {} decisions",
        fast_decisions.len(),
        slow_decisions.len()
    );

    let stats = fast.plane_stats();
    println!(
        "{MACHINES} machines, {iters} iters x ({ALLOCS_PER_ITER} allocs + 1 query): \
         slow {slow_wall:.3}s, fast {fast_wall:.3}s, speedup {:.1}x",
        slow_wall / fast_wall
    );
    println!(
        "plane: {} cache hits, {} misses, heap {} free machines",
        stats.hits, stats.misses, stats.heap
    );
    println!(
        "identical decisions: {identical} ({} placements)",
        slow_decisions.len()
    );

    let rows = vec![
        Row {
            scenario: "slow: recompute per query".into(),
            nodes: MACHINES,
            iters,
            wall_seconds: slow_wall,
            micros_per_op: slow_wall * 1e6 / ops as f64,
            speedup_vs_slow: 1.0,
            identical_decisions: identical,
        },
        Row {
            scenario: "fast: aggregation plane".into(),
            nodes: MACHINES,
            iters,
            wall_seconds: fast_wall,
            micros_per_op: fast_wall * 1e6 / ops as f64,
            speedup_vs_slow: slow_wall / fast_wall,
            identical_decisions: identical,
        },
    ];
    let path = write_json("ablate_placement", &rows).expect("write results");
    println!("wrote {}", path.display());
}
