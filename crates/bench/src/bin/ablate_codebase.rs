//! E3 — selective vs full classloading (paper §4.3).
//!
//! 16 class artifacts, 13 nodes. *Full* replication ships every artifact to
//! every node (what plain Java codebases do); *selective* loading ships each
//! artifact only to the two nodes that actually instantiate its class. The
//! paper's claim: "This feature can reduce the overall memory requirement
//! of an application."

use jsym_bench::write_json;
use jsym_cluster::catalog::{testbed_machines, LoadKind};
use jsym_core::JsShell;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    strategy: String,
    artifacts: usize,
    nodes: usize,
    bytes_shipped: u64,
    total_resident_bytes: u64,
    load_virt_seconds: f64,
}

const ARTIFACTS: usize = 16;
const ARTIFACT_BYTES: usize = 250_000;

fn run(selective: bool) -> Row {
    let d = JsShell::new()
        .time_scale(1e-2)
        .add_machines(testbed_machines(13, LoadKind::Dedicated, 0))
        .boot();
    let reg = d.register_app().unwrap();
    let cb = reg.codebase();
    for k in 0..ARTIFACTS {
        cb.add(&format!("classes-{k}.jar"), ARTIFACT_BYTES);
    }
    let machines = d.machines();
    let clock = d.clock().clone();
    let net_before = d.net_stats().bytes_sent;
    let t0 = clock.now();

    if selective {
        // Each artifact goes only to the two nodes that need it. The
        // codebase API loads whole codebases, so build one per artifact —
        // exactly what a locality-conscious application would do.
        for k in 0..ARTIFACTS {
            let cb_k = reg.codebase();
            cb_k.add(&format!("classes-{k}.jar"), ARTIFACT_BYTES);
            cb_k.load_phys(machines[k % machines.len()]).unwrap();
            cb_k.load_phys(machines[(k + 1) % machines.len()]).unwrap();
        }
    } else {
        for &m in &machines {
            cb.load_phys(m).unwrap();
        }
    }
    let load_virt_seconds = clock.now() - t0;
    let bytes_shipped = d.net_stats().bytes_sent - net_before;
    let total_resident_bytes: u64 = machines
        .iter()
        .map(|&m| d.pool().machine(m).unwrap().runtime_bytes())
        .sum();
    let row = Row {
        strategy: if selective { "selective" } else { "full" }.into(),
        artifacts: ARTIFACTS,
        nodes: machines.len(),
        bytes_shipped,
        total_resident_bytes,
        load_virt_seconds,
    };
    d.shutdown();
    row
}

fn main() {
    println!(
        "{:>10} {:>10} {:>6} {:>14} {:>16} {:>10}",
        "strategy", "artifacts", "nodes", "shipped[B]", "resident[B]", "load[s]"
    );
    let mut rows = Vec::new();
    for selective in [false, true] {
        let row = run(selective);
        println!(
            "{:>10} {:>10} {:>6} {:>14} {:>16} {:>10.3}",
            row.strategy,
            row.artifacts,
            row.nodes,
            row.bytes_shipped,
            row.total_resident_bytes,
            row.load_virt_seconds
        );
        rows.push(row);
    }
    let full = &rows[0];
    let sel = &rows[1];
    println!(
        "\nselective loading uses {:.1}x less memory and ships {:.1}x fewer bytes",
        full.total_resident_bytes as f64 / sel.total_resident_bytes as f64,
        full.bytes_shipped as f64 / sel.bytes_shipped as f64,
    );
    if let Ok(path) = write_json("ablate_codebase", &rows) {
        eprintln!("wrote {}", path.display());
    }
}
