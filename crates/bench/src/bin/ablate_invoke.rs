//! E1 — invocation-mode ablation: sinvoke vs ainvoke vs oinvoke.
//!
//! Measures (a) synchronous round-trip latency as payload grows, (b) the
//! overlap advantage of asynchronous invocation (the paper's motivation for
//! `ainvoke`: "overlapping of waiting time ... with some useful local
//! computations"), and (c) the cost of a one-sided stream.

use jsym_bench::write_json;
use jsym_core::testkit::{register_test_classes, shell_with_idle_machines};
use jsym_core::{JsObj, Placement, Value};
use jsym_net::NodeId;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    mode: String,
    payload_bytes: usize,
    virt_seconds: f64,
    note: String,
}

fn main() {
    // Five idle 50 Mflop/s machines, 100x faster than real time: one
    // caller plus four workers.
    let d = shell_with_idle_machines(5).time_scale(1e-2).boot();
    register_test_classes(&d);
    let reg = d.register_app().unwrap();
    let obj = JsObj::create(&reg, "Counter", &[], Placement::OnPhys(NodeId(1)), None).unwrap();
    let clock = d.clock().clone();
    let mut rows = Vec::new();

    println!("{:>8} {:>12} {:>12}  note", "mode", "payload[B]", "time[s]");

    // (a) Synchronous latency vs payload.
    for &size in &[0usize, 1 << 10, 1 << 16, 1 << 20] {
        let payload = Value::floats(vec![0.0; size / 4]);
        // Warm once, then average 5 round trips.
        obj.sinvoke("echo", std::slice::from_ref(&payload)).unwrap();
        let t0 = clock.now();
        const REPS: usize = 5;
        for _ in 0..REPS {
            obj.sinvoke("echo", std::slice::from_ref(&payload)).unwrap();
        }
        let per = (clock.now() - t0) / REPS as f64;
        println!("{:>8} {:>12} {:>12.4}  round trip", "sinvoke", size, per);
        rows.push(Row {
            mode: "sinvoke".into(),
            payload_bytes: size,
            virt_seconds: per,
            note: "round trip".into(),
        });
    }

    // (b) Overlap: K remote computations, one worker object per machine,
    // issued synchronously (each blocks) vs asynchronously (all in flight
    // while the caller does useful local work). Each computes 20 Mflop
    // (0.4 virtual s on its worker).
    const K: usize = 4;
    let workers: Vec<JsObj> = (1..=K)
        .map(|i| {
            JsObj::create(
                &reg,
                "Counter",
                &[],
                Placement::OnPhys(NodeId(i as u32)),
                None,
            )
            .unwrap()
        })
        .collect();
    let work = Value::F64(20e6);
    let t0 = clock.now();
    for w in &workers {
        w.sinvoke("compute", std::slice::from_ref(&work)).unwrap();
    }
    let sync_total = clock.now() - t0;

    let t0 = clock.now();
    let handles: Vec<_> = workers
        .iter()
        .map(|w| w.ainvoke("compute", std::slice::from_ref(&work)).unwrap())
        .collect();
    // "Useful local computation" while the remotes work.
    let local = d.pool().machine(NodeId(0)).unwrap();
    local.compute(10e6);
    for h in handles {
        h.get_result().unwrap();
    }
    let async_total = clock.now() - t0;
    println!(
        "{:>8} {:>12} {:>12.4}  {K} computations, serialized",
        "sinvoke", 8, sync_total
    );
    println!(
        "{:>8} {:>12} {:>12.4}  {K} computations + local work, overlapped issue",
        "ainvoke", 8, async_total
    );
    rows.push(Row {
        mode: "sinvoke-seq".into(),
        payload_bytes: 8,
        virt_seconds: sync_total,
        note: format!("{K} computations serialized"),
    });
    rows.push(Row {
        mode: "ainvoke-overlap".into(),
        payload_bytes: 8,
        virt_seconds: async_total,
        note: format!("{K} computations overlapped with local work"),
    });

    // (c) One-sided stream: N updates, then one synchronous read to flush.
    const STREAM: usize = 50;
    let t0 = clock.now();
    for _ in 0..STREAM {
        obj.oinvoke("add", &[Value::I64(1)]).unwrap();
    }
    let issue_time = clock.now() - t0;
    let v = obj.sinvoke("get", &[]).unwrap();
    let flush_time = clock.now() - t0;
    println!(
        "{:>8} {:>12} {:>12.4}  issuing {STREAM} one-sided updates",
        "oinvoke", 8, issue_time
    );
    println!(
        "{:>8} {:>12} {:>12.4}  until all applied (final value {v:?})",
        "oinvoke", 8, flush_time
    );
    rows.push(Row {
        mode: "oinvoke-issue".into(),
        payload_bytes: 8,
        virt_seconds: issue_time,
        note: format!("{STREAM} one-sided updates issued"),
    });
    rows.push(Row {
        mode: "oinvoke-flush".into(),
        payload_bytes: 8,
        virt_seconds: flush_time,
        note: "until all applied".into(),
    });

    if let Ok(path) = write_json("ablate_invoke", &rows) {
        eprintln!("wrote {}", path.display());
    }
    reg.unregister().unwrap();
    d.shutdown();
}
