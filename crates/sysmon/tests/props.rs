//! Property-based tests for the system-parameter model.

use jsym_sysmon::{
    aggregate, Constraint, JsConstraints, LoadModel, LoadProfile, MachineSpec, ParamValue, RelOp,
    SysParam, SysSnapshot,
};
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = RelOp> {
    prop_oneof![
        Just(RelOp::Lt),
        Just(RelOp::Le),
        Just(RelOp::Gt),
        Just(RelOp::Ge),
        Just(RelOp::Eq),
        Just(RelOp::Ne),
    ]
}

fn full_snapshot(cpu: f64, seed: u64, t: f64) -> SysSnapshot {
    let spec = MachineSpec::generic("prop", 15.0, 192.0);
    let load = LoadModel::new(LoadProfile::Constant(cpu), seed).sample(t, &spec);
    SysSnapshot::for_machine(&spec, &load, 0.0, 0.0, t)
}

proptest! {
    /// `op` and `op.negate()` partition all numeric comparisons.
    #[test]
    fn negation_is_complementary(op in arb_op(), l in -1e6f64..1e6, r in -1e6f64..1e6) {
        prop_assert_ne!(op.eval_num(l, r), op.negate().eval_num(l, r));
    }

    /// A constraint and its negation can never both hold on the same snapshot.
    #[test]
    fn constraint_and_negation_disjoint(
        op in arb_op(),
        threshold in 0.0f64..100.0,
        cpu in 0.0f64..0.9,
    ) {
        let snap = full_snapshot(cpu, 1, 10.0);
        let c = Constraint { param: SysParam::IdlePct, op, value: ParamValue::Num(threshold) };
        let n = Constraint { param: SysParam::IdlePct, op: op.negate(), value: ParamValue::Num(threshold) };
        prop_assert!(c.holds(&snap) != n.holds(&snap));
    }

    /// Adding constraints can only shrink the admitted set (conjunction is
    /// monotone).
    #[test]
    fn conjunction_is_monotone(
        cpu in 0.0f64..0.9,
        t1 in 0.0f64..100.0,
        t2 in 0.0f64..100.0,
    ) {
        let snap = full_snapshot(cpu, 2, 5.0);
        let mut small = JsConstraints::new();
        small.set(SysParam::IdlePct, ">=", t1);
        let mut big = small.clone();
        big.set(SysParam::AvailMem, ">=", t2);
        if big.holds(&snap) {
            prop_assert!(small.holds(&snap));
        }
    }

    /// The average of numeric parameters lies within the min/max envelope of
    /// its inputs.
    #[test]
    fn average_within_envelope(cpus in proptest::collection::vec(0.0f64..0.9, 1..8)) {
        let snaps: Vec<SysSnapshot> = cpus
            .iter()
            .enumerate()
            .map(|(i, &c)| full_snapshot(c, i as u64, 1.0))
            .collect();
        let avg = aggregate::average(&snaps);
        for param in [SysParam::IdlePct, SysParam::AvailMem, SysParam::NumProcesses] {
            let vals: Vec<f64> = snaps.iter().filter_map(|s| s.num(param)).collect();
            let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let a = avg.num(param).unwrap();
            prop_assert!(a >= lo - 1e-9 && a <= hi + 1e-9, "{param}: {a} outside [{lo}, {hi}]");
        }
    }

    /// Averaging is permutation-invariant.
    #[test]
    fn average_order_independent(cpus in proptest::collection::vec(0.0f64..0.9, 2..6)) {
        let snaps: Vec<SysSnapshot> = cpus
            .iter()
            .enumerate()
            .map(|(i, &c)| full_snapshot(c, i as u64, 1.0))
            .collect();
        let mut rev = snaps.clone();
        rev.reverse();
        let a = aggregate::average(&snaps);
        let b = aggregate::average(&rev);
        for param in SysParam::ALL {
            match (a.num(param), b.num(param)) {
                (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9),
                (x, y) => prop_assert_eq!(x.is_some(), y.is_some()),
            }
        }
    }

    /// Load models always emit utilisation within [0, 0.97] regardless of
    /// profile parameters.
    #[test]
    fn load_bounded(
        base in -1.0f64..2.0,
        level in -1.0f64..2.0,
        t in 0.0f64..10_000.0,
        seed in any::<u64>(),
    ) {
        for profile in [
            LoadProfile::Spike { base, level, start: 100.0, end: 200.0 },
            LoadProfile::RandomWalk { mean: base, step: level.abs().min(1.0), period: 10.0 },
            LoadProfile::Bursts {
                probability: level.clamp(0.0, 1.0),
                period: 50.0,
                duration: 120.0,
                level,
                base,
            },
        ] {
            let m = LoadModel::new(profile, seed);
            let v = m.cpu_at(t);
            prop_assert!((0.0..=0.97).contains(&v), "out of bounds: {v}");
        }
    }

    /// Snapshots are pure functions of (spec, load, time).
    #[test]
    fn snapshot_is_deterministic(cpu in 0.0f64..0.9, t in 0.0f64..1000.0) {
        prop_assert_eq!(full_snapshot(cpu, 9, t), full_snapshot(cpu, 9, t));
    }
}
