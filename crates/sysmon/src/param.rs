//! The system-parameter catalogue.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A hardware/software system parameter (paper §4.2 / §5.1).
///
/// *Static* parameters do not change while an application executes (machine
/// name, OS, CPU type, peak performance, total memory, ...); *dynamic*
/// parameters do (CPU load, idle time, available memory, context switches,
/// network latency/bandwidth, ...). The paper reports "close to 40" — this
/// catalogue has 44.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variant names mirror the paper's JSConstants and are self-describing
pub enum SysParam {
    // -------- static --------
    NodeName,
    IpAddress,
    OsName,
    OsVersion,
    CpuType,
    CpuCount,
    CpuMhz,
    PeakMflops,
    TotalMem,
    TotalSwap,
    TotalDisk,
    JvmVersion,
    JvmMaxHeap,
    NetType,
    // -------- dynamic: CPU --------
    CpuLoad1,
    CpuLoad5,
    CpuLoad15,
    CpuUserPct,
    CpuSysPct,
    IdlePct,
    RunQueueLen,
    // -------- dynamic: memory --------
    AvailMem,
    AvailSwap,
    SwapSpaceRatio,
    JvmHeapUsed,
    // -------- dynamic: processes --------
    NumProcesses,
    NumThreads,
    LoggedInUsers,
    // -------- dynamic: kernel activity --------
    ContextSwitches,
    SysCalls,
    Interrupts,
    PageFaults,
    PageIns,
    PageOuts,
    // -------- dynamic: network --------
    NetLatency,
    NetBandwidth,
    NetPacketsIn,
    NetPacketsOut,
    NetBytesIn,
    NetBytesOut,
    // -------- dynamic: disk / misc --------
    DiskFree,
    DiskReads,
    DiskWrites,
    UptimeSecs,
}

impl SysParam {
    /// All parameters, in catalogue order.
    pub const ALL: [SysParam; 44] = [
        SysParam::NodeName,
        SysParam::IpAddress,
        SysParam::OsName,
        SysParam::OsVersion,
        SysParam::CpuType,
        SysParam::CpuCount,
        SysParam::CpuMhz,
        SysParam::PeakMflops,
        SysParam::TotalMem,
        SysParam::TotalSwap,
        SysParam::TotalDisk,
        SysParam::JvmVersion,
        SysParam::JvmMaxHeap,
        SysParam::NetType,
        SysParam::CpuLoad1,
        SysParam::CpuLoad5,
        SysParam::CpuLoad15,
        SysParam::CpuUserPct,
        SysParam::CpuSysPct,
        SysParam::IdlePct,
        SysParam::RunQueueLen,
        SysParam::AvailMem,
        SysParam::AvailSwap,
        SysParam::SwapSpaceRatio,
        SysParam::JvmHeapUsed,
        SysParam::NumProcesses,
        SysParam::NumThreads,
        SysParam::LoggedInUsers,
        SysParam::ContextSwitches,
        SysParam::SysCalls,
        SysParam::Interrupts,
        SysParam::PageFaults,
        SysParam::PageIns,
        SysParam::PageOuts,
        SysParam::NetLatency,
        SysParam::NetBandwidth,
        SysParam::NetPacketsIn,
        SysParam::NetPacketsOut,
        SysParam::NetBytesIn,
        SysParam::NetBytesOut,
        SysParam::DiskFree,
        SysParam::DiskReads,
        SysParam::DiskWrites,
        SysParam::UptimeSecs,
    ];

    /// Whether this parameter can change while an application executes.
    pub fn is_dynamic(self) -> bool {
        !matches!(
            self,
            SysParam::NodeName
                | SysParam::IpAddress
                | SysParam::OsName
                | SysParam::OsVersion
                | SysParam::CpuType
                | SysParam::CpuCount
                | SysParam::CpuMhz
                | SysParam::PeakMflops
                | SysParam::TotalMem
                | SysParam::TotalSwap
                | SysParam::TotalDisk
                | SysParam::JvmVersion
                | SysParam::JvmMaxHeap
                | SysParam::NetType
        )
    }

    /// Whether this parameter carries a string value (vs. a number).
    pub fn is_string(self) -> bool {
        matches!(
            self,
            SysParam::NodeName
                | SysParam::IpAddress
                | SysParam::OsName
                | SysParam::OsVersion
                | SysParam::CpuType
                | SysParam::JvmVersion
                | SysParam::NetType
        )
    }
}

impl fmt::Display for SysParam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The value of a system parameter: a number or a string.
///
/// The paper's `setConstraints(system_parameter, relational_operator,
/// number_string)` accepts floating-point/integer numbers or strings; this is
/// the Rust counterpart of `number_string`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// A numeric value (all integer parameters are widened to `f64`).
    Num(f64),
    /// A string value (machine names, OS names, CPU types, ...).
    Str(String),
}

impl ParamValue {
    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            ParamValue::Num(n) => Some(*n),
            ParamValue::Str(_) => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ParamValue::Num(_) => None,
            ParamValue::Str(s) => Some(s),
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Num(n) => write!(f, "{n}"),
            ParamValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::Num(v)
    }
}
impl From<f32> for ParamValue {
    fn from(v: f32) -> Self {
        ParamValue::Num(v as f64)
    }
}
impl From<i32> for ParamValue {
    fn from(v: i32) -> Self {
        ParamValue::Num(v as f64)
    }
}
impl From<u32> for ParamValue {
    fn from(v: u32) -> Self {
        ParamValue::Num(v as f64)
    }
}
impl From<u64> for ParamValue {
    fn from(v: u64) -> Self {
        ParamValue::Num(v as f64)
    }
}
impl From<usize> for ParamValue {
    fn from(v: usize) -> Self {
        ParamValue::Num(v as f64)
    }
}
impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Str(v.to_owned())
    }
}
impl From<String> for ParamValue {
    fn from(v: String) -> Self {
        ParamValue::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalogue_has_no_duplicates_and_is_about_forty() {
        let set: HashSet<_> = SysParam::ALL.iter().collect();
        assert_eq!(set.len(), SysParam::ALL.len());
        assert!(SysParam::ALL.len() >= 40, "paper promises ~40 parameters");
    }

    #[test]
    fn static_dynamic_split() {
        assert!(!SysParam::NodeName.is_dynamic());
        assert!(!SysParam::PeakMflops.is_dynamic());
        assert!(SysParam::IdlePct.is_dynamic());
        assert!(SysParam::AvailMem.is_dynamic());
        assert!(SysParam::ContextSwitches.is_dynamic());
        let n_static = SysParam::ALL.iter().filter(|p| !p.is_dynamic()).count();
        assert_eq!(n_static, 14);
    }

    #[test]
    fn string_params_are_static() {
        for p in SysParam::ALL {
            if p.is_string() {
                assert!(!p.is_dynamic(), "{p} is a string param and must be static");
            }
        }
    }

    #[test]
    fn param_value_accessors() {
        assert_eq!(ParamValue::from(5i32).as_num(), Some(5.0));
        assert_eq!(ParamValue::from("sol").as_str(), Some("sol"));
        assert_eq!(ParamValue::from(2.5f64).as_str(), None);
        assert_eq!(ParamValue::from("x").as_num(), None);
    }

    #[test]
    fn param_value_display() {
        assert_eq!(ParamValue::from(10u32).to_string(), "10");
        assert_eq!(ParamValue::from("rachel").to_string(), "rachel");
    }
}
