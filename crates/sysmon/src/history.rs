//! Bounded measurement history.
//!
//! Paper §5.1: "Storage size for these data is kept reasonably small as only
//! the least recently measured data are kept. Currently we do not maintain a
//! history of measurements, although, it would be easy to support it." We
//! support the small ring the paper hints at; managers keep the latest value
//! plus a short window used by tests and the monitoring experiments.

use crate::{SysParam, SysSnapshot};
use std::collections::VecDeque;

/// A fixed-capacity ring of snapshots, newest last.
#[derive(Clone, Debug)]
pub struct ParamHistory {
    capacity: usize,
    ring: VecDeque<SysSnapshot>,
}

impl ParamHistory {
    /// Creates a history holding at most `capacity` snapshots.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history capacity must be positive");
        ParamHistory {
            capacity,
            ring: VecDeque::with_capacity(capacity),
        }
    }

    /// Appends a snapshot, evicting the oldest when full.
    pub fn push(&mut self, snap: SysSnapshot) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(snap);
    }

    /// The most recent snapshot.
    pub fn latest(&self) -> Option<&SysSnapshot> {
        self.ring.back()
    }

    /// Number of stored snapshots.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &SysSnapshot> {
        self.ring.iter()
    }

    /// Mean of a numeric parameter over the stored window.
    pub fn mean(&self, param: SysParam) -> Option<f64> {
        let values: Vec<f64> = self.ring.iter().filter_map(|s| s.num(param)).collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(at: f64, idle: f64) -> SysSnapshot {
        let mut s = SysSnapshot::empty(at);
        s.set(SysParam::IdlePct, idle);
        s
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut h = ParamHistory::new(3);
        for i in 0..5 {
            h.push(snap(i as f64, i as f64 * 10.0));
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.iter().next().unwrap().at, 2.0);
        assert_eq!(h.latest().unwrap().at, 4.0);
    }

    #[test]
    fn mean_over_window() {
        let mut h = ParamHistory::new(4);
        h.push(snap(0.0, 10.0));
        h.push(snap(1.0, 20.0));
        h.push(snap(2.0, 60.0));
        assert_eq!(h.mean(SysParam::IdlePct), Some(30.0));
        assert_eq!(h.mean(SysParam::AvailMem), None);
    }

    #[test]
    fn empty_history() {
        let h = ParamHistory::new(2);
        assert!(h.is_empty());
        assert!(h.latest().is_none());
        assert_eq!(h.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        ParamHistory::new(0);
    }
}
