//! # jsym-sysmon — system parameters, load models and the constraint engine
//!
//! JavaSymphony's runtime exposes "close to 40 different system parameters"
//! (paper §5.1), obtained on Solaris by shelling out through
//! `java.lang.Runtime.exec`. Programmers use them in two ways:
//!
//! * **constraints** (`JSConstraints`) restricting which physical nodes may
//!   join a virtual architecture or host an object, e.g.
//!   `IDLE >= 50 && AVAIL_MEM >= 50 && NODE_NAME != "milena"`;
//! * **direct queries** (`getSysParam`) driving explicit migration decisions.
//!
//! This crate reproduces that machinery for the simulated testbed:
//!
//! * [`SysParam`] — the catalogue of static and dynamic parameters;
//! * [`MachineSpec`] — the static description of a workstation;
//! * [`LoadModel`]/[`LoadProfile`] — deterministic, seeded synthetic load
//!   (including the paper's *day* and *night* regimes);
//! * [`SimMachine`] — a live machine: spec + load + CPU contention, able to
//!   produce [`SysSnapshot`]s and to *execute* modeled work (`compute`);
//! * [`JsConstraints`] — the constraint engine;
//! * [`aggregate`] — the averaging used when cluster/site/domain managers
//!   roll node values up the manager hierarchy.

#![warn(missing_docs)]

pub mod aggregate;
mod cache;
mod constraints;
mod history;
mod load;
mod machine;
mod param;
mod simmachine;
mod snapshot;

pub use aggregate::ParamRollup;
pub use cache::{CacheStats, SampleCache};
pub use constraints::{
    CompiledConstraints, Constraint, IntoParamValue, IntoRelOp, JsConstraints, RelOp,
};
pub use history::ParamHistory;
pub use load::{LoadModel, LoadProfile, UserLoad};
pub use machine::MachineSpec;
pub use param::{ParamValue, SysParam};
pub use simmachine::SimMachine;
pub use snapshot::SysSnapshot;
