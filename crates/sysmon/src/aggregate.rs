//! Hierarchical aggregation of snapshots.
//!
//! Paper §5.1: "The nodes forward the observed system parameters to their
//! associated cluster manager which *averages* these values across all
//! cluster nodes and stores them locally. The cluster manager forwards these
//! data to the site manager ... and finally sends averaged values to the
//! domain manager." System parameters for clusters, sites and domains are
//! therefore the mean over the contained nodes; string-valued parameters are
//! kept only when uniform.

use crate::{ParamValue, SysParam, SysSnapshot};
use jsym_net::VirtTime;
use std::collections::BTreeMap;

/// Averages a set of node snapshots into a component snapshot.
///
/// * numeric parameters: arithmetic mean over the snapshots that carry them;
/// * string parameters: kept if every snapshot agrees, dropped otherwise;
/// * `at`: the latest constituent timestamp.
///
/// Returns an empty snapshot for empty input.
pub fn average(snapshots: &[SysSnapshot]) -> SysSnapshot {
    if snapshots.is_empty() {
        return SysSnapshot::empty(0.0);
    }
    let at = snapshots.iter().map(|s| s.at).fold(f64::MIN, f64::max);
    let mut out = SysSnapshot::empty(at);

    let mut sums: BTreeMap<SysParam, (f64, usize)> = BTreeMap::new();
    let mut strings: BTreeMap<SysParam, Option<&str>> = BTreeMap::new();

    for snap in snapshots {
        for (&param, value) in snap.iter() {
            match value {
                ParamValue::Num(n) => {
                    let e = sums.entry(param).or_insert((0.0, 0));
                    e.0 += n;
                    e.1 += 1;
                }
                ParamValue::Str(s) => {
                    strings
                        .entry(param)
                        .and_modify(|cur| {
                            if *cur != Some(s.as_str()) {
                                *cur = None; // disagreement: drop
                            }
                        })
                        .or_insert(Some(s.as_str()));
                }
            }
        }
    }

    for (param, (sum, count)) in sums {
        out.set(param, sum / count as f64);
    }
    for (param, s) in strings {
        if let Some(s) = s {
            // A string param present in only a subset is still not uniform
            // across the component; require full coverage.
            let coverage = snapshots
                .iter()
                .filter(|snap| snap.str(param) == Some(s))
                .count();
            if coverage == snapshots.len() {
                out.set(param, s);
            }
        }
    }
    out
}

/// Averages pre-aggregated component snapshots weighted by node count —
/// used when a site manager combines cluster averages of different sizes so
/// the site average still equals the average over all its nodes.
pub fn weighted_average(components: &[(SysSnapshot, usize)]) -> SysSnapshot {
    if components.is_empty() {
        return SysSnapshot::empty(0.0);
    }
    let at = components
        .iter()
        .map(|(s, _)| s.at)
        .fold(f64::MIN, f64::max);
    let mut out = SysSnapshot::empty(at);
    let mut sums: BTreeMap<SysParam, (f64, f64)> = BTreeMap::new();
    for (snap, weight) in components {
        let w = (*weight).max(1) as f64;
        for (&param, value) in snap.iter() {
            if let ParamValue::Num(n) = value {
                let e = sums.entry(param).or_insert((0.0, 0.0));
                e.0 += n * w;
                e.1 += w;
            }
        }
    }
    for (param, (sum, wsum)) in sums {
        out.set(param, sum / wsum);
    }
    out
}

/// Incrementally maintained component aggregate: the running
/// sum-and-count per parameter that a cluster/site/domain manager keeps so
/// its averaged snapshot never has to be recomputed by descent.
///
/// [`ParamRollup::to_snapshot`] reproduces [`average`] over the multiset of
/// contributed snapshots:
///
/// * numeric parameters: arithmetic mean over contributions carrying them;
/// * string parameters: kept only when every contribution carries the same
///   value (uniformity **and** full coverage, as in [`average`]);
/// * `at`: high-water mark of contribution timestamps. Removing the newest
///   contribution cannot lower the mark — acceptable, since `at` only
///   answers "no older than".
///
/// Floating-point caveat: `remove` subtracts from a running sum, so a long
/// add/remove history can drift from a from-scratch recomputation by normal
/// cancellation error. The differential property tests bound this at 1e-6
/// relative; a rollup rebuilt from live contributions is bitwise identical
/// to [`average`] because both fold in ascending order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParamRollup {
    count: usize,
    at: VirtTime,
    nums: BTreeMap<SysParam, (f64, usize)>,
    strs: BTreeMap<SysParam, BTreeMap<String, usize>>,
}

impl ParamRollup {
    /// An empty rollup (no contributions).
    pub fn new() -> Self {
        ParamRollup::default()
    }

    /// Adds one node snapshot to the aggregate.
    pub fn add(&mut self, snap: &SysSnapshot) {
        self.count += 1;
        self.at = self.at.max(snap.at);
        for (&param, value) in snap.iter() {
            match value {
                ParamValue::Num(n) => {
                    let e = self.nums.entry(param).or_insert((0.0, 0));
                    e.0 += n;
                    e.1 += 1;
                }
                ParamValue::Str(s) => {
                    *self
                        .strs
                        .entry(param)
                        .or_default()
                        .entry(s.clone())
                        .or_insert(0) += 1;
                }
            }
        }
    }

    /// Removes one previously added snapshot from the aggregate.
    ///
    /// The caller must pass the exact snapshot it contributed (the registry
    /// keeps each node's live contribution for this purpose); removing a
    /// never-added snapshot corrupts the aggregate.
    pub fn remove(&mut self, snap: &SysSnapshot) {
        self.count = self.count.saturating_sub(1);
        for (&param, value) in snap.iter() {
            match value {
                ParamValue::Num(n) => {
                    if let Some(e) = self.nums.get_mut(&param) {
                        e.0 -= n;
                        e.1 = e.1.saturating_sub(1);
                        if e.1 == 0 {
                            self.nums.remove(&param);
                        }
                    }
                }
                ParamValue::Str(s) => {
                    if let Some(m) = self.strs.get_mut(&param) {
                        if let Some(c) = m.get_mut(s.as_str()) {
                            *c = c.saturating_sub(1);
                            if *c == 0 {
                                m.remove(s.as_str());
                            }
                        }
                        if m.is_empty() {
                            self.strs.remove(&param);
                        }
                    }
                }
            }
        }
    }

    /// Swaps one contribution for a fresher sample of the same node.
    pub fn replace(&mut self, old: &SysSnapshot, new: &SysSnapshot) {
        self.remove(old);
        self.add(new);
    }

    /// Number of contributions.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the rollup has no contributions.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Materializes the averaged component snapshot.
    pub fn to_snapshot(&self) -> SysSnapshot {
        if self.count == 0 {
            return SysSnapshot::empty(0.0);
        }
        let mut out = SysSnapshot::empty(self.at);
        for (&param, &(sum, count)) in &self.nums {
            if count > 0 {
                out.set(param, sum / count as f64);
            }
        }
        for (&param, values) in &self.strs {
            // Uniform across *all* contributions: a single distinct value
            // whose multiplicity covers every contributor.
            if values.len() == 1 {
                let (s, &c) = values.iter().next().unwrap();
                if c == self.count {
                    out.set(param, s.as_str());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(at: f64, idle: f64, name: &str) -> SysSnapshot {
        let mut s = SysSnapshot::empty(at);
        s.set(SysParam::IdlePct, idle);
        s.set(SysParam::NodeName, name);
        s.set(SysParam::OsName, "SunOS");
        s
    }

    #[test]
    fn numeric_params_are_averaged() {
        let avg = average(&[snap(1.0, 80.0, "a"), snap(2.0, 40.0, "b")]);
        assert_eq!(avg.num(SysParam::IdlePct), Some(60.0));
        assert_eq!(avg.at, 2.0);
    }

    #[test]
    fn uniform_strings_survive_divergent_dropped() {
        let avg = average(&[snap(0.0, 1.0, "a"), snap(0.0, 1.0, "b")]);
        assert_eq!(avg.str(SysParam::OsName), Some("SunOS"));
        assert_eq!(avg.str(SysParam::NodeName), None);
    }

    #[test]
    fn empty_input_gives_empty_snapshot() {
        let avg = average(&[]);
        assert!(avg.is_empty());
    }

    #[test]
    fn single_snapshot_is_identity_on_numerics() {
        let s = snap(3.0, 55.0, "only");
        let avg = average(std::slice::from_ref(&s));
        assert_eq!(avg.num(SysParam::IdlePct), Some(55.0));
        assert_eq!(avg.str(SysParam::NodeName), Some("only"));
    }

    #[test]
    fn param_missing_from_some_nodes_averages_over_present_ones() {
        let mut a = SysSnapshot::empty(0.0);
        a.set(SysParam::AvailMem, 100.0);
        let b = SysSnapshot::empty(0.0); // lacks AvailMem
        let avg = average(&[a, b]);
        assert_eq!(avg.num(SysParam::AvailMem), Some(100.0));
    }

    #[test]
    fn partially_present_string_is_dropped() {
        let mut a = SysSnapshot::empty(0.0);
        a.set(SysParam::OsName, "SunOS");
        let b = SysSnapshot::empty(0.0);
        let avg = average(&[a, b]);
        assert_eq!(avg.str(SysParam::OsName), None);
    }

    #[test]
    fn weighted_average_respects_node_counts() {
        let mut big = SysSnapshot::empty(1.0);
        big.set(SysParam::IdlePct, 90.0);
        let mut small = SysSnapshot::empty(1.0);
        small.set(SysParam::IdlePct, 30.0);
        // 3 nodes at 90 idle + 1 node at 30 idle = 75 average.
        let avg = weighted_average(&[(big, 3), (small, 1)]);
        assert_eq!(avg.num(SysParam::IdlePct), Some(75.0));
    }

    #[test]
    fn weighted_average_of_nothing_is_empty() {
        assert!(weighted_average(&[]).is_empty());
    }

    #[test]
    fn rollup_of_fresh_adds_matches_average_exactly() {
        let snaps = [
            snap(1.0, 80.0, "a"),
            snap(2.0, 40.0, "b"),
            snap(3.0, 63.0, "c"),
        ];
        let mut r = ParamRollup::new();
        for s in &snaps {
            r.add(s);
        }
        assert_eq!(r.to_snapshot(), average(&snaps));
    }

    #[test]
    fn rollup_remove_tracks_average_of_remaining() {
        let a = snap(1.0, 80.0, "a");
        let b = snap(2.0, 40.0, "b");
        let mut r = ParamRollup::new();
        r.add(&a);
        r.add(&b);
        r.remove(&a);
        let got = r.to_snapshot();
        assert_eq!(got.num(SysParam::IdlePct), Some(40.0));
        // With only "b" left, NodeName is uniform again.
        assert_eq!(got.str(SysParam::NodeName), Some("b"));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn rollup_replace_swaps_a_contribution() {
        let old = snap(1.0, 80.0, "a");
        let new = snap(5.0, 20.0, "a");
        let other = snap(1.0, 40.0, "b");
        let mut r = ParamRollup::new();
        r.add(&old);
        r.add(&other);
        r.replace(&old, &new);
        assert_eq!(r.to_snapshot().num(SysParam::IdlePct), Some(30.0));
        assert_eq!(r.to_snapshot().at, 5.0);
    }

    #[test]
    fn rollup_string_coverage_rule_matches_average() {
        // OsName present on only one of two contributions must be dropped,
        // exactly as `average` drops partially-present strings.
        let mut a = SysSnapshot::empty(0.0);
        a.set(SysParam::OsName, "SunOS");
        let b = SysSnapshot::empty(0.0);
        let mut r = ParamRollup::new();
        r.add(&a);
        r.add(&b);
        assert_eq!(r.to_snapshot().str(SysParam::OsName), None);
        assert_eq!(average(&[a, b]).str(SysParam::OsName), None);
    }

    #[test]
    fn empty_rollup_is_empty_snapshot() {
        let mut r = ParamRollup::new();
        assert!(r.is_empty());
        assert!(r.to_snapshot().is_empty());
        let s = snap(1.0, 10.0, "x");
        r.add(&s);
        r.remove(&s);
        assert!(
            r.to_snapshot().is_empty(),
            "drained rollup leaves no residue"
        );
    }

    #[test]
    fn hierarchical_equivalence() {
        // Averaging node snapshots directly equals weighted-averaging the
        // cluster averages — the invariant the manager hierarchy relies on.
        let nodes_c1 = vec![
            snap(0.0, 10.0, "a"),
            snap(0.0, 20.0, "b"),
            snap(0.0, 30.0, "c"),
        ];
        let nodes_c2 = vec![snap(0.0, 70.0, "d")];
        let all: Vec<_> = nodes_c1.iter().chain(nodes_c2.iter()).cloned().collect();
        let direct = average(&all);
        let hier = weighted_average(&[
            (average(&nodes_c1), nodes_c1.len()),
            (average(&nodes_c2), nodes_c2.len()),
        ]);
        let d = direct.num(SysParam::IdlePct).unwrap();
        let h = hier.num(SysParam::IdlePct).unwrap();
        assert!((d - h).abs() < 1e-9, "{d} vs {h}");
    }
}
