//! Static machine descriptions.

use serde::{Deserialize, Serialize};

/// Static description of a workstation (the paper's *static* system
/// parameters: name, IP, OS, CPU type, peak performance, memory size, ...).
///
/// `peak_mflops` is the machine's *application-visible* floating-point rate
/// for the modeled workload — for the CLUSTER 2000 reproduction this means
/// "Java 1.2 + JIT on that box", not the hardware peak.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Host name (e.g. `"rachel"`).
    pub name: String,
    /// Model label (e.g. `"Sun Ultra 10/440"`).
    pub model: String,
    /// CPU type string (e.g. `"UltraSPARC-IIi"`).
    pub cpu_type: String,
    /// Clock rate in MHz.
    pub cpu_mhz: u32,
    /// Number of processors (all testbed machines are uniprocessors).
    pub cpu_count: u32,
    /// Application-visible peak floating-point rate in Mflop/s.
    pub peak_mflops: f64,
    /// Physical memory in MB.
    pub total_mem_mb: f64,
    /// Swap space in MB.
    pub total_swap_mb: f64,
    /// Total local disk in MB.
    pub total_disk_mb: f64,
    /// Operating-system name.
    pub os_name: String,
    /// Operating-system version.
    pub os_version: String,
    /// JVM version string (kept for parameter-API parity).
    pub jvm_version: String,
    /// Maximum JVM heap in MB.
    pub jvm_max_heap_mb: f64,
    /// Network attachment label (e.g. `"ethernet-100"`).
    pub net_type: String,
    /// Nominal one-way network latency in milliseconds.
    pub net_latency_ms: f64,
    /// Nominal network bandwidth in Mbit/s.
    pub net_bandwidth_mbps: f64,
    /// IPv4 address string.
    pub ip: String,
}

impl MachineSpec {
    /// A convenient baseline spec; tweak fields as needed.
    pub fn generic(name: &str, peak_mflops: f64, total_mem_mb: f64) -> Self {
        MachineSpec {
            name: name.to_owned(),
            model: "generic".to_owned(),
            cpu_type: "generic-cpu".to_owned(),
            cpu_mhz: 300,
            cpu_count: 1,
            peak_mflops,
            total_mem_mb,
            total_swap_mb: total_mem_mb,
            total_disk_mb: 4096.0,
            os_name: "SunOS".to_owned(),
            os_version: "5.7".to_owned(),
            jvm_version: "1.2.1".to_owned(),
            jvm_max_heap_mb: total_mem_mb / 2.0,
            net_type: "ethernet-100".to_owned(),
            net_latency_ms: 0.9,
            net_bandwidth_mbps: 100.0,
            ip: "10.0.0.1".to_owned(),
        }
    }

    /// Sets the model/CPU description.
    pub fn with_model(mut self, model: &str, cpu_type: &str, cpu_mhz: u32) -> Self {
        self.model = model.to_owned();
        self.cpu_type = cpu_type.to_owned();
        self.cpu_mhz = cpu_mhz;
        self
    }

    /// Sets the network attachment description.
    pub fn with_net(mut self, net_type: &str, latency_ms: f64, bandwidth_mbps: f64) -> Self {
        self.net_type = net_type.to_owned();
        self.net_latency_ms = latency_ms;
        self.net_bandwidth_mbps = bandwidth_mbps;
        self
    }

    /// Sets the IP address.
    pub fn with_ip(mut self, ip: &str) -> Self {
        self.ip = ip.to_owned();
        self
    }

    /// Peak rate in flop/s (rather than Mflop/s).
    pub fn peak_flops(&self) -> f64 {
        self.peak_mflops * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_spec_is_consistent() {
        let m = MachineSpec::generic("rachel", 25.0, 256.0);
        assert_eq!(m.name, "rachel");
        assert_eq!(m.peak_flops(), 25e6);
        assert!(m.jvm_max_heap_mb <= m.total_mem_mb);
    }

    #[test]
    fn builders_apply() {
        let m = MachineSpec::generic("x", 10.0, 128.0)
            .with_model("Sun Ultra 1/170", "UltraSPARC-I", 167)
            .with_net("ethernet-10", 2.5, 10.0)
            .with_ip("192.168.1.7");
        assert_eq!(m.model, "Sun Ultra 1/170");
        assert_eq!(m.cpu_mhz, 167);
        assert_eq!(m.net_bandwidth_mbps, 10.0);
        assert_eq!(m.ip, "192.168.1.7");
    }

    #[test]
    fn specs_compare_by_value() {
        let a = MachineSpec::generic("a", 5.0, 64.0);
        let b = a.clone();
        assert_eq!(a, b);
        let c = b.with_ip("1.2.3.4");
        assert_ne!(a, c);
    }
}
