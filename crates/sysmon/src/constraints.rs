//! The constraint engine (`JSConstraints`, paper §4.2).

use crate::{ParamValue, SysParam, SysSnapshot};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A relational operator in a constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl RelOp {
    /// Parses the operator spellings the paper uses in `setConstraints`.
    pub fn parse(s: &str) -> Option<RelOp> {
        match s {
            "<" => Some(RelOp::Lt),
            "<=" => Some(RelOp::Le),
            ">" => Some(RelOp::Gt),
            ">=" => Some(RelOp::Ge),
            "==" | "=" => Some(RelOp::Eq),
            "!=" | "<>" => Some(RelOp::Ne),
            _ => None,
        }
    }

    /// Applies the operator to two numbers.
    pub fn eval_num(self, lhs: f64, rhs: f64) -> bool {
        match self {
            RelOp::Lt => lhs < rhs,
            RelOp::Le => lhs <= rhs,
            RelOp::Gt => lhs > rhs,
            RelOp::Ge => lhs >= rhs,
            RelOp::Eq => lhs == rhs,
            RelOp::Ne => lhs != rhs,
        }
    }

    /// Applies the operator to two strings (lexicographic for orderings).
    pub fn eval_str(self, lhs: &str, rhs: &str) -> bool {
        match self {
            RelOp::Lt => lhs < rhs,
            RelOp::Le => lhs <= rhs,
            RelOp::Gt => lhs > rhs,
            RelOp::Ge => lhs >= rhs,
            RelOp::Eq => lhs == rhs,
            RelOp::Ne => lhs != rhs,
        }
    }

    /// The logical negation of this operator.
    pub fn negate(self) -> RelOp {
        match self {
            RelOp::Lt => RelOp::Ge,
            RelOp::Le => RelOp::Gt,
            RelOp::Gt => RelOp::Le,
            RelOp::Ge => RelOp::Lt,
            RelOp::Eq => RelOp::Ne,
            RelOp::Ne => RelOp::Eq,
        }
    }
}

impl fmt::Display for RelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RelOp::Lt => "<",
            RelOp::Le => "<=",
            RelOp::Gt => ">",
            RelOp::Ge => ">=",
            RelOp::Eq => "==",
            RelOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// Conversion accepted where an operator is expected — either a [`RelOp`] or
/// one of the paper's string spellings (`"<="`, `"!="`, ...).
pub trait IntoRelOp {
    /// Converts to a [`RelOp`], or `None` for an unknown spelling.
    fn into_rel_op(self) -> Option<RelOp>;
}

impl IntoRelOp for RelOp {
    fn into_rel_op(self) -> Option<RelOp> {
        Some(self)
    }
}
impl IntoRelOp for &str {
    fn into_rel_op(self) -> Option<RelOp> {
        RelOp::parse(self)
    }
}

/// Conversion accepted where a constraint value is expected; re-exported name
/// for the `impl Into<ParamValue>` bound so callers can name it.
pub trait IntoParamValue: Into<ParamValue> {}
impl<T: Into<ParamValue>> IntoParamValue for T {}

/// One `system_parameter relational_operator number_string` constraint.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// The parameter being constrained.
    pub param: SysParam,
    /// The relational operator.
    pub op: RelOp,
    /// The comparison value.
    pub value: ParamValue,
}

impl Constraint {
    /// Evaluates the constraint against a snapshot.
    ///
    /// A parameter missing from the snapshot, or a number/string kind
    /// mismatch, makes the constraint fail — a node the runtime cannot
    /// assess is never admitted.
    pub fn holds(&self, snap: &SysSnapshot) -> bool {
        match (snap.get(self.param), &self.value) {
            (Some(ParamValue::Num(l)), ParamValue::Num(r)) => self.op.eval_num(*l, *r),
            (Some(ParamValue::Str(l)), ParamValue::Str(r)) => self.op.eval_str(l, r),
            _ => false,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.param, self.op, self.value)
    }
}

/// A conjunction of constraints — the Rust `JSConstraints`.
///
/// ```
/// use jsym_sysmon::{JsConstraints, SysParam};
///
/// let mut constr = JsConstraints::new();
/// constr.set(SysParam::NodeName, "!=", "milena");
/// constr.set(SysParam::CpuSysPct, "<=", 10);
/// constr.set(SysParam::IdlePct, ">=", 50);
/// constr.set(SysParam::AvailMem, ">=", 50);
/// constr.set(SysParam::SwapSpaceRatio, "<=", 0.3);
/// assert_eq!(constr.len(), 5);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct JsConstraints {
    constraints: Vec<Constraint>,
}

impl JsConstraints {
    /// An empty (always-satisfied) constraint set.
    pub fn new() -> Self {
        JsConstraints::default()
    }

    /// Adds a constraint, mirroring the paper's
    /// `setConstraints(param, "<=", 10)`.
    ///
    /// # Panics
    /// Panics if `op` is an unknown operator spelling; use
    /// [`JsConstraints::try_set`] to handle that as an error.
    pub fn set(
        &mut self,
        param: SysParam,
        op: impl IntoRelOp,
        value: impl Into<ParamValue>,
    ) -> &mut Self {
        self.try_set(param, op, value)
            .expect("invalid relational operator in JsConstraints::set")
    }

    /// Fallible version of [`JsConstraints::set`].
    pub fn try_set(
        &mut self,
        param: SysParam,
        op: impl IntoRelOp,
        value: impl Into<ParamValue>,
    ) -> Option<&mut Self> {
        let op = op.into_rel_op()?;
        self.constraints.push(Constraint {
            param,
            op,
            value: value.into(),
        });
        Some(self)
    }

    /// Whether every constraint holds for `snap`.
    pub fn holds(&self, snap: &SysSnapshot) -> bool {
        self.constraints.iter().all(|c| c.holds(snap))
    }

    /// The constraints that fail for `snap` (empty ⇒ admitted).
    pub fn failing<'a>(&'a self, snap: &SysSnapshot) -> Vec<&'a Constraint> {
        self.constraints.iter().filter(|c| !c.holds(snap)).collect()
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether the set is empty (always satisfied).
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Iterates over the constraints.
    pub fn iter(&self) -> impl Iterator<Item = &Constraint> {
        self.constraints.iter()
    }

    /// Merges another constraint set into this one (conjunction).
    pub fn and(&mut self, other: &JsConstraints) -> &mut Self {
        self.constraints.extend(other.constraints.iter().cloned());
        self
    }

    /// Precompiles the set into a [`CompiledConstraints`] predicate for
    /// repeated evaluation on a placement hot path.
    pub fn compile(&self) -> CompiledConstraints {
        let mut nums = Vec::new();
        let mut strs = Vec::new();
        for c in &self.constraints {
            match &c.value {
                ParamValue::Num(n) => nums.push((c.param, c.op, *n)),
                ParamValue::Str(s) => strs.push((c.param, c.op, s.clone())),
            }
        }
        CompiledConstraints { nums, strs }
    }
}

/// A [`JsConstraints`] set compiled into two flat comparison lists, split by
/// value kind, so the placement index can evaluate it on every heap pop
/// without re-dispatching on [`ParamValue`] variants or allocating.
///
/// Semantics are identical to [`JsConstraints::holds`]: a parameter missing
/// from the snapshot or of the wrong kind fails the predicate (fail-closed —
/// [`SysSnapshot::num`]/[`SysSnapshot::str`] return `None` exactly in the
/// cases where [`Constraint::holds`] returns `false`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CompiledConstraints {
    nums: Vec<(SysParam, RelOp, f64)>,
    strs: Vec<(SysParam, RelOp, String)>,
}

impl CompiledConstraints {
    /// Whether every compiled comparison holds for `snap`.
    pub fn holds(&self, snap: &SysSnapshot) -> bool {
        self.nums
            .iter()
            .all(|&(p, op, rhs)| snap.num(p).is_some_and(|lhs| op.eval_num(lhs, rhs)))
            && self
                .strs
                .iter()
                .all(|(p, op, rhs)| snap.str(*p).is_some_and(|lhs| op.eval_str(lhs, rhs)))
    }

    /// Number of compiled comparisons.
    pub fn len(&self) -> usize {
        self.nums.len() + self.strs.len()
    }

    /// Whether the predicate is empty (always satisfied).
    pub fn is_empty(&self) -> bool {
        self.nums.is_empty() && self.strs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LoadModel, LoadProfile, MachineSpec};

    fn snapshot(name: &str, cpu: f64, mem_mb: f64) -> SysSnapshot {
        let spec = MachineSpec::generic(name, 20.0, mem_mb);
        let load = LoadModel::new(LoadProfile::Constant(cpu), 0).sample(5.0, &spec);
        SysSnapshot::for_machine(&spec, &load, 0.0, 0.0, 5.0)
    }

    #[test]
    fn operator_parsing() {
        assert_eq!(RelOp::parse("<="), Some(RelOp::Le));
        assert_eq!(RelOp::parse("!="), Some(RelOp::Ne));
        assert_eq!(RelOp::parse("=="), Some(RelOp::Eq));
        assert_eq!(RelOp::parse("="), Some(RelOp::Eq));
        assert_eq!(RelOp::parse("<>"), Some(RelOp::Ne));
        assert_eq!(RelOp::parse("~="), None);
    }

    #[test]
    fn paper_example_constraints() {
        // The §4.2 example: exclude "milena", sys load <= 10, idle >= 50,
        // avail mem >= 50 MB, swap ratio <= 0.3.
        let mut constr = JsConstraints::new();
        constr.set(SysParam::NodeName, "!=", "milena");
        constr.set(SysParam::CpuSysPct, "<=", 10);
        constr.set(SysParam::IdlePct, ">=", 50);
        constr.set(SysParam::AvailMem, ">=", 50);
        constr.set(SysParam::SwapSpaceRatio, "<=", 0.3);

        let idle_box = snapshot("rachel", 0.05, 512.0);
        assert!(constr.holds(&idle_box), "{:?}", constr.failing(&idle_box));

        let named_milena = snapshot("milena", 0.05, 512.0);
        assert!(!constr.holds(&named_milena));

        let busy_box = snapshot("rachel", 0.9, 512.0);
        assert!(!constr.holds(&busy_box));
    }

    #[test]
    fn failing_lists_exactly_the_violations() {
        let mut constr = JsConstraints::new();
        constr.set(SysParam::NodeName, "==", "zeus");
        constr.set(SysParam::IdlePct, ">=", 0);
        let snap = snapshot("hera", 0.1, 128.0);
        let failing = constr.failing(&snap);
        assert_eq!(failing.len(), 1);
        assert_eq!(failing[0].param, SysParam::NodeName);
    }

    #[test]
    fn empty_set_always_holds() {
        assert!(JsConstraints::new().holds(&snapshot("a", 0.99, 16.0)));
    }

    #[test]
    fn kind_mismatch_fails_closed() {
        let mut constr = JsConstraints::new();
        // Comparing a string parameter against a number can never hold.
        constr.set(SysParam::NodeName, "==", 5);
        assert!(!constr.holds(&snapshot("5", 0.0, 128.0)));
        // And a numeric parameter against a string.
        let mut c2 = JsConstraints::new();
        c2.set(SysParam::IdlePct, ">=", "fifty");
        assert!(!c2.holds(&snapshot("a", 0.0, 128.0)));
    }

    #[test]
    fn missing_param_fails_closed() {
        let c = Constraint {
            param: SysParam::IdlePct,
            op: RelOp::Ge,
            value: ParamValue::Num(0.0),
        };
        assert!(!c.holds(&SysSnapshot::empty(0.0)));
    }

    #[test]
    #[should_panic(expected = "invalid relational operator")]
    fn set_panics_on_bad_operator() {
        JsConstraints::new().set(SysParam::IdlePct, "~~", 1);
    }

    #[test]
    fn try_set_reports_bad_operator() {
        let mut c = JsConstraints::new();
        assert!(c.try_set(SysParam::IdlePct, "~~", 1).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn and_composes_conjunctions() {
        let mut a = JsConstraints::new();
        a.set(SysParam::IdlePct, ">=", 50);
        let mut b = JsConstraints::new();
        b.set(SysParam::AvailMem, ">=", 50);
        a.and(&b);
        assert_eq!(a.len(), 2);
        let busy = snapshot("x", 0.9, 512.0);
        assert!(!a.holds(&busy));
    }

    #[test]
    fn string_ordering_is_lexicographic() {
        let snap = snapshot("beta", 0.0, 128.0);
        let mut c = JsConstraints::new();
        c.set(SysParam::NodeName, "<", "gamma");
        assert!(c.holds(&snap));
        let mut c2 = JsConstraints::new();
        c2.set(SysParam::NodeName, "<", "alpha");
        assert!(!c2.holds(&snap));
    }

    #[test]
    fn compiled_constraints_agree_with_interpreted() {
        let mut constr = JsConstraints::new();
        constr.set(SysParam::NodeName, "!=", "milena");
        constr.set(SysParam::CpuSysPct, "<=", 10);
        constr.set(SysParam::IdlePct, ">=", 50);
        // Kind-mismatch cases must fail closed in both forms.
        constr.set(SysParam::AvailMem, ">=", 50);
        let compiled = constr.compile();
        assert_eq!(compiled.len(), constr.len());
        for snap in [
            snapshot("rachel", 0.05, 512.0),
            snapshot("milena", 0.05, 512.0),
            snapshot("rachel", 0.9, 512.0),
            SysSnapshot::empty(0.0),
        ] {
            assert_eq!(constr.holds(&snap), compiled.holds(&snap));
        }
        assert!(JsConstraints::new().compile().is_empty());
    }

    #[test]
    fn compiled_kind_mismatch_fails_closed() {
        let mut constr = JsConstraints::new();
        constr.set(SysParam::NodeName, "==", 5); // string param vs number
        assert!(!constr.compile().holds(&snapshot("5", 0.0, 128.0)));
        let mut c2 = JsConstraints::new();
        c2.set(SysParam::IdlePct, ">=", "fifty"); // numeric param vs string
        assert!(!c2.compile().holds(&snapshot("a", 0.0, 128.0)));
    }

    #[test]
    fn negate_is_involutive_and_complementary() {
        for op in [
            RelOp::Lt,
            RelOp::Le,
            RelOp::Gt,
            RelOp::Ge,
            RelOp::Eq,
            RelOp::Ne,
        ] {
            assert_eq!(op.negate().negate(), op);
            for (l, r) in [(1.0, 2.0), (2.0, 1.0), (1.0, 1.0)] {
                assert_ne!(op.eval_num(l, r), op.negate().eval_num(l, r));
            }
        }
    }
}
