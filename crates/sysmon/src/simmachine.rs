//! A live simulated workstation.

use crate::{LoadModel, MachineSpec, SysSnapshot};
use jsym_net::{SimClock, VirtTime};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

struct MachineInner {
    spec: MachineSpec,
    load: LoadModel,
    clock: SimClock,
    /// JRS tasks currently computing on this machine (CPU contention).
    active_tasks: AtomicU32,
    /// Runtime-held memory in bytes (loaded codebases + object state).
    runtime_bytes: AtomicU64,
    /// Total modeled flops executed (for accounting/tests).
    flops_done: AtomicU64,
}

/// A simulated workstation: static spec + background-load model + a virtual
/// CPU on which JavaSymphony work executes.
///
/// This substitutes the physical Sun boxes of the CLUSTER 2000 testbed. Work
/// is expressed in flops; [`SimMachine::compute`] converts it to virtual time
/// at the machine's *effective* rate — peak speed, minus the background user
/// load at that moment, shared among concurrently executing JRS tasks — and
/// realizes it as a scaled sleep, so real thread-level parallelism between
/// machines is preserved.
#[derive(Clone)]
pub struct SimMachine {
    inner: Arc<MachineInner>,
}

impl SimMachine {
    /// Creates a machine with the given spec, load model and clock.
    pub fn new(spec: MachineSpec, load: LoadModel, clock: SimClock) -> Self {
        SimMachine {
            inner: Arc::new(MachineInner {
                spec,
                load,
                clock,
                active_tasks: AtomicU32::new(0),
                runtime_bytes: AtomicU64::new(0),
                flops_done: AtomicU64::new(0),
            }),
        }
    }

    /// The static machine description.
    pub fn spec(&self) -> &MachineSpec {
        &self.inner.spec
    }

    /// The clock this machine runs on.
    pub fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    /// The machine's load model.
    pub fn load_model(&self) -> &LoadModel {
        &self.inner.load
    }

    /// Background (other-user) CPU utilisation at time `t`.
    pub fn user_cpu(&self, t: VirtTime) -> f64 {
        self.inner.load.cpu_at(t)
    }

    /// Number of JRS tasks currently computing here.
    pub fn active_tasks(&self) -> u32 {
        self.inner.active_tasks.load(Ordering::Relaxed)
    }

    /// Effective rate available to ONE task right now, in flop/s.
    ///
    /// Background load steals its share of the CPU and concurrently running
    /// JRS tasks time-share the rest. A 3% floor prevents a fully loaded
    /// machine from stalling the simulation.
    pub fn effective_flops(&self, t: VirtTime) -> f64 {
        let avail = (1.0 - self.user_cpu(t)).max(0.03);
        let sharers = self.active_tasks().max(1) as f64;
        self.inner.spec.peak_flops() * avail / sharers
    }

    /// Executes `flops` of modeled work, blocking the calling thread for the
    /// corresponding scaled time. Re-samples load and contention every slice
    /// so long computations feel load changes mid-flight.
    pub fn compute(&self, flops: f64) {
        if flops <= 0.0 {
            return;
        }
        let _guard = ActiveGuard::enter(self);
        // Slice length: long enough for cheap sleeps, short enough to track
        // day-profile swings (~20 s fast component) — and always at least a
        // few slices per task, so contention from tasks that start mid-way
        // is felt (a single-slice task would sample `active_tasks` once, at
        // its start, and never notice a competitor).
        const MAX_SLICE_VIRT: f64 = 2.0;
        const MIN_SLICE_VIRT: f64 = 0.01;
        let mut remaining = flops;
        while remaining > 0.0 {
            let t = self.inner.clock.now();
            let rate = self.effective_flops(t);
            let dt_needed = remaining / rate;
            let dt = dt_needed
                .min(MAX_SLICE_VIRT)
                .min((dt_needed / 4.0).max(MIN_SLICE_VIRT));
            self.inner.clock.sleep(dt);
            remaining -= rate * dt;
            if dt >= dt_needed {
                break;
            }
        }
        self.inner
            .flops_done
            .fetch_add(flops as u64, Ordering::Relaxed);
    }

    /// Total modeled flops executed on this machine so far.
    pub fn flops_done(&self) -> u64 {
        self.inner.flops_done.load(Ordering::Relaxed)
    }

    /// Accounts `bytes` of runtime memory (codebase artifacts, object state).
    pub fn add_runtime_bytes(&self, bytes: u64) {
        self.inner.runtime_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Releases previously accounted runtime memory.
    pub fn sub_runtime_bytes(&self, bytes: u64) {
        // Saturating: double-free accounting must not wrap.
        let mut cur = self.inner.runtime_bytes.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.inner.runtime_bytes.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Runtime-held memory in bytes.
    pub fn runtime_bytes(&self) -> u64 {
        self.inner.runtime_bytes.load(Ordering::Relaxed)
    }

    /// Takes a full system-parameter snapshot at the current virtual time.
    pub fn snapshot(&self) -> SysSnapshot {
        let t = self.inner.clock.now();
        let load = self.inner.load.sample(t, &self.inner.spec);
        // Our own activity shows up in the CPU figures: each active task
        // would consume the free share.
        let jrs_cpu = if self.active_tasks() > 0 {
            (1.0 - load.cpu_frac).max(0.0)
        } else {
            0.0
        };
        let extra_mem_mb = self.runtime_bytes() as f64 / (1024.0 * 1024.0);
        SysSnapshot::for_machine(&self.inner.spec, &load, jrs_cpu, extra_mem_mb, t)
    }
}

impl std::fmt::Debug for SimMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimMachine")
            .field("name", &self.inner.spec.name)
            .field("peak_mflops", &self.inner.spec.peak_mflops)
            .field("active_tasks", &self.active_tasks())
            .finish()
    }
}

struct ActiveGuard<'a> {
    machine: &'a SimMachine,
}

impl<'a> ActiveGuard<'a> {
    fn enter(machine: &'a SimMachine) -> Self {
        machine.inner.active_tasks.fetch_add(1, Ordering::Relaxed);
        ActiveGuard { machine }
    }
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.machine
            .inner
            .active_tasks
            .fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LoadProfile, SysParam};
    use jsym_net::TimeScale;
    use std::time::{Duration, Instant};

    fn machine(peak_mflops: f64, profile: LoadProfile, scale: f64) -> SimMachine {
        SimMachine::new(
            MachineSpec::generic("m", peak_mflops, 256.0),
            LoadModel::new(profile, 7),
            SimClock::new(TimeScale::new(scale)),
        )
    }

    #[test]
    fn compute_takes_modeled_time() {
        // 10 Mflop on a 10 Mflop/s idle machine = 1 virtual s = 1 ms real at
        // 1e-3 scale. Min-of-3: scheduler noise only ever inflates sleeps.
        let m = machine(10.0, LoadProfile::Idle, 1e-3);
        let real = (0..3)
            .map(|_| {
                let t0 = Instant::now();
                m.compute(10e6);
                t0.elapsed()
            })
            .min()
            .unwrap();
        assert!(real >= Duration::from_micros(900), "too fast: {real:?}");
        assert!(real < Duration::from_millis(5), "too slow: {real:?}");
        assert_eq!(m.flops_done(), 30_000_000);
    }

    #[test]
    fn busy_machine_computes_slower() {
        // 1e-3 scale keeps OS sleep noise (~0.1 ms) far below the measured
        // durations (5 ms / 25 ms) even on a single-core host.
        let idle = machine(10.0, LoadProfile::Idle, 1e-3);
        let busy = machine(10.0, LoadProfile::Constant(0.8), 1e-3);
        let time = |m: &SimMachine| {
            let t0 = Instant::now();
            m.compute(50e6);
            t0.elapsed()
        };
        let ti = time(&idle);
        let tb = time(&busy);
        assert!(
            tb > ti * 3,
            "80% background load should ~5x the time: idle={ti:?} busy={tb:?}"
        );
    }

    #[test]
    fn contention_shares_the_cpu() {
        let m = machine(10.0, LoadProfile::Idle, 1e-3);
        // Run two equal tasks concurrently; each should take ~2x the solo
        // time. Work is sized so the measurement (10 ms solo) dwarfs OS
        // scheduling noise even on a single-core host.
        let solo = {
            let t0 = Instant::now();
            m.compute(100e6);
            t0.elapsed()
        };
        let m2 = m.clone();
        let t0 = Instant::now();
        let h = std::thread::spawn(move || m2.compute(100e6));
        m.compute(100e6);
        h.join().unwrap();
        let pair = t0.elapsed();
        assert!(
            pair > solo * 3 / 2,
            "two tasks must contend: solo={solo:?} pair={pair:?}"
        );
    }

    #[test]
    fn zero_and_negative_work_return_immediately() {
        let m = machine(1.0, LoadProfile::Idle, 1.0); // 1:1 scale would hang if not
        let t0 = Instant::now();
        m.compute(0.0);
        m.compute(-5.0);
        assert!(t0.elapsed() < Duration::from_millis(50));
        assert_eq!(m.active_tasks(), 0);
    }

    #[test]
    fn effective_flops_has_floor() {
        let m = machine(10.0, LoadProfile::Constant(0.97), 1e-4);
        assert!(m.effective_flops(0.0) >= 10e6 * 0.03 - 1.0);
    }

    #[test]
    fn runtime_memory_accounting_saturates() {
        let m = machine(10.0, LoadProfile::Idle, 1e-3);
        m.add_runtime_bytes(1000);
        m.sub_runtime_bytes(400);
        assert_eq!(m.runtime_bytes(), 600);
        m.sub_runtime_bytes(10_000);
        assert_eq!(m.runtime_bytes(), 0);
    }

    #[test]
    fn snapshot_reflects_runtime_memory_and_activity() {
        let m = machine(10.0, LoadProfile::Idle, 1e-3);
        let before = m.snapshot();
        m.add_runtime_bytes(64 * 1024 * 1024);
        let after = m.snapshot();
        let d = before.num(SysParam::AvailMem).unwrap() - after.num(SysParam::AvailMem).unwrap();
        assert!((d - 64.0).abs() < 1.0, "expected ~64MB delta, got {d}");
        assert_eq!(after.str(SysParam::NodeName), Some("m"));
    }

    #[test]
    fn active_guard_is_exception_safe_by_construction() {
        // After compute() the counter must always return to zero.
        let m = machine(10.0, LoadProfile::Idle, 1e-5);
        for _ in 0..10 {
            m.compute(1e6);
        }
        assert_eq!(m.active_tasks(), 0);
    }
}
