//! Synthetic background-load models.
//!
//! The CLUSTER 2000 testbed is *non-dedicated*: "these workstations are used
//! by individual people for their regular work", and the experiment is run
//! twice — during the day under user load, and at night with very little
//! load. Since we cannot replay the 2000-era office traffic, we substitute a
//! deterministic, seeded value-noise model with two calibrated regimes:
//!
//! * [`LoadProfile::Day`] — mean CPU utilisation ≈ 40%, slow swings (editing,
//!   builds, mail) plus fast jitter;
//! * [`LoadProfile::Night`] — mean ≈ 4%, small jitter (cron jobs, daemons).
//!
//! Additional profiles ([`Constant`](LoadProfile::Constant),
//! [`Spike`](LoadProfile::Spike), [`Trace`](LoadProfile::Trace)) serve the
//! constraint/auto-migration experiments. Everything is a pure function of
//! `(profile, seed, virtual time)`, so runs are reproducible.

use crate::machine::MachineSpec;
use jsym_net::VirtTime;
use serde::{Deserialize, Serialize};

/// The shape of the background load on a node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LoadProfile {
    /// No background activity at all.
    Idle,
    /// Fixed CPU utilisation in `[0, 1)`.
    Constant(f64),
    /// Office-hours user load (the paper's daytime runs).
    Day,
    /// Overnight load (the paper's night runs).
    Night,
    /// Base load with a rectangular utilisation spike, for migration tests.
    Spike {
        /// Utilisation outside the spike.
        base: f64,
        /// Utilisation inside the spike.
        level: f64,
        /// Spike start (virtual seconds).
        start: f64,
        /// Spike end (virtual seconds).
        end: f64,
    },
    /// Piecewise-constant replay of explicit samples.
    Trace {
        /// Utilisation samples in `[0, 1)`.
        samples: Vec<f64>,
        /// Seconds covered by each sample.
        step: f64,
    },
    /// A bounded random walk around `mean`: utilisation drifts by at most
    /// `step` per `period` seconds — a user whose activity wanders.
    RandomWalk {
        /// Long-run mean utilisation.
        mean: f64,
        /// Maximum drift per period.
        step: f64,
        /// Seconds between drift steps.
        period: f64,
    },
    /// Poisson-arriving background jobs: in any window of `period` seconds
    /// a job arrives with the given `probability` and loads the machine at
    /// `level` for `duration` seconds — batch jobs landing on a shared box.
    Bursts {
        /// Arrival probability per period window.
        probability: f64,
        /// Window length in seconds.
        period: f64,
        /// Burst length in seconds.
        duration: f64,
        /// Utilisation during a burst.
        level: f64,
        /// Utilisation between bursts.
        base: f64,
    },
}

/// A load profile bound to a per-node seed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LoadModel {
    profile: LoadProfile,
    seed: u64,
}

/// Instantaneous user activity on a node, derived from its [`LoadModel`].
///
/// Feeds the dynamic [`crate::SysParam`]s beyond plain CPU utilisation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UserLoad {
    /// CPU utilisation by other users, in `[0, 1)`.
    pub cpu_frac: f64,
    /// Fraction of physical memory used by other users, in `[0, 1)`.
    pub mem_frac: f64,
    /// Number of user processes.
    pub procs: u32,
    /// Number of user threads.
    pub threads: u32,
    /// Logged-in users.
    pub users: u32,
}

/// SplitMix64 — cheap, high-quality 64-bit mixing for value noise.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform noise in `[0, 1)` at integer lattice point `i` for stream `seed`.
fn lattice(seed: u64, i: i64) -> f64 {
    let h = mix(seed ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Smooth value noise in `[0, 1)`: cosine interpolation between lattice
/// points, sampled at `t / period`.
fn smooth_noise(seed: u64, t: f64, period: f64) -> f64 {
    let x = t / period;
    let i = x.floor() as i64;
    let frac = x - x.floor();
    let a = lattice(seed, i);
    let b = lattice(seed, i + 1);
    let w = (1.0 - (frac * std::f64::consts::PI).cos()) / 2.0;
    a * (1.0 - w) + b * w
}

impl LoadModel {
    /// Binds `profile` to a node-specific `seed`.
    pub fn new(profile: LoadProfile, seed: u64) -> Self {
        LoadModel { profile, seed }
    }

    /// The profile this model replays.
    pub fn profile(&self) -> &LoadProfile {
        &self.profile
    }

    /// Background CPU utilisation at virtual time `t`, in `[0, 0.97]`.
    pub fn cpu_at(&self, t: VirtTime) -> f64 {
        let raw = match &self.profile {
            LoadProfile::Idle => 0.0,
            LoadProfile::Constant(f) => *f,
            LoadProfile::Day => {
                // Slow swings (~5 min period) + fast jitter (~20 s period).
                0.22 + 0.45 * smooth_noise(self.seed, t, 300.0)
                    + 0.18 * smooth_noise(self.seed ^ 0xD1FF, t, 20.0)
            }
            LoadProfile::Night => {
                0.015
                    + 0.05 * smooth_noise(self.seed, t, 120.0)
                    + 0.02 * smooth_noise(self.seed ^ 0xD1FF, t, 15.0)
            }
            LoadProfile::Spike {
                base,
                level,
                start,
                end,
            } => {
                if t >= *start && t < *end {
                    *level
                } else {
                    *base
                }
            }
            LoadProfile::Trace { samples, step } => {
                if samples.is_empty() {
                    0.0
                } else {
                    let idx = ((t / step).floor() as usize).min(samples.len() - 1);
                    samples[idx]
                }
            }
            LoadProfile::RandomWalk { mean, step, period } => {
                // Sum of bounded, zero-mean lattice steps up to the current
                // window; evaluated in O(1) per window via a short suffix so
                // sampling stays cheap and deterministic.
                let k = (t / period).floor() as i64;
                let mut drift = 0.0;
                // A 32-step memory horizon: older steps decay out, keeping
                // the walk bounded around the mean.
                for i in (k - 31).max(0)..=k.max(0) {
                    drift += (lattice(self.seed, i) - 0.5) * 2.0 * step;
                }
                mean + drift
            }
            LoadProfile::Bursts {
                probability,
                period,
                duration,
                level,
                base,
            } => {
                // Check every window whose burst could still cover `t`.
                let horizon = (duration / period).ceil() as i64 + 1;
                let k = (t / period).floor() as i64;
                let mut load = *base;
                for i in (k - horizon).max(0)..=k.max(0) {
                    if lattice(self.seed ^ 0x9E37, i) < *probability {
                        let start = i as f64 * period;
                        if t >= start && t < start + duration {
                            load = load.max(*level);
                        }
                    }
                }
                load
            }
        };
        raw.clamp(0.0, 0.97)
    }

    /// Full user-activity sample at virtual time `t` for machine `spec`.
    pub fn sample(&self, t: VirtTime, spec: &MachineSpec) -> UserLoad {
        let cpu = self.cpu_at(t);
        // Memory pressure and process counts loosely track CPU activity; the
        // jitter streams are decorrelated from the CPU stream.
        let mem_noise = smooth_noise(self.seed ^ 0xBEEF, t, 240.0);
        let mem_frac = (0.18 + 0.5 * cpu + 0.1 * mem_noise).clamp(0.05, 0.95);
        let base_procs = 42.0; // daemons, window system
        let procs = (base_procs + 60.0 * cpu + 8.0 * mem_noise) as u32;
        let threads = procs * 3 / 2;
        let users = if cpu < 0.05 {
            0
        } else {
            1 + (3.0 * cpu) as u32
        };
        let _ = spec; // spec reserved for future per-machine shaping
        UserLoad {
            cpu_frac: cpu,
            mem_frac,
            procs,
            threads,
            users,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> MachineSpec {
        MachineSpec::generic("t", 10.0, 128.0)
    }

    #[test]
    fn deterministic_for_same_seed_and_time() {
        let a = LoadModel::new(LoadProfile::Day, 7);
        let b = LoadModel::new(LoadProfile::Day, 7);
        for i in 0..50 {
            let t = i as f64 * 13.7;
            assert_eq!(a.cpu_at(t), b.cpu_at(t));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = LoadModel::new(LoadProfile::Day, 1);
        let b = LoadModel::new(LoadProfile::Day, 2);
        let divergent = (0..50)
            .map(|i| i as f64 * 9.3)
            .filter(|&t| (a.cpu_at(t) - b.cpu_at(t)).abs() > 1e-6)
            .count();
        assert!(divergent > 40);
    }

    #[test]
    fn day_is_heavier_than_night() {
        let day = LoadModel::new(LoadProfile::Day, 3);
        let night = LoadModel::new(LoadProfile::Night, 3);
        let mean = |m: &LoadModel| (0..200).map(|i| m.cpu_at(i as f64 * 7.0)).sum::<f64>() / 200.0;
        let (d, n) = (mean(&day), mean(&night));
        assert!(d > 0.25, "day mean too low: {d}");
        assert!(n < 0.12, "night mean too high: {n}");
        assert!(d > 3.0 * n, "day ({d}) should dominate night ({n})");
    }

    #[test]
    fn load_stays_in_bounds() {
        for profile in [
            LoadProfile::Idle,
            LoadProfile::Constant(2.0), // deliberately out of range
            LoadProfile::Day,
            LoadProfile::Night,
        ] {
            let m = LoadModel::new(profile, 11);
            for i in 0..500 {
                let v = m.cpu_at(i as f64 * 3.1);
                assert!((0.0..=0.97).contains(&v), "out of bounds: {v}");
            }
        }
    }

    #[test]
    fn spike_profile_switches_levels() {
        let m = LoadModel::new(
            LoadProfile::Spike {
                base: 0.1,
                level: 0.9,
                start: 10.0,
                end: 20.0,
            },
            0,
        );
        assert_eq!(m.cpu_at(5.0), 0.1);
        assert_eq!(m.cpu_at(15.0), 0.9);
        assert_eq!(m.cpu_at(25.0), 0.1);
    }

    #[test]
    fn trace_profile_replays_and_clamps() {
        let m = LoadModel::new(
            LoadProfile::Trace {
                samples: vec![0.2, 0.6, 0.4],
                step: 10.0,
            },
            0,
        );
        assert_eq!(m.cpu_at(0.0), 0.2);
        assert_eq!(m.cpu_at(12.0), 0.6);
        assert_eq!(m.cpu_at(25.0), 0.4);
        // Past the end, holds the last sample.
        assert_eq!(m.cpu_at(1000.0), 0.4);
        // Empty trace is idle.
        let empty = LoadModel::new(
            LoadProfile::Trace {
                samples: vec![],
                step: 1.0,
            },
            0,
        );
        assert_eq!(empty.cpu_at(3.0), 0.0);
    }

    #[test]
    fn sample_fields_are_plausible() {
        let m = LoadModel::new(LoadProfile::Day, 5);
        let s = m.sample(100.0, &spec());
        assert!(s.mem_frac > 0.0 && s.mem_frac < 1.0);
        assert!(s.procs >= 42);
        assert!(s.threads >= s.procs);
        let idle = LoadModel::new(LoadProfile::Idle, 5).sample(100.0, &spec());
        assert_eq!(idle.users, 0);
    }

    #[test]
    fn smooth_noise_is_continuous() {
        // Adjacent samples must not jump: |f(t+eps) - f(t)| small.
        for i in 0..200 {
            let t = i as f64 * 0.5;
            let a = smooth_noise(9, t, 30.0);
            let b = smooth_noise(9, t + 0.01, 30.0);
            assert!((a - b).abs() < 0.01, "discontinuity at {t}: {a} vs {b}");
        }
    }
}

#[cfg(test)]
mod extended_profile_tests {
    use super::*;

    #[test]
    fn random_walk_stays_near_mean_and_in_bounds() {
        let m = LoadModel::new(
            LoadProfile::RandomWalk {
                mean: 0.4,
                step: 0.01,
                period: 10.0,
            },
            17,
        );
        let samples: Vec<f64> = (0..500).map(|i| m.cpu_at(i as f64 * 7.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((0.2..0.6).contains(&mean), "walk mean drifted to {mean}");
        for v in &samples {
            assert!((0.0..=0.97).contains(v));
        }
        // It actually moves.
        let distinct = samples
            .windows(2)
            .filter(|w| (w[0] - w[1]).abs() > 1e-9)
            .count();
        assert!(distinct > 100, "walk too static: {distinct} moves");
    }

    #[test]
    fn random_walk_is_deterministic_per_seed() {
        let a = LoadModel::new(
            LoadProfile::RandomWalk {
                mean: 0.3,
                step: 0.02,
                period: 5.0,
            },
            1,
        );
        let b = LoadModel::new(
            LoadProfile::RandomWalk {
                mean: 0.3,
                step: 0.02,
                period: 5.0,
            },
            1,
        );
        for i in 0..100 {
            assert_eq!(a.cpu_at(i as f64 * 3.3), b.cpu_at(i as f64 * 3.3));
        }
    }

    #[test]
    fn bursts_hit_level_roughly_at_the_configured_rate() {
        let m = LoadModel::new(
            LoadProfile::Bursts {
                probability: 0.2,
                period: 100.0,
                duration: 50.0,
                level: 0.9,
                base: 0.05,
            },
            23,
        );
        let mut bursting = 0usize;
        let total = 4000usize;
        for i in 0..total {
            if m.cpu_at(i as f64 * 5.0) > 0.5 {
                bursting += 1;
            }
        }
        // Expected duty cycle ≈ probability × duration / period = 10%.
        let duty = bursting as f64 / total as f64;
        assert!((0.03..0.3).contains(&duty), "burst duty cycle {duty}");
        // Base load between bursts.
        assert!(m.cpu_at(1e9) <= 0.97);
    }

    #[test]
    fn burst_covers_its_full_duration() {
        // Find one burst start and check coverage across its window.
        let m = LoadModel::new(
            LoadProfile::Bursts {
                probability: 1.0, // every window bursts
                period: 100.0,
                duration: 100.0,
                level: 0.8,
                base: 0.0,
            },
            5,
        );
        for i in 0..50 {
            assert_eq!(m.cpu_at(i as f64 * 20.0), 0.8);
        }
    }
}
