//! Per-node sample cache with virtual-time TTL and epoch invalidation.
//!
//! Paper §5.1 has every node forward its observed system parameters to the
//! cluster manager once per monitoring period; queries between two periods
//! see the same values. [`SampleCache`] reproduces that economics for the
//! simulated registry: a snapshot taken at virtual time `t` stays valid
//! until `t + ttl`, so repeated `sample()` calls within one monitoring tick
//! cost a map lookup instead of rebuilding the full 44-parameter snapshot.
//!
//! Two invalidation channels exist:
//! * **TTL** — entries older than `ttl` virtual seconds are treated as
//!   misses on [`SampleCache::get`];
//! * **epoch** — [`SampleCache::bump_epoch`] atomically invalidates every
//!   entry (used when the registry reconfigures the aggregation plane), and
//!   [`SampleCache::invalidate`] evicts a single node (machine removed or
//!   failed).

use crate::SysSnapshot;
use jsym_net::{NodeId, VirtTime};
use std::collections::HashMap;

/// Point-in-time statistics of a [`SampleCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get` calls answered from the cache.
    pub hits: u64,
    /// `get` calls that found no valid entry.
    pub misses: u64,
    /// Entries evicted via `invalidate`, `bump_epoch` or `retain`.
    pub invalidations: u64,
    /// Entries currently stored (valid or stale).
    pub entries: usize,
}

#[derive(Clone, Debug)]
struct Entry {
    snap: SysSnapshot,
    epoch: u64,
}

/// A per-node snapshot cache keyed by physical [`NodeId`].
///
/// Not thread-safe by itself; the owner (the VDA registry state) serializes
/// access under its own lock.
#[derive(Clone, Debug)]
pub struct SampleCache {
    ttl: VirtTime,
    epoch: u64,
    entries: HashMap<NodeId, Entry>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl SampleCache {
    /// A cache whose entries stay valid for `ttl` virtual seconds.
    pub fn new(ttl: VirtTime) -> Self {
        SampleCache {
            ttl: ttl.max(0.0),
            epoch: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    /// The validity window in virtual seconds.
    pub fn ttl(&self) -> VirtTime {
        self.ttl
    }

    /// Changes the validity window (existing entries keep their timestamps).
    pub fn set_ttl(&mut self, ttl: VirtTime) {
        self.ttl = ttl.max(0.0);
    }

    /// Looks up the cached snapshot for `id`, valid at virtual time `now`.
    ///
    /// An entry is valid when it belongs to the current epoch and is at most
    /// `ttl` virtual seconds old. Counts a hit or a miss.
    pub fn get(&mut self, id: NodeId, now: VirtTime) -> Option<&SysSnapshot> {
        let valid = self
            .entries
            .get(&id)
            .is_some_and(|e| e.epoch == self.epoch && now - e.snap.at <= self.ttl);
        if valid {
            self.hits += 1;
            self.entries.get(&id).map(|e| &e.snap)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Reads the stored snapshot for `id` without freshness checks or hit
    /// accounting — for consumers that just refreshed the cache and want the
    /// authoritative stored value.
    pub fn peek(&self, id: NodeId) -> Option<&SysSnapshot> {
        self.entries
            .get(&id)
            .filter(|e| e.epoch == self.epoch)
            .map(|e| &e.snap)
    }

    /// Stores a snapshot for `id`, returning the previously stored one (from
    /// the current epoch) if any.
    pub fn put(&mut self, id: NodeId, snap: SysSnapshot) -> Option<SysSnapshot> {
        let epoch = self.epoch;
        self.entries
            .insert(id, Entry { snap, epoch })
            .filter(|old| old.epoch == epoch)
            .map(|old| old.snap)
    }

    /// Evicts the entry for `id`, returning it. Counts an invalidation when
    /// something was actually stored.
    pub fn invalidate(&mut self, id: NodeId) -> Option<SysSnapshot> {
        let old = self.entries.remove(&id);
        if old.is_some() {
            self.invalidations += 1;
        }
        old.map(|e| e.snap)
    }

    /// Invalidates every entry at once by advancing the epoch.
    pub fn bump_epoch(&mut self) {
        self.invalidations += self.entries.len() as u64;
        self.entries.clear();
        self.epoch += 1;
    }

    /// Drops entries whose id fails `keep` (machines removed from the pool).
    pub fn retain(&mut self, mut keep: impl FnMut(NodeId) -> bool) {
        let before = self.entries.len();
        self.entries.retain(|&id, _| keep(id));
        self.invalidations += (before - self.entries.len()) as u64;
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            invalidations: self.invalidations,
            entries: self.entries.len(),
        }
    }
}

impl Default for SampleCache {
    /// A cache with a 2-virtual-second validity window.
    fn default() -> Self {
        SampleCache::new(2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(at: VirtTime) -> SysSnapshot {
        let mut s = SysSnapshot::empty(at);
        s.set(crate::SysParam::IdlePct, 90.0);
        s
    }

    #[test]
    fn hit_within_ttl_miss_after() {
        let mut c = SampleCache::new(1.0);
        c.put(NodeId(0), snap(10.0));
        assert!(c.get(NodeId(0), 10.5).is_some());
        assert!(c.get(NodeId(0), 11.0).is_some(), "boundary is inclusive");
        assert!(c.get(NodeId(0), 11.1).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
    }

    #[test]
    fn invalidate_evicts_and_counts() {
        let mut c = SampleCache::new(5.0);
        c.put(NodeId(3), snap(0.0));
        assert!(c.invalidate(NodeId(3)).is_some());
        assert!(c.invalidate(NodeId(3)).is_none(), "double evict no-ops");
        assert_eq!(c.stats().invalidations, 1);
        assert!(c.get(NodeId(3), 0.0).is_none());
    }

    #[test]
    fn bump_epoch_invalidates_everything() {
        let mut c = SampleCache::new(100.0);
        c.put(NodeId(0), snap(0.0));
        c.put(NodeId(1), snap(0.0));
        c.bump_epoch();
        assert_eq!(c.stats().invalidations, 2);
        assert!(c.get(NodeId(0), 0.0).is_none());
        assert!(c.peek(NodeId(1)).is_none());
    }

    #[test]
    fn put_returns_previous_entry() {
        let mut c = SampleCache::new(1.0);
        assert!(c.put(NodeId(0), snap(1.0)).is_none());
        let old = c.put(NodeId(0), snap(2.0)).expect("previous entry");
        assert_eq!(old.at, 1.0);
    }

    #[test]
    fn retain_drops_missing_machines() {
        let mut c = SampleCache::new(1.0);
        c.put(NodeId(0), snap(0.0));
        c.put(NodeId(1), snap(0.0));
        c.retain(|id| id == NodeId(0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().invalidations, 1);
        assert!(c.peek(NodeId(0)).is_some());
    }
}
