//! Point-in-time system-parameter snapshots.

use crate::{MachineSpec, ParamValue, SysParam, UserLoad};
use jsym_net::VirtTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// All system parameters of one node (or the average over a component) at a
/// moment in virtual time.
///
/// In the paper, the node's network agent gathers these by running system
/// commands; here they are derived from the machine spec and its load model.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct SysSnapshot {
    /// Virtual time the snapshot was taken.
    pub at: VirtTime,
    values: BTreeMap<SysParam, ParamValue>,
}

impl SysSnapshot {
    /// An empty snapshot taken at `at`.
    pub fn empty(at: VirtTime) -> Self {
        SysSnapshot {
            at,
            values: BTreeMap::new(),
        }
    }

    /// Sets one parameter.
    pub fn set(&mut self, param: SysParam, value: impl Into<ParamValue>) {
        self.values.insert(param, value.into());
    }

    /// Reads one parameter.
    pub fn get(&self, param: SysParam) -> Option<&ParamValue> {
        self.values.get(&param)
    }

    /// Reads a numeric parameter, `None` if absent or a string.
    pub fn num(&self, param: SysParam) -> Option<f64> {
        self.get(param).and_then(ParamValue::as_num)
    }

    /// Reads a string parameter, `None` if absent or numeric.
    pub fn str(&self, param: SysParam) -> Option<&str> {
        self.get(param).and_then(ParamValue::as_str)
    }

    /// Number of parameters present.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot has no parameters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(param, value)` pairs in catalogue order.
    pub fn iter(&self) -> impl Iterator<Item = (&SysParam, &ParamValue)> {
        self.values.iter()
    }

    /// Builds the full 44-parameter snapshot for a machine.
    ///
    /// * `spec` — static description;
    /// * `load` — instantaneous user activity;
    /// * `jrs_cpu_frac` — CPU share consumed by JavaSymphony work itself
    ///   (active modeled tasks), so monitoring sees its own applications;
    /// * `extra_mem_mb` — memory held by the runtime (loaded codebases,
    ///   object state) on top of user memory;
    /// * `uptime` / `t` — virtual clock.
    pub fn for_machine(
        spec: &MachineSpec,
        load: &UserLoad,
        jrs_cpu_frac: f64,
        extra_mem_mb: f64,
        t: VirtTime,
    ) -> Self {
        let mut s = SysSnapshot::empty(t);

        // ---- static ----
        s.set(SysParam::NodeName, spec.name.as_str());
        s.set(SysParam::IpAddress, spec.ip.as_str());
        s.set(SysParam::OsName, spec.os_name.as_str());
        s.set(SysParam::OsVersion, spec.os_version.as_str());
        s.set(SysParam::CpuType, spec.cpu_type.as_str());
        s.set(SysParam::CpuCount, spec.cpu_count);
        s.set(SysParam::CpuMhz, spec.cpu_mhz);
        s.set(SysParam::PeakMflops, spec.peak_mflops);
        s.set(SysParam::TotalMem, spec.total_mem_mb);
        s.set(SysParam::TotalSwap, spec.total_swap_mb);
        s.set(SysParam::TotalDisk, spec.total_disk_mb);
        s.set(SysParam::JvmVersion, spec.jvm_version.as_str());
        s.set(SysParam::JvmMaxHeap, spec.jvm_max_heap_mb);
        s.set(SysParam::NetType, spec.net_type.as_str());

        // ---- dynamic: CPU ----
        let busy = (load.cpu_frac + jrs_cpu_frac).clamp(0.0, 1.0);
        let sys_pct = (2.0 + 6.0 * busy).min(12.0);
        let user_pct = (busy * 100.0).min(100.0 - sys_pct);
        let idle_pct = (100.0 - user_pct - sys_pct).max(0.0);
        s.set(SysParam::CpuUserPct, user_pct);
        s.set(SysParam::CpuSysPct, sys_pct);
        s.set(SysParam::IdlePct, idle_pct);
        // Run-queue style load averages: utilisation mapped to queue length.
        let runq = busy / (1.0 - busy).max(0.05);
        s.set(SysParam::CpuLoad1, runq);
        s.set(SysParam::CpuLoad5, runq * 0.9);
        s.set(SysParam::CpuLoad15, runq * 0.8);
        s.set(SysParam::RunQueueLen, runq.round().max(0.0));

        // ---- dynamic: memory ----
        let used_mb = (load.mem_frac * spec.total_mem_mb + extra_mem_mb).min(spec.total_mem_mb);
        let avail_mb = spec.total_mem_mb - used_mb;
        s.set(SysParam::AvailMem, avail_mb);
        // Swap pressure grows once memory is tight.
        let swap_used_frac = ((used_mb / spec.total_mem_mb - 0.7) / 0.3).clamp(0.0, 0.9);
        s.set(
            SysParam::AvailSwap,
            spec.total_swap_mb * (1.0 - swap_used_frac),
        );
        s.set(SysParam::SwapSpaceRatio, swap_used_frac);
        s.set(
            SysParam::JvmHeapUsed,
            extra_mem_mb.min(spec.jvm_max_heap_mb),
        );

        // ---- dynamic: processes ----
        s.set(SysParam::NumProcesses, load.procs);
        s.set(SysParam::NumThreads, load.threads);
        s.set(SysParam::LoggedInUsers, load.users);

        // ---- dynamic: kernel activity (rates per second) ----
        s.set(SysParam::ContextSwitches, 120.0 + 2600.0 * busy);
        s.set(SysParam::SysCalls, 400.0 + 9000.0 * busy);
        s.set(SysParam::Interrupts, 100.0 + 900.0 * busy);
        s.set(SysParam::PageFaults, 10.0 + 350.0 * load.mem_frac);
        s.set(SysParam::PageIns, 2.0 + 60.0 * swap_used_frac);
        s.set(SysParam::PageOuts, 1.0 + 80.0 * swap_used_frac);

        // ---- dynamic: network ----
        s.set(SysParam::NetLatency, spec.net_latency_ms);
        s.set(SysParam::NetBandwidth, spec.net_bandwidth_mbps);
        let pkt_rate = 20.0 + 500.0 * busy;
        s.set(SysParam::NetPacketsIn, pkt_rate);
        s.set(SysParam::NetPacketsOut, pkt_rate * 0.8);
        s.set(SysParam::NetBytesIn, pkt_rate * 600.0);
        s.set(SysParam::NetBytesOut, pkt_rate * 500.0);

        // ---- dynamic: disk / misc ----
        s.set(SysParam::DiskFree, spec.total_disk_mb * 0.4);
        s.set(SysParam::DiskReads, 5.0 + 90.0 * busy);
        s.set(SysParam::DiskWrites, 3.0 + 70.0 * busy);
        s.set(SysParam::UptimeSecs, t.max(0.0));

        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LoadModel, LoadProfile};

    fn snap(cpu: f64) -> SysSnapshot {
        let spec = MachineSpec::generic("rachel", 25.0, 256.0);
        let model = LoadModel::new(LoadProfile::Constant(cpu), 1);
        let load = model.sample(50.0, &spec);
        SysSnapshot::for_machine(&spec, &load, 0.0, 0.0, 50.0)
    }

    #[test]
    fn covers_full_catalogue() {
        let s = snap(0.3);
        assert_eq!(s.len(), SysParam::ALL.len());
        for p in SysParam::ALL {
            assert!(s.get(p).is_some(), "missing {p}");
            // String/number kinds line up with the catalogue.
            assert_eq!(s.get(p).unwrap().as_str().is_some(), p.is_string());
        }
    }

    #[test]
    fn cpu_percentages_sum_to_one_hundred() {
        for cpu in [0.0, 0.2, 0.5, 0.9] {
            let s = snap(cpu);
            let total = s.num(SysParam::CpuUserPct).unwrap()
                + s.num(SysParam::CpuSysPct).unwrap()
                + s.num(SysParam::IdlePct).unwrap();
            assert!((total - 100.0).abs() < 1e-9, "sum {total} at cpu {cpu}");
        }
    }

    #[test]
    fn higher_load_means_less_idle() {
        let lo = snap(0.1);
        let hi = snap(0.8);
        assert!(lo.num(SysParam::IdlePct).unwrap() > hi.num(SysParam::IdlePct).unwrap());
        assert!(
            lo.num(SysParam::ContextSwitches).unwrap() < hi.num(SysParam::ContextSwitches).unwrap()
        );
    }

    #[test]
    fn jrs_activity_counts_toward_busy() {
        let spec = MachineSpec::generic("x", 10.0, 128.0);
        let load = LoadModel::new(LoadProfile::Idle, 0).sample(10.0, &spec);
        let without = SysSnapshot::for_machine(&spec, &load, 0.0, 0.0, 10.0);
        let with = SysSnapshot::for_machine(&spec, &load, 0.5, 0.0, 10.0);
        assert!(
            with.num(SysParam::IdlePct).unwrap() < without.num(SysParam::IdlePct).unwrap() - 30.0
        );
    }

    #[test]
    fn extra_memory_reduces_avail_mem() {
        let spec = MachineSpec::generic("x", 10.0, 128.0);
        let load = LoadModel::new(LoadProfile::Idle, 0).sample(10.0, &spec);
        let a = SysSnapshot::for_machine(&spec, &load, 0.0, 0.0, 10.0);
        let b = SysSnapshot::for_machine(&spec, &load, 0.0, 32.0, 10.0);
        let da = a.num(SysParam::AvailMem).unwrap();
        let db = b.num(SysParam::AvailMem).unwrap();
        assert!((da - db - 32.0).abs() < 1e-9, "{da} vs {db}");
    }

    #[test]
    fn avail_mem_never_negative() {
        let spec = MachineSpec::generic("x", 10.0, 64.0);
        let load = LoadModel::new(LoadProfile::Constant(0.9), 0).sample(10.0, &spec);
        let s = SysSnapshot::for_machine(&spec, &load, 0.0, 10_000.0, 10.0);
        assert!(s.num(SysParam::AvailMem).unwrap() >= 0.0);
    }

    #[test]
    fn accessor_kinds() {
        let s = snap(0.2);
        assert_eq!(s.str(SysParam::NodeName), Some("rachel"));
        assert_eq!(s.num(SysParam::NodeName), None);
        assert!(s.num(SysParam::AvailMem).is_some());
        assert_eq!(s.str(SysParam::AvailMem), None);
        assert!(!s.is_empty());
    }
}
