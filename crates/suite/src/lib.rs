//! Workspace integration-test host; the test sources live in `tests/` at the repository root (see Cargo.toml `[[test]]` entries).
