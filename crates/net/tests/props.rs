//! Property-based tests for the network substrate.

use jsym_net::{LinkClass, NodeId, Topology};
use proptest::prelude::*;

fn arb_class() -> impl Strategy<Value = LinkClass> {
    prop_oneof![
        Just(LinkClass::Loopback),
        Just(LinkClass::Lan100),
        Just(LinkClass::Lan10),
        Just(LinkClass::Wan),
    ]
}

proptest! {
    /// The effective link between two nodes does not depend on direction.
    #[test]
    fn link_symmetric(ca in arb_class(), cb in arb_class(), a in 0u32..64, b in 0u32..64) {
        let mut topo = Topology::new();
        topo.set_node_class(NodeId(a), ca);
        topo.set_node_class(NodeId(b), cb);
        prop_assert_eq!(
            topo.link_between(NodeId(a), NodeId(b)),
            topo.link_between(NodeId(b), NodeId(a))
        );
    }

    /// Transfer delay is monotonically non-decreasing in message size.
    #[test]
    fn delay_monotone_in_size(
        ca in arb_class(), cb in arb_class(),
        s1 in 0usize..4_000_000, s2 in 0usize..4_000_000,
    ) {
        let mut topo = Topology::new();
        topo.set_node_class(NodeId(0), ca);
        topo.set_node_class(NodeId(1), cb);
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        prop_assert!(
            topo.transfer_delay(NodeId(0), NodeId(1), lo)
                <= topo.transfer_delay(NodeId(0), NodeId(1), hi)
        );
    }

    /// Combine is commutative, associative and idempotent (a join semilattice),
    /// which is what lets mixed segments be modeled pairwise.
    #[test]
    fn combine_is_semilattice(a in arb_class(), b in arb_class(), c in arb_class()) {
        prop_assert_eq!(LinkClass::combine(a, b), LinkClass::combine(b, a));
        prop_assert_eq!(
            LinkClass::combine(LinkClass::combine(a, b), c),
            LinkClass::combine(a, LinkClass::combine(b, c))
        );
        prop_assert_eq!(LinkClass::combine(a, a), a);
    }

    /// A combined link is never faster than either side.
    #[test]
    fn combine_never_faster(a in arb_class(), b in arb_class()) {
        let c = LinkClass::combine(a, b);
        prop_assert!(c.latency() >= a.latency().min(b.latency()));
        prop_assert!(c.bandwidth() <= a.bandwidth().max(b.bandwidth()));
        prop_assert!(c == a || c == b);
    }

    /// Loopback is the identity of combine.
    #[test]
    fn loopback_is_identity(a in arb_class()) {
        prop_assert_eq!(LinkClass::combine(a, LinkClass::Loopback), a);
    }

    /// Self-links are always loopback regardless of configuration.
    #[test]
    fn self_link_is_loopback(c in arb_class(), n in 0u32..64) {
        let mut topo = Topology::new();
        topo.set_node_class(NodeId(n), c);
        prop_assert_eq!(topo.link_between(NodeId(n), NodeId(n)), LinkClass::Loopback);
    }
}

mod delivery_props {
    use jsym_net::{LinkClass, Network, NodeId, Payload, SimClock, TimeScale, Topology};
    use proptest::prelude::*;
    use std::time::Duration;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Messages of arbitrary sizes sent on one directed pair arrive in
        /// send order (connection FIFO), whatever the interleaving of sizes.
        #[test]
        fn pair_fifo_regardless_of_sizes(sizes in proptest::collection::vec(0usize..200_000, 1..12)) {
            let mut topo = Topology::new();
            topo.set_default_class(LinkClass::Lan10);
            let net = Network::new(SimClock::new(TimeScale::new(1e-5)), topo);
            let _a = net.register(NodeId(0));
            let b = net.register(NodeId(1));
            for (i, &size) in sizes.iter().enumerate() {
                net.send(NodeId(0), NodeId(1), Payload::new("p", size, i as u32)).unwrap();
            }
            for i in 0..sizes.len() {
                let env = b.recv_timeout(Duration::from_secs(5)).unwrap();
                prop_assert_eq!(*env.payload.downcast::<u32>().unwrap(), i as u32);
            }
        }

        /// Every accepted message is eventually delivered exactly once when
        /// no faults are injected.
        #[test]
        fn no_loss_no_duplication(n in 1usize..40) {
            let mut topo = Topology::new();
            topo.set_default_class(LinkClass::Lan100);
            let net = Network::new(SimClock::new(TimeScale::new(1e-6)), topo);
            let _a = net.register(NodeId(0));
            let b = net.register(NodeId(1));
            for i in 0..n {
                net.send(NodeId(0), NodeId(1), Payload::new("p", 64, i as u32)).unwrap();
            }
            let mut got = Vec::new();
            for _ in 0..n {
                let env = b.recv_timeout(Duration::from_secs(5)).unwrap();
                got.push(*env.payload.downcast::<u32>().unwrap());
            }
            prop_assert!(b.try_recv().is_err(), "duplicate delivery");
            got.sort_unstable();
            prop_assert_eq!(got, (0..n as u32).collect::<Vec<_>>());
        }
    }
}
