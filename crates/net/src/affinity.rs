//! Decayed caller→object traffic counters: the measurement half of the
//! affinity plane (DESIGN.md §14).
//!
//! The runtime records one sample per delivered invocation — `(caller node,
//! object, wire bytes)` — into exponentially-decayed per-pair counters. A
//! re-placement loop periodically asks for the *hot* objects together with
//! each one's dominant caller and migrates objects toward the nodes that
//! call them most, the locality lever JavaSymphony's placement story is
//! built around.
//!
//! The tracker is deliberately cheap and lossy:
//!
//! * Counters decay with a configurable half-life, so placement follows the
//!   *current* traffic pattern instead of all-time totals.
//! * Recording is gated on an atomic flag read before any lock; with the
//!   affinity plane disabled the hot path costs one relaxed load and the
//!   runtime is byte-identical to a build without the tracker.
//! * Per-object migration timestamps give the placement loop hysteresis:
//!   an object that just moved is ineligible until its cooldown lapses, and
//!   the dominant-share threshold keeps half-and-half traffic from
//!   ping-ponging an object between two callers.

use crate::id::NodeId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// A decayed counter pair (calls and bytes) with its last-update time.
#[derive(Clone, Copy, Debug, Default)]
struct Ewma {
    calls: f64,
    bytes: f64,
    last: f64,
}

impl Ewma {
    fn decay_to(&mut self, now: f64, half_life: f64) {
        if now > self.last {
            let factor = 0.5f64.powf((now - self.last) / half_life);
            self.calls *= factor;
            self.bytes *= factor;
            self.last = now;
        }
    }
}

/// Per-object traffic: one decayed counter per caller node, plus the last
/// affinity-migration time used for cooldown hysteresis.
#[derive(Debug, Default)]
struct ObjTraffic {
    per_caller: HashMap<u32, Ewma>,
    last_migrated: Option<f64>,
}

/// One hot object as reported by [`AffinityTracker::hot_objects`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AffinityHot {
    /// The object (the runtime's opaque object id).
    pub object: u64,
    /// The caller contributing the most decayed call mass.
    pub dominant: NodeId,
    /// The dominant caller's fraction of the object's total call mass
    /// (`0.0..=1.0`).
    pub share: f64,
    /// Total decayed call mass across all callers.
    pub calls: f64,
    /// Total decayed byte mass across all callers.
    pub bytes: f64,
}

/// Point-in-time tracker size for the shell's `affinity` command.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AffinityTrackerStats {
    /// Objects with live counters.
    pub objects: usize,
    /// `(caller, object)` pairs with live counters.
    pub pairs: usize,
}

/// Deployment-wide decayed caller→object traffic counters.
pub struct AffinityTracker {
    enabled: AtomicBool,
    half_life: f64,
    objects: Mutex<HashMap<u64, ObjTraffic>>,
}

impl AffinityTracker {
    /// A tracker whose counters lose half their mass every `half_life`
    /// virtual seconds. Starts disabled.
    pub fn new(half_life: f64) -> Self {
        AffinityTracker {
            enabled: AtomicBool::new(false),
            half_life: half_life.max(1e-9),
            objects: Mutex::new(HashMap::new()),
        }
    }

    /// Turns recording on or off. Off clears nothing — counters keep
    /// decaying and can be re-enabled later.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether recording is on; the one-relaxed-load gate callers check
    /// before paying for a sample.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The configured half-life in virtual seconds.
    pub fn half_life(&self) -> f64 {
        self.half_life
    }

    /// Records one delivered invocation of `object` issued from `caller`
    /// carrying `bytes` argument wire bytes. No-op while disabled.
    pub fn record(&self, caller: NodeId, object: u64, bytes: u64, now: f64) {
        if !self.enabled() {
            return;
        }
        let mut objects = self.objects.lock();
        let e = objects
            .entry(object)
            .or_default()
            .per_caller
            .entry(caller.0)
            .or_default();
        e.decay_to(now, self.half_life);
        e.calls += 1.0;
        e.bytes += bytes as f64;
    }

    /// Objects whose decayed call mass is at least `min_calls` and whose
    /// last affinity migration (if any) is at least `cooldown` virtual
    /// seconds old, with each object's dominant caller. Sorted by call mass
    /// descending, so a bounded placement round handles the hottest first.
    pub fn hot_objects(&self, now: f64, min_calls: f64, cooldown: f64) -> Vec<AffinityHot> {
        let mut objects = self.objects.lock();
        let mut out = Vec::new();
        // Decay and prune in the same sweep: entries whose mass has decayed
        // to noise are dropped so an idle object eventually costs nothing.
        objects.retain(|&object, traffic| {
            let mut total_calls = 0.0;
            let mut total_bytes = 0.0;
            let mut best: Option<(u32, f64)> = None;
            traffic.per_caller.retain(|&caller, e| {
                e.decay_to(now, self.half_life);
                if e.calls < 1e-3 {
                    return false;
                }
                total_calls += e.calls;
                total_bytes += e.bytes;
                if best.map(|(_, c)| e.calls > c).unwrap_or(true) {
                    best = Some((caller, e.calls));
                }
                true
            });
            let Some((dominant, dominant_calls)) = best else {
                return false;
            };
            let cooling = traffic
                .last_migrated
                .map(|t| now - t < cooldown)
                .unwrap_or(false);
            if total_calls >= min_calls && !cooling {
                out.push(AffinityHot {
                    object,
                    dominant: NodeId(dominant),
                    share: dominant_calls / total_calls,
                    calls: total_calls,
                    bytes: total_bytes,
                });
            }
            true
        });
        out.sort_by(|a, b| {
            b.calls
                .partial_cmp(&a.calls)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }

    /// Stamps an affinity migration of `object`, starting its cooldown.
    pub fn note_migration(&self, object: u64, now: f64) {
        if let Some(t) = self.objects.lock().get_mut(&object) {
            t.last_migrated = Some(now);
        }
    }

    /// Drops all counters for `object` (freed / unregistered).
    pub fn forget(&self, object: u64) {
        self.objects.lock().remove(&object);
    }

    /// Current tracker size.
    pub fn stats(&self) -> AffinityTrackerStats {
        let objects = self.objects.lock();
        AffinityTrackerStats {
            objects: objects.len(),
            pairs: objects.values().map(|t| t.per_caller.len()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracker_records_nothing() {
        let t = AffinityTracker::new(10.0);
        t.record(NodeId(1), 7, 100, 0.0);
        assert_eq!(t.stats(), AffinityTrackerStats::default());
        t.set_enabled(true);
        t.record(NodeId(1), 7, 100, 0.0);
        assert_eq!(
            t.stats(),
            AffinityTrackerStats {
                objects: 1,
                pairs: 1
            }
        );
    }

    #[test]
    fn dominant_caller_and_share_are_reported() {
        let t = AffinityTracker::new(10.0);
        t.set_enabled(true);
        for _ in 0..9 {
            t.record(NodeId(2), 7, 50, 1.0);
        }
        t.record(NodeId(3), 7, 50, 1.0);
        let hot = t.hot_objects(1.0, 1.0, 0.0);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].object, 7);
        assert_eq!(hot[0].dominant, NodeId(2));
        assert!((hot[0].share - 0.9).abs() < 1e-9, "{}", hot[0].share);
        assert!((hot[0].calls - 10.0).abs() < 1e-9);
    }

    #[test]
    fn counters_decay_with_the_half_life() {
        let t = AffinityTracker::new(10.0);
        t.set_enabled(true);
        for _ in 0..8 {
            t.record(NodeId(1), 7, 10, 0.0);
        }
        // One half-life later only half the mass remains.
        let hot = t.hot_objects(10.0, 1.0, 0.0);
        assert!((hot[0].calls - 4.0).abs() < 1e-9, "{}", hot[0].calls);
        // Far in the future the entry decays below the noise floor and the
        // object is pruned entirely.
        assert!(t.hot_objects(500.0, 1e-6, 0.0).is_empty());
        assert_eq!(t.stats(), AffinityTrackerStats::default());
    }

    #[test]
    fn min_calls_and_cooldown_gate_hot_objects() {
        let t = AffinityTracker::new(10.0);
        t.set_enabled(true);
        t.record(NodeId(1), 7, 10, 0.0);
        assert!(t.hot_objects(0.0, 5.0, 0.0).is_empty(), "below min_calls");
        for _ in 0..10 {
            t.record(NodeId(1), 7, 10, 0.0);
        }
        assert_eq!(t.hot_objects(0.0, 5.0, 30.0).len(), 1);
        t.note_migration(7, 0.0);
        assert!(
            t.hot_objects(10.0, 5.0, 30.0).is_empty(),
            "cooling objects are ineligible"
        );
        assert_eq!(
            t.hot_objects(31.0, 1.0, 30.0).len(),
            1,
            "eligible again after the cooldown"
        );
    }

    #[test]
    fn hottest_objects_sort_first_and_forget_drops() {
        let t = AffinityTracker::new(10.0);
        t.set_enabled(true);
        for _ in 0..3 {
            t.record(NodeId(1), 7, 10, 0.0);
        }
        for _ in 0..9 {
            t.record(NodeId(1), 8, 10, 0.0);
        }
        let hot = t.hot_objects(0.0, 1.0, 0.0);
        assert_eq!(hot[0].object, 8);
        assert_eq!(hot[1].object, 7);
        t.forget(8);
        assert_eq!(t.hot_objects(0.0, 1.0, 0.0).len(), 1);
    }
}
